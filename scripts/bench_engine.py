#!/usr/bin/env python
"""Benchmark the simulation engine and guard its summary metrics.

Two fixed-seed benchmarks are timed (workload synthesis excluded) and the
numbers written to ``BENCH_engine.json`` in the repository root:

``engine_24h_window``
    The historical end-to-end benchmark: a busy 24 h synthetic window under
    EASY backfill, run through the default (event-driven) engine.

``engine_idle_heavy_3d``
    A sparse 3-day window (rare, short, constant-power jobs) run twice —
    dense ticks vs event-driven — demonstrating the step reduction the
    event-driven engine gets from coalescing idle time.

``engine_busy_trace_24h``
    A continuously busy 24 h window of multi-phase piecewise-constant
    profiles under EASY backfill, run dense vs event-driven — demonstrating
    the step reduction breakpoint-bounded coalescing gets on exactly the
    telemetry-replay-shaped workloads where the old constant-power veto
    forced dense ticking.

``engine_frontier_scale``
    A 12 h window on the 9,600-node ``frontier`` system holding ~2,000
    concurrently running jobs, run four ways: dense, event-driven with the
    O(log R) event indexes (end-time heap + breakpoint heap, the default),
    event-driven with the historical O(R) running-set scans
    (``event_index=False``), and event-driven with the per-job/per-call hot
    paths (``vectorized=False``). The scan-vs-heap and per-job-vs-batched
    wall-clock-per-step comparisons are the point: with heaps the per-step
    cost no longer scales with the running-set size, and with the batched
    job-start path the per-*event* cost no longer pays per-job numpy
    overhead — while the summaries stay identical.

``engine_burst_arrival``
    Thousands of same-tick releases on ``frontier`` (the post-maintenance
    queue-drain restart: 3,000 jobs per burst), run dense, event-driven
    (batched job-start power states, the default) and event-driven with
    per-job state construction (``vectorized=False``). The batched path
    builds every same-refresh job's power state in one vectorised pass —
    one node-power-model evaluation per refresh, not per job — and the
    per-job baseline is retained behind the flag as the differential,
    gated at 1e-9 exactly like scan-vs-heap.

``engine_power_cap``
    The busy-trace window re-run under operating signals: a binding IT
    power cap (sized at 70% of the uncapped run's compute-power peak, so
    it self-scales with the workload), a stepped electricity price and a
    constant carbon intensity. Run dense vs event-driven, gated at 1e-9
    like every other equivalence pair, plus two semantic gates of its own:
    the constant cap must never be violated (``cap_violation_kwh == 0`` —
    the scheduler's admission check is exact, not best-effort) and the cap
    must actually bind (``capped_hold_s > 0``), so the benchmark can never
    silently degrade into an uncapped rerun.

``engine_sweep_throughput``
    A 64-run scenario-sweep grid on the tiny system (2 policies x 2
    workload variants x 16 seeds), executed through ``repro.sweep`` twice:
    single-worker in-process, then fanned over a process pool. Records
    runs/s for both legs plus speedup and parallel efficiency (speedup /
    workers; ``cpu_count`` is recorded so single-core runners are
    self-explaining), and gates — at the same 1e-9 — that the pooled
    store matches the single-process store metric for metric and that the
    public ``run_simulation`` shim reproduces stored rows.

``engine_batch_mc``
    A 32-seed Monte Carlo study of the busy-trace window, run twice: one
    serial ``run_request`` per seed (workload generation included — that
    cost is real and the batch path amortises it), then one
    ``repro.engine.run_batch`` call executing all replicas in-process on
    the shared-pool batch kernel. Records runs/s for both legs plus the
    speedup, and gates — at the same 1e-9 — that every batched replica's
    summary matches its serial twin and that every replica ran to
    completion with all jobs accounted for (completed + dismissed = total;
    a replica silently dropping work would otherwise look "fast").

The script doubles as the CI metrics gate: ``--golden PATH`` compares the
24 h run's summary against a committed golden record and exits non-zero on
drift beyond 1e-6 relative tolerance; ``--write-golden PATH`` refreshes the
record after an intentional semantic change. Independently of the golden
record, the dense-vs-event summary drift of the idle-heavy, busy-trace,
frontier-scale and burst-arrival benchmarks is gated at 1e-9 relative —
the equivalence guarantee is part of the engine's contract, so CI fails if
coalescing ever changes a metric. The frontier-scale benchmark additionally
gates the scan-vs-heap drift at 1e-9 (the event indexes change complexity,
not semantics) and requires >= 1000 concurrently running jobs, so the
workload can never silently shrink below the scale the benchmark exists to
cover; the frontier-scale and burst-arrival benchmarks gate the
batched-vs-per-job drift at 1e-9 the same way.

Two tooling extras ride along:

``--profile [PATH]``
    Re-run each benchmark's event-driven engine under cProfile after the
    timed runs and write, per benchmark, a per-phase wall-time table (from
    a span-traced run) followed by the top functions (by cumulative time)
    to PATH (default ``BENCH_profile.txt`` next to the record) — uploaded
    as a CI artifact next to ``BENCH_engine.json``.

Per-phase breakdown
    Every benchmark record carries a ``phase_breakdown`` section — wall
    seconds, call count, mean microseconds and share per engine phase
    (``schedule`` / ``coalesce`` / ``power`` / ``cooling`` / ``stats``) —
    measured on a separate span-traced run after the timed ones, so the
    recorded wall numbers stay uninstrumented.

Soft regression check
    Before overwriting the output record, the previous ``wall_us_per_step``
    of every benchmark is read back; any benchmark now slower than 1.5x its
    recorded best prints a prominent warning and lands as a structured
    entry under ``regressions`` in the output record (never a CI failure —
    wall clock on shared runners is advisory, unlike the semantic gates
    above).

Usage::

    PYTHONPATH=src python scripts/bench_engine.py [--system tiny] \
        [--golden tests/golden/engine_summary_tiny_seed42.json]
"""

from __future__ import annotations

import argparse
import json
import math
import platform
import sys
import time
from pathlib import Path

from repro.config import get_system_config
from repro.engine import SimulationEngine, parse_duration
from repro.engine.stats import json_safe
from repro.power import OperatingSignals
from repro.obs import Observability, SpanTracer
from repro.workloads import (
    SyntheticWorkloadGenerator,
    WorkloadSpec,
    burst_arrival_spec,
    busy_trace_spec,
    default_workload_spec,
    frontier_scale_spec,
)
from repro.workloads.distributions import (
    JobSizeDistribution,
    RuntimeDistribution,
    WaveArrivals,
)

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Relative tolerance for the golden-summary drift check.
GOLDEN_RTOL = 1e-6

#: Relative tolerance for the dense-vs-event-driven equivalence gate.
EQUIVALENCE_RTOL = 1e-9

#: Soft regression threshold: warn when a benchmark's wall_us_per_step
#: exceeds the previously recorded best by this factor.
REGRESSION_WARN_FACTOR = 1.5

#: (label, thunk) pairs collected by the bench functions for ``--profile``.
#: Only populated when profiling was requested — the thunks close over whole
#: workloads, which would otherwise be pinned in memory for the full run.
#: Each thunk returns the run's :class:`SpanTracer`, so the profile report
#: can print a per-phase wall-time table next to the cProfile top functions.
PROFILE_TARGETS: list = []


def idle_heavy_spec() -> WorkloadSpec:
    """A sparse workload: short constant-power jobs separated by idle hours."""
    return WorkloadSpec(
        sizes=JobSizeDistribution(min_nodes=1, max_nodes=8),
        runtimes=RuntimeDistribution(
            median_s=1200.0, sigma=0.6, min_s=300.0, max_s=3600.0
        ),
        arrivals=WaveArrivals(rate_per_hour=0.3, amplitude=0.3),
        trace_interval_s=None,  # scalar telemetry -> constant power per job
        generate_power_trace=False,
    )


def _timed_run(
    system, workload, policy, seed, *,
    dense_ticks=False, event_index=True, vectorized=True, signals=None,
):
    engine = SimulationEngine(
        system, workload, policy, seed=seed, dense_ticks=dense_ticks,
        event_index=event_index, vectorized=vectorized, signals=signals,
    )
    started = time.perf_counter()
    result = engine.run()
    elapsed = time.perf_counter() - started
    summary = result.summary()
    steps = summary["ticks"]
    return summary, {
        "wall_s": elapsed,
        "steps": steps,
        "steps_per_s": steps / elapsed if elapsed > 0 else 0.0,
        "wall_us_per_step": 1e6 * elapsed / steps if steps else 0.0,
        "max_running_jobs": (
            int(result.stats.column("running_jobs").max())
            if len(result.stats.ticks)
            else 0
        ),
        "simulated_s": summary["simulated_s"],
        "speedup_vs_realtime": summary["simulated_s"] / elapsed if elapsed > 0 else 0.0,
    }


def _traced_run(system, workload, policy, seed, **engine_kwargs):
    """One span-traced engine run; returns the tracer (aggregates only).

    Always a separate run *after* the timed measurements: the timed runs
    stay uninstrumented (``obs=None``), so tracer overhead — small, but two
    clock reads per phase — never pollutes the recorded wall numbers.
    """
    tracer = SpanTracer(keep_events=False)
    engine = SimulationEngine(
        system, workload, policy, seed=seed,
        obs=Observability(tracer=tracer), **engine_kwargs,
    )
    engine.run()
    return tracer


def _phase_breakdown(system, workload, policy, seed, **engine_kwargs) -> dict:
    """Per-phase wall-time report of one traced event-driven run."""
    tracer = _traced_run(system, workload, policy, seed, **engine_kwargs)
    return tracer.phase_report()


def _phase_table(report: dict) -> str:
    """The phase report as an aligned text table (profile output)."""
    lines = [f"{'phase':<10} {'wall_s':>10} {'calls':>10} {'mean_us':>10} {'share':>7}"]
    for name, row in report.items():
        share = f"{row['share']:.1%}" if "share" in row else "-"
        lines.append(
            f"{name:<10} {row['wall_s']:>10.4f} {row['calls']:>10.0f} "
            f"{row['mean_us']:>10.1f} {share:>7}"
        )
    return "\n".join(lines)


def bench_24h_window(args, system):
    duration_s = parse_duration(args.duration)
    generator = SyntheticWorkloadGenerator(
        system, default_workload_spec(system), seed=args.seed
    )
    workload = generator.generate(duration_s)

    summary = None
    runs = []
    for _ in range(args.repeats):
        summary, run = _timed_run(system, workload, args.policy, args.seed)
        runs.append(run)
    best = min(runs, key=lambda r: r["wall_s"])
    record = {
        "benchmark": "engine_24h_window",
        "system": system.name,
        "policy": args.policy,
        "mode": "event-driven",
        "duration": args.duration,
        "seed": args.seed,
        "jobs": len(workload),
        "repeats": args.repeats,
        "best": best,
        "runs": runs,
        "phase_breakdown": _phase_breakdown(system, workload, args.policy, args.seed),
    }
    if args.profile:
        PROFILE_TARGETS.append((
            "engine_24h_window (event-driven)",
            lambda: _traced_run(system, workload, args.policy, args.seed),
        ))
    print(
        f"{system.name}/{args.policy}: {len(workload)} jobs, "
        f"{best['steps']:.0f} steps in {best['wall_s']:.3f}s "
        f"({best['speedup_vs_realtime']:.0f}x realtime)"
    )
    return record, summary


def _bench_dense_vs_event(benchmark, label, args, system, spec, duration):
    """Time one workload dense vs event-driven and record the comparison."""
    duration_s = parse_duration(duration)
    generator = SyntheticWorkloadGenerator(system, spec, seed=args.seed)
    workload = generator.generate(duration_s)

    dense_summary, dense = _timed_run(
        system, workload, args.policy, args.seed, dense_ticks=True
    )
    event_summary, event = _timed_run(system, workload, args.policy, args.seed)

    drift = _summary_drift(event_summary, dense_summary)
    step_reduction = dense["steps"] / event["steps"] if event["steps"] else math.inf
    if args.profile:
        PROFILE_TARGETS.append((
            f"{benchmark} (event-driven)",
            lambda: _traced_run(system, workload, args.policy, args.seed),
        ))
    record = {
        "benchmark": benchmark,
        "system": system.name,
        "policy": args.policy,
        "duration": duration,
        "seed": args.seed,
        "jobs": len(workload),
        "mean_utilization": event_summary["mean_utilization"],
        "dense": dense,
        "event_driven": event,
        "phase_breakdown": _phase_breakdown(system, workload, args.policy, args.seed),
        "step_reduction": step_reduction,
        "wall_speedup": dense["wall_s"] / event["wall_s"] if event["wall_s"] else math.inf,
        "max_summary_drift_rel": drift,
    }
    print(
        f"{label}: {len(workload)} jobs over {duration}, "
        f"{dense['steps']:.0f} dense steps -> {event['steps']:.0f} event steps "
        f"({step_reduction:.0f}x fewer, {record['wall_speedup']:.1f}x faster wall, "
        f"summary drift {drift:.2e})"
    )
    return record


def bench_idle_heavy(args, system):
    return _bench_dense_vs_event(
        "engine_idle_heavy_3d", "idle-heavy", args, system,
        idle_heavy_spec(), args.idle_duration,
    )


def bench_busy_trace(args, system):
    return _bench_dense_vs_event(
        "engine_busy_trace_24h", "busy-trace", args, system,
        busy_trace_spec(), args.busy_duration,
    )


def bench_power_cap(args, system):
    """The busy-trace window under a binding cap plus price/carbon steps."""
    duration_s = parse_duration(args.busy_duration)
    generator = SyntheticWorkloadGenerator(system, busy_trace_spec(), seed=args.seed)
    workload = generator.generate(duration_s)

    # Size the cap from an uncapped reference run: 70% of the observed
    # compute-power peak binds hard without starving the whole queue, and
    # self-scales if the workload or system ever changes.
    reference = SimulationEngine(system, workload, args.policy, seed=args.seed).run()
    cap_kw = 0.7 * float(reference.stats.column("compute_power_kw").max())
    third_s = duration_s / 3.0
    signals = OperatingSignals(
        power_cap_kw=((0.0, cap_kw),),
        price_per_kwh=((0.0, 0.08), (third_s, 0.24), (2.0 * third_s, 0.08)),
        carbon_kg_per_kwh=((0.0, 0.35),),
    )

    dense_summary, dense = _timed_run(
        system, workload, args.policy, args.seed, dense_ticks=True, signals=signals
    )
    event_summary, event = _timed_run(
        system, workload, args.policy, args.seed, signals=signals
    )
    drift = _summary_drift(event_summary, dense_summary)
    if args.profile:
        PROFILE_TARGETS.append((
            "engine_power_cap (event-driven)",
            lambda: _traced_run(
                system, workload, args.policy, args.seed, signals=signals
            ),
        ))
    record = {
        "benchmark": "engine_power_cap",
        "system": system.name,
        "policy": f"power_cap({args.policy})",
        "duration": args.busy_duration,
        "seed": args.seed,
        "jobs": len(workload),
        "power_cap_kw": cap_kw,
        "uncapped_peak_compute_kw": cap_kw / 0.7,
        "mean_utilization": event_summary["mean_utilization"],
        "energy_cost": event_summary["energy_cost"],
        "carbon_kg": event_summary["carbon_kg"],
        "cap_violation_kwh": event_summary["cap_violation_kwh"],
        "capped_hold_s": event_summary["capped_hold_s"],
        "jobs_completed": event_summary["jobs_completed"],
        "dense": dense,
        "event_driven": event,
        "step_reduction": dense["steps"] / event["steps"] if event["steps"] else math.inf,
        "wall_speedup": dense["wall_s"] / event["wall_s"] if event["wall_s"] else math.inf,
        "max_summary_drift_rel": drift,
    }
    print(
        f"power-cap: {len(workload)} jobs capped at {cap_kw:.1f} kW, "
        f"{event_summary['capped_hold_s']:.0f} job-s held, "
        f"{event_summary['cap_violation_kwh']:.3f} kWh over cap, "
        f"cost {event_summary['energy_cost']:.2f} / {event_summary['carbon_kg']:.0f} kg CO2, "
        f"summary drift {drift:.2e}"
    )
    return record


def bench_frontier_scale(args):
    """Thousands of concurrent jobs: event-index heaps vs running-set scans,
    batched job-start construction vs the retained per-job baseline."""
    system = get_system_config(args.frontier_system)
    duration_s = parse_duration(args.frontier_duration)
    generator = SyntheticWorkloadGenerator(system, frontier_scale_spec(), seed=args.seed)
    workload = generator.generate(duration_s)

    dense_summary, dense = _timed_run(
        system, workload, args.policy, args.seed, dense_ticks=True
    )
    event_summary, event = _timed_run(system, workload, args.policy, args.seed)
    scan_summary, scan = _timed_run(
        system, workload, args.policy, args.seed, event_index=False
    )
    perjob_summary, perjob = _timed_run(
        system, workload, args.policy, args.seed, vectorized=False
    )
    if args.profile:
        PROFILE_TARGETS.append((
            "engine_frontier_scale (event-driven)",
            lambda: _traced_run(system, workload, args.policy, args.seed),
        ))

    record = {
        "benchmark": "engine_frontier_scale",
        "system": system.name,
        "policy": args.policy,
        "duration": args.frontier_duration,
        "seed": args.seed,
        "jobs": len(workload),
        "max_running_jobs": event["max_running_jobs"],
        "mean_utilization": event_summary["mean_utilization"],
        "dense": dense,
        "event_driven": event,
        "event_driven_scan": scan,
        "event_driven_perjob": perjob,
        "phase_breakdown": _phase_breakdown(system, workload, args.policy, args.seed),
        "step_reduction": dense["steps"] / event["steps"] if event["steps"] else math.inf,
        "scan_vs_heap_wall_ratio": (
            scan["wall_s"] / event["wall_s"] if event["wall_s"] else math.inf
        ),
        "perjob_vs_batched_wall_ratio": (
            perjob["wall_s"] / event["wall_s"] if event["wall_s"] else math.inf
        ),
        "max_summary_drift_rel": _summary_drift(event_summary, dense_summary),
        "scan_vs_heap_drift_rel": _summary_drift(scan_summary, event_summary),
        "perjob_vs_batched_drift_rel": _summary_drift(perjob_summary, event_summary),
    }
    print(
        f"frontier-scale: {len(workload)} jobs over {args.frontier_duration}, "
        f"{event['max_running_jobs']} max concurrent; "
        f"{event['wall_us_per_step']:.0f}us/step with event heaps vs "
        f"{scan['wall_us_per_step']:.0f}us/step with running-set scans "
        f"({record['scan_vs_heap_wall_ratio']:.1f}x) and "
        f"{perjob['wall_us_per_step']:.0f}us/step with per-job starts "
        f"({record['perjob_vs_batched_wall_ratio']:.1f}x), "
        f"scan drift {record['scan_vs_heap_drift_rel']:.2e}, "
        f"per-job drift {record['perjob_vs_batched_drift_rel']:.2e}, "
        f"dense drift {record['max_summary_drift_rel']:.2e}"
    )
    return record


def bench_burst_arrival(args):
    """Thousands of same-tick releases: batched vs per-job job-start states."""
    system = get_system_config(args.frontier_system)
    duration_s = parse_duration(args.burst_duration)
    generator = SyntheticWorkloadGenerator(system, burst_arrival_spec(), seed=args.seed)
    workload = generator.generate(duration_s)

    # FCFS keeps the whole burst starting in one tick (nothing blocks), so
    # the benchmark isolates the per-event start cost the batched path cuts.
    policy = "fcfs"
    dense_summary, dense = _timed_run(
        system, workload, policy, args.seed, dense_ticks=True
    )
    batched_summary, batched = _timed_run(system, workload, policy, args.seed)
    perjob_summary, perjob = _timed_run(
        system, workload, policy, args.seed, vectorized=False
    )
    if args.profile:
        PROFILE_TARGETS.append((
            "engine_burst_arrival (event-driven, batched)",
            lambda: _traced_run(system, workload, policy, args.seed),
        ))

    record = {
        "benchmark": "engine_burst_arrival",
        "system": system.name,
        "policy": policy,
        "duration": args.burst_duration,
        "seed": args.seed,
        "jobs": len(workload),
        "max_running_jobs": batched["max_running_jobs"],
        "mean_utilization": batched_summary["mean_utilization"],
        "dense": dense,
        "event_driven": batched,
        "event_driven_perjob": perjob,
        "phase_breakdown": _phase_breakdown(system, workload, policy, args.seed),
        "step_reduction": (
            dense["steps"] / batched["steps"] if batched["steps"] else math.inf
        ),
        "perjob_vs_batched_wall_ratio": (
            perjob["wall_s"] / batched["wall_s"] if batched["wall_s"] else math.inf
        ),
        "max_summary_drift_rel": _summary_drift(batched_summary, dense_summary),
        "perjob_vs_batched_drift_rel": _summary_drift(perjob_summary, batched_summary),
    }
    print(
        f"burst-arrival: {len(workload)} jobs over {args.burst_duration} "
        f"(3000-job bursts); {batched['wall_us_per_step']:.0f}us/step batched vs "
        f"{perjob['wall_us_per_step']:.0f}us/step per-job "
        f"({record['perjob_vs_batched_wall_ratio']:.1f}x), "
        f"per-job drift {record['perjob_vs_batched_drift_rel']:.2e}, "
        f"dense drift {record['max_summary_drift_rel']:.2e}"
    )
    return record


def bench_sweep_throughput(args):
    """A >=64-run tiny-system grid, 1 worker vs a process pool.

    Measures sweep fan-out, not the engine: the same
    :class:`~repro.sweep.SweepSpec` (policies x workload variants x seeds)
    is executed twice into throwaway stores — in-process single-worker,
    then pooled — and the record carries runs/s for both plus the speedup
    and parallel efficiency (speedup / workers, against ``cpu_count`` for
    context: efficiency targets are only meaningful when the host actually
    has the cores).

    Two semantic gates ride along (wall clock stays advisory, as
    everywhere in this script): every run of both sweeps must complete,
    and the pooled store must match the single-process store at 1e-9 per
    metric — the single-process sweep executes ``run_request`` in the
    parent, so this is exactly "every stored summary matches a direct run
    of the same request". A spot check re-runs a few requests through the
    public ``run_simulation`` shim as well.
    """
    import os
    import tempfile

    from repro import run_simulation
    from repro.sweep import ResultsStore, RunRequest, SweepSpec, run_sweep

    spec = SweepSpec(
        name="bench_sweep",
        duration_s=parse_duration(args.sweep_duration),
        systems=("tiny",),
        policies=("fcfs", "backfill"),
        workloads=("default", "busy_trace"),
        n_seeds=args.sweep_seeds,
        root_seed=args.seed,
    )
    workers = args.sweep_workers
    with tempfile.TemporaryDirectory() as tmp:
        single_path = Path(tmp) / "single.sqlite"
        pooled_path = Path(tmp) / "pooled.sqlite"
        single = run_sweep(
            spec, single_path, workers=1, heartbeat_interval_s=None
        )
        pooled = run_sweep(
            spec,
            pooled_path,
            workers=workers,
            chunk_size=args.sweep_chunk_size,
            heartbeat_interval_s=None,
        )
        with ResultsStore(single_path) as a, ResultsStore(pooled_path) as b:
            single_rows = {r.run_id: r for r in a.runs(status="completed")}
            pooled_rows = {r.run_id: r for r in b.runs(status="completed")}

    store_drift = 0.0
    for run_id, row in single_rows.items():
        other = pooled_rows.get(run_id)
        if other is None or other.summary is None or row.summary is None:
            store_drift = math.inf
            break
        store_drift = max(store_drift, _summary_drift(other.summary, row.summary))

    # Spot check through the public shim: a handful of stored requests are
    # re-executed in this process via run_simulation, which routes through
    # the same RunRequest path — exact agreement expected, 1e-9 the gate.
    shim_drift = 0.0
    for row in list(single_rows.values())[:: max(1, len(single_rows) // 4)][:4]:
        request = RunRequest.from_json(row.request_json)
        fresh = run_simulation(
            system=request.system,
            policy=request.policy,
            duration=request.duration_s,
            seed=request.seed,
            spec=request.spec,
            dense_ticks=request.dense_ticks,
        ).summary()
        assert row.summary is not None
        shim_drift = max(shim_drift, _summary_drift(fresh, row.summary))

    speedup = (
        pooled.runs_per_s / single.runs_per_s if single.runs_per_s > 0 else 0.0
    )
    record = {
        "benchmark": "engine_sweep_throughput",
        "system": "tiny",
        "duration": args.sweep_duration,
        "seed": args.seed,
        "total_runs": spec.total_runs,
        "workers": workers,
        "chunk_size": args.sweep_chunk_size,
        "cpu_count": os.cpu_count(),
        "single": {
            "wall_s": single.wall_s,
            "runs_per_s": single.runs_per_s,
            "completed": single.completed,
            "failed": single.failed,
        },
        "parallel": {
            "wall_s": pooled.wall_s,
            "runs_per_s": pooled.runs_per_s,
            "completed": pooled.completed,
            "failed": pooled.failed,
        },
        "speedup": speedup,
        "parallel_efficiency": speedup / workers if workers else 0.0,
        "store_vs_single_drift_rel": store_drift,
        "shim_vs_store_drift_rel": shim_drift,
    }
    print(
        f"sweep-throughput: {spec.total_runs} runs on tiny, "
        f"{single.runs_per_s:.2f} runs/s single vs {pooled.runs_per_s:.2f} "
        f"runs/s with {workers} workers ({speedup:.2f}x, efficiency "
        f"{record['parallel_efficiency']:.0%} on {record['cpu_count']} cores), "
        f"store drift {store_drift:.2e}, shim drift {shim_drift:.2e}"
    )
    return record


def bench_batch_mc(args, system):
    """N seed replicas of the busy-trace window: batched vs serial kernels.

    The serial leg is the honest baseline a Monte Carlo user runs today —
    one ``run_request`` per seed, each re-deriving the system config, power
    model, workload post-processing and power states. The batched leg
    executes the identical replicas through ``run_batch`` on one shared
    pool. Both legs include workload generation in the timing; that is the
    per-replica cost the batch kernel exists to amortise.
    """
    from dataclasses import replace

    from repro.engine import run_batch
    from repro.sweep import RunRequest, run_request

    request = RunRequest(
        system=args.system,
        policy=args.policy,
        duration_s=parse_duration(args.busy_duration),
        spec=busy_trace_spec(),
    )
    seeds = list(range(args.mc_seeds))

    started = time.perf_counter()
    serial_results = [run_request(replace(request, seed=seed)) for seed in seeds]
    serial_wall_s = time.perf_counter() - started

    started = time.perf_counter()
    batch_results = run_batch(request, seeds)
    batch_wall_s = time.perf_counter() - started

    drift = 0.0
    if len(batch_results) != len(serial_results):
        drift = math.inf
    else:
        for serial_result, batch_result in zip(serial_results, batch_results):
            drift = max(
                drift,
                _summary_drift(batch_result.summary(), serial_result.summary()),
            )
    all_replicas_completed = len(batch_results) == len(seeds) and all(
        len(result.stats.completed_jobs) + len(result.stats.dismissed_jobs)
        == len(result.jobs)
        for result in batch_results
    )

    record = {
        "benchmark": "engine_batch_mc",
        "system": system.name,
        "policy": args.policy,
        "duration": args.busy_duration,
        "replicas": len(seeds),
        "jobs_total": sum(len(result.jobs) for result in batch_results),
        "serial": {
            "wall_s": serial_wall_s,
            "runs_per_s": len(seeds) / serial_wall_s if serial_wall_s > 0 else 0.0,
        },
        "batched": {
            "wall_s": batch_wall_s,
            "runs_per_s": len(seeds) / batch_wall_s if batch_wall_s > 0 else 0.0,
        },
        "speedup": serial_wall_s / batch_wall_s if batch_wall_s > 0 else math.inf,
        "all_replicas_completed": all_replicas_completed,
        "max_summary_drift_rel": drift,
    }
    print(
        f"batch-mc: {len(seeds)} replicas of busy-trace over "
        f"{args.busy_duration}; {record['serial']['runs_per_s']:.2f} runs/s "
        f"serial vs {record['batched']['runs_per_s']:.2f} runs/s batched "
        f"({record['speedup']:.2f}x), drift {drift:.2e}"
    )
    return record


def _is_finite_number(value) -> bool:
    return (
        isinstance(value, (int, float))
        and not isinstance(value, bool)
        and math.isfinite(value)
    )


def _summary_drifts(candidate: dict, reference: dict) -> dict[str, float]:
    """Per-metric relative deviation between two summaries (``ticks`` excluded).

    Non-finite values — inf/nan in-process, ``null`` once a record has been
    round-tripped through strict JSON, or a missing metric — compare as one
    sentinel bucket: no drift against each other, full drift (``inf``)
    against any finite value. The naive ratio would be nan for those cases
    and slip silently past any threshold.
    """
    drifts = {}
    for key, ref in reference.items():
        if key == "ticks":
            continue
        got = candidate.get(key)
        if _is_finite_number(ref) and _is_finite_number(got):
            if ref == got:
                drifts[key] = 0.0
            else:
                drifts[key] = abs(got - ref) / max(abs(ref), abs(got), 1e-12)
        elif _is_finite_number(ref) or _is_finite_number(got):
            drifts[key] = math.inf
        else:
            drifts[key] = 0.0
    # Symmetric check: a metric newly added to the candidate is a semantic
    # change too and must force a golden refresh, not pass silently.
    for key in candidate:
        if key != "ticks" and key not in reference:
            drifts[key] = math.inf
    return drifts


def _summary_drift(candidate: dict, reference: dict) -> float:
    """Largest relative deviation between two summaries (``ticks`` excluded)."""
    return max(_summary_drifts(candidate, reference).values(), default=0.0)


def _write_profiles(path: Path, top: int = 30) -> None:
    """Re-run each benchmark's event-driven engine under cProfile.

    Runs after the timed measurements so profiler overhead never pollutes
    the recorded numbers; the per-benchmark top functions (by cumulative
    time) land in one text file uploaded as a CI artifact next to
    ``BENCH_engine.json``.
    """
    import cProfile
    import pstats

    with open(path, "w") as fh:
        for label, thunk in PROFILE_TARGETS:
            profiler = cProfile.Profile()
            profiler.enable()
            tracer = thunk()
            profiler.disable()
            fh.write(f"==== {label} ====\n")
            if isinstance(tracer, SpanTracer):
                fh.write("-- per-phase wall time --\n")
                fh.write(_phase_table(tracer.phase_report()) + "\n\n")
            pstats.Stats(profiler, stream=fh).sort_stats("cumulative").print_stats(top)
    print(f"profile -> {path}")


def _soft_regressions(previous: dict | None, record: dict) -> list[dict]:
    """Benchmarks whose wall_us_per_step regressed > 1.5x vs the record.

    Advisory only: wall clock on shared CI runners is noisy, so unlike the
    summary-drift gates this never fails the run. Each regression is
    returned as a structured entry — recorded under ``regressions`` in the
    output record (so tooling can diff BENCH_engine.json revisions) and
    printed as a warning before the record is overwritten.
    """
    if not previous:
        return []

    def run_of(rec: dict | None, key: str) -> dict | None:
        if not isinstance(rec, dict):
            return None
        value = rec.get(key)
        return value if isinstance(value, dict) else None

    pairs = [("engine_24h_window", run_of(record, "best"), run_of(previous, "best"))]
    for section in (
        "idle_heavy", "busy_trace", "power_cap", "frontier_scale",
        "burst_arrival",
    ):
        pairs.append((
            f"{section} (event-driven)",
            run_of(record.get(section), "event_driven"),
            run_of(previous.get(section), "event_driven"),
        ))
    regressions = []
    for label, new_run, old_run in pairs:
        if not new_run or not old_run:
            continue
        new_us = new_run.get("wall_us_per_step")
        old_us = old_run.get("wall_us_per_step")
        if (
            isinstance(new_us, (int, float))
            and isinstance(old_us, (int, float))
            and old_us > 0
            and new_us > REGRESSION_WARN_FACTOR * old_us
        ):
            regressions.append({
                "benchmark": label,
                "wall_us_per_step": new_us,
                "recorded_best_us_per_step": old_us,
                "ratio": new_us / old_us,
                "threshold": REGRESSION_WARN_FACTOR,
            })
    return regressions


def check_golden(summary: dict, golden_path: Path) -> int:
    """Compare the benchmark summary against the committed golden record."""
    golden = json.loads(golden_path.read_text())
    reference = golden["summary"]
    failures = [
        f"{key}: golden {reference.get(key)!r} vs run {summary.get(key)!r}"
        for key, drift in _summary_drifts(summary, reference).items()
        if drift > GOLDEN_RTOL
    ]
    if failures:
        print("golden summary drift detected:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        print(
            f"(golden record: {golden_path}; regenerate with --write-golden "
            "only for intentional semantic changes)",
            file=sys.stderr,
        )
        return 1
    print(f"golden summary check passed ({golden_path})")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--system", default="tiny")
    parser.add_argument("--policy", default="backfill")
    parser.add_argument("--duration", default="24h")
    parser.add_argument("--idle-duration", default="3d")
    parser.add_argument("--busy-duration", default="24h")
    parser.add_argument("--frontier-system", default="frontier")
    parser.add_argument("--frontier-duration", default="12h")
    parser.add_argument("--burst-duration", default="12h")
    parser.add_argument("--sweep-duration", default="12h")
    parser.add_argument(
        "--sweep-seeds", type=int, default=16,
        help="seeds per grid point in the sweep benchmark (4 grid points, "
             "so 16 seeds = 64 runs)",
    )
    parser.add_argument(
        "--sweep-workers", type=int, default=4,
        help="pool size for the parallel leg of the sweep benchmark",
    )
    parser.add_argument(
        "--sweep-chunk-size", type=int, default=4,
        help="runs per pool task in the sweep benchmark",
    )
    parser.add_argument(
        "--mc-seeds", type=int, default=32,
        help="seed replicas in the Monte Carlo batch benchmark",
    )
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--output", default=str(REPO_ROOT / "BENCH_engine.json"),
        help="where to write the benchmark record",
    )
    parser.add_argument(
        "--profile", metavar="PATH", nargs="?",
        const=str(REPO_ROOT / "BENCH_profile.txt"), default=None,
        help="re-run each benchmark under cProfile and write the top "
             "functions per benchmark to PATH (default BENCH_profile.txt)",
    )
    parser.add_argument(
        "--profile-top", type=int, default=30,
        help="how many functions to keep per benchmark in --profile output",
    )
    parser.add_argument(
        "--golden", metavar="PATH", default=None,
        help="fail if the 24h run's summary drifts from this golden record",
    )
    parser.add_argument(
        "--write-golden", metavar="PATH", default=None,
        help="write the 24h run's summary as the new golden record",
    )
    args = parser.parse_args()

    system = get_system_config(args.system)
    output_path = Path(args.output)
    try:
        previous_record = json.loads(output_path.read_text())
    except (OSError, ValueError):
        previous_record = None

    window_record, window_summary = bench_24h_window(args, system)
    idle_record = bench_idle_heavy(args, system)
    busy_record = bench_busy_trace(args, system)
    power_cap_record = bench_power_cap(args, system)
    frontier_record = bench_frontier_scale(args)
    burst_record = bench_burst_arrival(args)
    sweep_record = bench_sweep_throughput(args)
    batch_mc_record = bench_batch_mc(args, system)

    record = dict(window_record)
    record["idle_heavy"] = idle_record
    record["busy_trace"] = busy_record
    record["power_cap"] = power_cap_record
    record["frontier_scale"] = frontier_record
    record["burst_arrival"] = burst_record
    record["sweep_throughput"] = sweep_record
    record["batch_mc"] = batch_mc_record
    record["python"] = platform.python_version()
    record["machine"] = platform.machine()

    regressions = _soft_regressions(previous_record, record)
    record["regressions"] = regressions
    for entry in regressions:
        print(
            f"PERF WARNING: {entry['benchmark']} wall_us_per_step "
            f"{entry['wall_us_per_step']:.0f} exceeds recorded best "
            f"{entry['recorded_best_us_per_step']:.0f} by "
            f"{entry['ratio']:.2f}x (> {entry['threshold']}x; advisory, "
            "not a gate)",
            file=sys.stderr,
        )
    # Same strict-JSON convention as StatsCollector.to_json: non-finite
    # values (inf step_reduction on an empty event run, inf mean_pue on an
    # all-idle window) export as null, never as a bare Infinity token.
    output_path.write_text(
        json.dumps(json_safe(record), indent=2, allow_nan=False) + "\n"
    )
    print(f"-> {args.output}")

    if args.profile:
        _write_profiles(Path(args.profile), top=args.profile_top)

    if args.write_golden:
        payload = {
            "benchmark": window_record["benchmark"],
            "system": system.name,
            "policy": args.policy,
            "duration": args.duration,
            "seed": args.seed,
            "rtol": GOLDEN_RTOL,
            "summary": window_summary,
        }
        Path(args.write_golden).write_text(
            json.dumps(json_safe(payload), indent=2, allow_nan=False) + "\n"
        )
        print(f"golden record written -> {args.write_golden}")

    # Dense-vs-event equivalence gate: the coalescing engine's summaries
    # must be indistinguishable from dense ticking on the idle-heavy, busy
    # (breakpoint-dense) and frontier-scale workloads. Unlike the golden
    # record, this invariant is never legitimately refreshed.
    equivalence_failures = [
        f"{rec['benchmark']}: dense-vs-event summary drift "
        f"{rec['max_summary_drift_rel']:.3e} > {EQUIVALENCE_RTOL:.0e}"
        for rec in (
            idle_record, busy_record, power_cap_record, frontier_record,
            burst_record,
        )
        if not rec["max_summary_drift_rel"] <= EQUIVALENCE_RTOL
    ]
    # Power-cap semantics: a constant cap is a hard guarantee (the
    # admission check projects exact incremental peaks, so any violation is
    # a scheduler bug), and the cap must actually bind or the benchmark
    # stops measuring anything.
    if power_cap_record["cap_violation_kwh"] != 0.0:
        equivalence_failures.append(
            f"{power_cap_record['benchmark']}: constant cap violated by "
            f"{power_cap_record['cap_violation_kwh']:.6f} kWh (must be 0)"
        )
    if not power_cap_record["capped_hold_s"] > 0.0:
        equivalence_failures.append(
            f"{power_cap_record['benchmark']}: cap never bound "
            "(capped_hold_s == 0); the workload no longer exercises capping"
        )
    # The event indexes (end-time heap, breakpoint heap) change complexity,
    # never semantics: the scan path must reproduce the heap path exactly.
    if not frontier_record["scan_vs_heap_drift_rel"] <= EQUIVALENCE_RTOL:
        equivalence_failures.append(
            f"{frontier_record['benchmark']}: scan-vs-heap summary drift "
            f"{frontier_record['scan_vs_heap_drift_rel']:.3e} > "
            f"{EQUIVALENCE_RTOL:.0e}"
        )
    # Likewise the batched job-start path (vectorised construction, journal
    # membership sync, indexed reservations) changes cost, never semantics:
    # the retained per-job baseline must reproduce it to the same tolerance.
    for rec in (frontier_record, burst_record):
        if not rec["perjob_vs_batched_drift_rel"] <= EQUIVALENCE_RTOL:
            equivalence_failures.append(
                f"{rec['benchmark']}: per-job-vs-batched summary drift "
                f"{rec['perjob_vs_batched_drift_rel']:.3e} > "
                f"{EQUIVALENCE_RTOL:.0e}"
            )
    # The sweep is an orchestration layer over the same engine, so it gets
    # the same contract: every run completes, and the pooled store must
    # reproduce the single-process store (itself direct run_request output)
    # and the public run_simulation shim to the equivalence tolerance.
    for leg in ("single", "parallel"):
        sweep_leg = sweep_record[leg]
        if (
            sweep_leg["failed"] > 0
            or sweep_leg["completed"] != sweep_record["total_runs"]
        ):
            equivalence_failures.append(
                f"{sweep_record['benchmark']}: {leg} leg completed "
                f"{sweep_leg['completed']}/{sweep_record['total_runs']} runs "
                f"with {sweep_leg['failed']} failures"
            )
    for drift_key, label in (
        ("store_vs_single_drift_rel", "pooled-vs-single store"),
        ("shim_vs_store_drift_rel", "run_simulation-vs-store"),
    ):
        if not sweep_record[drift_key] <= EQUIVALENCE_RTOL:
            equivalence_failures.append(
                f"{sweep_record['benchmark']}: {label} summary drift "
                f"{sweep_record[drift_key]:.3e} > {EQUIVALENCE_RTOL:.0e}"
            )
    # The Monte Carlo batch kernel's whole contract is replica isolation:
    # every batched replica must reproduce its serial twin at the
    # equivalence tolerance, and every replica must finish with all of its
    # jobs accounted for — a dropped replica or job is a correctness bug no
    # matter how good the speedup looks.
    if not batch_mc_record["max_summary_drift_rel"] <= EQUIVALENCE_RTOL:
        equivalence_failures.append(
            f"{batch_mc_record['benchmark']}: batched-vs-serial summary "
            f"drift {batch_mc_record['max_summary_drift_rel']:.3e} > "
            f"{EQUIVALENCE_RTOL:.0e}"
        )
    if not batch_mc_record["all_replicas_completed"]:
        equivalence_failures.append(
            f"{batch_mc_record['benchmark']}: not every replica completed "
            "with all jobs accounted for"
        )
    # The frontier-scale benchmark only means something at frontier scale.
    if frontier_record["max_running_jobs"] < 1000:
        equivalence_failures.append(
            f"{frontier_record['benchmark']}: only "
            f"{frontier_record['max_running_jobs']} concurrent jobs "
            "(>= 1000 required)"
        )
    if equivalence_failures:
        for failure in equivalence_failures:
            print(failure, file=sys.stderr)
        return 1

    if args.golden:
        return check_golden(window_summary, Path(args.golden))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
