#!/usr/bin/env python
"""Benchmark the simulation engine on a fixed-seed 24h window.

Times an end-to-end run (workload synthesis excluded) and writes the numbers
to ``BENCH_engine.json`` in the repository root, seeding the performance
trajectory that later optimisation PRs measure against.

Usage::

    PYTHONPATH=src python scripts/bench_engine.py [--system tiny] [--policy backfill]
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

from repro.config import get_system_config
from repro.engine import SimulationEngine, parse_duration
from repro.workloads import SyntheticWorkloadGenerator, default_workload_spec

REPO_ROOT = Path(__file__).resolve().parent.parent


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--system", default="tiny")
    parser.add_argument("--policy", default="backfill")
    parser.add_argument("--duration", default="24h")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--output", default=str(REPO_ROOT / "BENCH_engine.json"),
        help="where to write the benchmark record",
    )
    args = parser.parse_args()

    system = get_system_config(args.system)
    duration_s = parse_duration(args.duration)
    generator = SyntheticWorkloadGenerator(
        system, default_workload_spec(system), seed=args.seed
    )
    workload = generator.generate(duration_s)

    runs = []
    for _ in range(args.repeats):
        engine = SimulationEngine(system, workload, args.policy, seed=args.seed)
        started = time.perf_counter()
        result = engine.run()
        elapsed = time.perf_counter() - started
        summary = result.summary()
        runs.append(
            {
                "wall_s": elapsed,
                "ticks": summary["ticks"],
                "ticks_per_s": summary["ticks"] / elapsed if elapsed > 0 else 0.0,
                "simulated_s": summary["simulated_s"],
                "speedup_vs_realtime": summary["simulated_s"] / elapsed
                if elapsed > 0
                else 0.0,
            }
        )

    best = min(runs, key=lambda r: r["wall_s"])
    record = {
        "benchmark": "engine_24h_window",
        "system": system.name,
        "policy": args.policy,
        "duration": args.duration,
        "seed": args.seed,
        "jobs": len(workload),
        "repeats": args.repeats,
        "best": best,
        "runs": runs,
        "python": platform.python_version(),
        "machine": platform.machine(),
    }
    Path(args.output).write_text(json.dumps(record, indent=2) + "\n")
    print(
        f"{system.name}/{args.policy}: {len(workload)} jobs, "
        f"{best['ticks']:.0f} ticks in {best['wall_s']:.3f}s "
        f"({best['ticks_per_s']:.0f} ticks/s, "
        f"{best['speedup_vs_realtime']:.0f}x realtime) -> {args.output}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
