"""Exception hierarchy for the S-RAPS reproduction.

All library-raised errors derive from :class:`SRapsError` so that callers can
catch the whole family with a single ``except`` clause while still being able
to distinguish configuration problems from runtime scheduling/allocation
failures.
"""

from __future__ import annotations


class SRapsError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigurationError(SRapsError):
    """Raised when a system configuration is inconsistent or unknown."""


class DataLoaderError(SRapsError):
    """Raised when a dataloader cannot parse or synthesise its dataset."""


class SchedulingError(SRapsError):
    """Raised when a scheduling policy produces an invalid decision.

    Examples include scheduling a job onto nodes that are already busy (the
    ScheduleFlow corner case reported in the paper's artifact evaluation) or
    requesting more nodes than the system owns.
    """


class AllocationError(SRapsError):
    """Raised by the resource manager for invalid allocation or release."""


class SimulationError(SRapsError):
    """Raised when the simulation engine reaches an inconsistent state."""


class ExternalSchedulerError(SRapsError):
    """Raised when an external scheduler adapter violates its protocol."""


class MLModelError(SRapsError):
    """Raised by the ML pipeline for unfit models or malformed feature sets."""
