"""Cooling distribution unit (CDU) model.

Each CDU runs a secondary (compute) water loop through the cold plates of its
racks and exchanges heat with the facility (primary) loop through a liquid-
to-liquid heat exchanger. The model is a lumped thermal capacitance: the
secondary return temperature follows the instantaneous heat load through a
first-order lag determined by the loop's thermal mass and flow rate.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import CoolingConfig

#: Specific heat capacity of water, J/(kg*K).
WATER_CP = 4186.0


@dataclass
class CDUState:
    """Thermal state of one CDU at a point in time."""

    supply_temperature_c: float
    return_temperature_c: float
    heat_load_kw: float

    @property
    def delta_t(self) -> float:
        """Temperature rise across the compute loop (K)."""
        return self.return_temperature_c - self.supply_temperature_c


class CDU:
    """One cooling distribution unit (secondary loop + heat exchanger).

    Parameters
    ----------
    config:
        Plant-level cooling configuration (flow per CDU, thermal mass,
        nominal supply temperature).
    effectiveness:
        Heat-exchanger effectiveness (fraction of the maximum possible heat
        transfer to the facility loop actually achieved).
    """

    def __init__(self, config: CoolingConfig, *, effectiveness: float = 0.9) -> None:
        self.config = config
        self.effectiveness = effectiveness
        self.flow_kg_per_s = config.secondary_flow_kg_per_s_per_cdu
        self.thermal_mass_j_per_k = config.cdu_thermal_mass_j_per_k
        self._return_temperature_c = config.supply_temperature_c
        self._heat_load_kw = 0.0

    @property
    def state(self) -> CDUState:
        """Current thermal state."""
        return CDUState(
            supply_temperature_c=self.config.supply_temperature_c,
            return_temperature_c=self._return_temperature_c,
            heat_load_kw=self._heat_load_kw,
        )

    def steady_state_return_c(self, heat_load_kw: float) -> float:
        """Return temperature the loop would settle at for a constant load."""
        delta_t = (heat_load_kw * 1000.0) / (self.flow_kg_per_s * WATER_CP)
        return self.config.supply_temperature_c + delta_t

    def step(self, heat_load_kw: float, dt_s: float) -> CDUState:
        """Advance the CDU by ``dt_s`` seconds under ``heat_load_kw`` of heat.

        The return temperature relaxes exponentially towards its steady-state
        value with time constant ``thermal_mass / (flow * cp)``.
        """
        heat_load_kw = max(0.0, heat_load_kw)
        target = self.steady_state_return_c(heat_load_kw)
        tau = self.thermal_mass_j_per_k / (self.flow_kg_per_s * WATER_CP)
        alpha = 1.0 - pow(2.718281828459045, -dt_s / tau) if tau > 0 else 1.0
        self._return_temperature_c += alpha * (target - self._return_temperature_c)
        self._heat_load_kw = heat_load_kw
        return self.state

    def heat_to_facility_kw(self) -> float:
        """Heat transferred to the facility loop this step (kW)."""
        return self.effectiveness * self._heat_load_kw + (1.0 - self.effectiveness) * 0.0

    def reset(self) -> None:
        """Reset the loop to the nominal supply temperature with zero load."""
        self._return_temperature_c = self.config.supply_temperature_c
        self._heat_load_kw = 0.0
