"""Central energy plant: CDUs + cooling towers + PUE.

The plant composes the per-CDU secondary loops with the facility loop and
the cooling towers and produces the facility-level quantities the DCDT
reports: cooling power (pumps, tower fans, and — for the air-cooled fraction
of the load — CRAC compressor power) and power usage effectiveness

    PUE = (IT power + losses + cooling power) / IT power.

The paper's Frontier twin reports an average PUE around 1.06; the defaults
here land in that neighbourhood at high load and rise at low load, which is
the qualitative behaviour the what-if studies rely on. At exactly zero IT
power the ratio is unbounded: the plant reports PUE = ``float("inf")`` when
any overhead (loss or cooling) power remains, and 1.0 only when the whole
facility is drawing nothing. Fully air-cooled plants (``cdu_count == 0``,
which :class:`~repro.config.CoolingConfig` requires to come with
``air_cooled_fraction == 1.0``) are supported: all heat is removed by the
CRACs on the facility loop and the CDU return temperature is reported at
the nominal supply setpoint.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import CoolingConfig
from .cdu import CDU
from .cooling_tower import CoolingTower


@dataclass(frozen=True)
class CoolingPlantState:
    """Plant-level cooling state at one simulation time."""

    time_s: float
    it_power_kw: float
    loss_power_kw: float
    cooling_power_kw: float
    pue: float
    cdu_return_temperature_c: float
    tower_return_temperature_c: float
    tower_supply_temperature_c: float

    @property
    def total_facility_power_kw(self) -> float:
        """Total power drawn by the data centre (IT + losses + cooling), kW."""
        return self.it_power_kw + self.loss_power_kw + self.cooling_power_kw


class CoolingPlant:
    """Transient lumped cooling model for the whole data centre."""

    def __init__(self, config: CoolingConfig) -> None:
        self.config = config
        self.cdus = [CDU(config) for _ in range(config.cdu_count)]
        self.tower = CoolingTower(config)
        self._last_state: CoolingPlantState | None = None

    @property
    def last_state(self) -> CoolingPlantState | None:
        """The most recent plant state, if :meth:`step` has been called."""
        return self._last_state

    def step(
        self,
        now: float,
        it_power_kw: float,
        loss_power_kw: float,
        dt_s: float,
    ) -> CoolingPlantState:
        """Advance the cooling plant by one simulation step.

        Parameters
        ----------
        now:
            Simulation time at the *end* of the step (seconds).
        it_power_kw:
            IT (compute) power during the step, kW. All of it is assumed to
            become heat.
        loss_power_kw:
            Electrical conversion losses during the step, kW; these dissipate
            in the machine room as well and must be removed by the plant.
        dt_s:
            Step length in seconds.
        """
        it_power_kw = max(0.0, it_power_kw)
        loss_power_kw = max(0.0, loss_power_kw)
        total_heat_kw = it_power_kw + loss_power_kw

        # A fully air-cooled plant (cdu_count == 0) is forced to
        # air_cooled_fraction == 1.0 by CoolingConfig validation, so the
        # liquid share is zero exactly when there are no CDUs to take it.
        liquid_heat_kw = total_heat_kw * (1.0 - self.config.air_cooled_fraction)
        air_heat_kw = total_heat_kw * self.config.air_cooled_fraction

        # Secondary loops: split the liquid-cooled heat evenly across CDUs.
        cdu_returns: list[float] = []
        heat_to_facility_kw = 0.0
        if self.cdus:
            per_cdu_heat = liquid_heat_kw / len(self.cdus)
            for cdu in self.cdus:
                state = cdu.step(per_cdu_heat, dt_s)
                cdu_returns.append(state.return_temperature_c)
                heat_to_facility_kw += cdu.heat_to_facility_kw()

        # Air-cooled heat is removed by CRACs, whose condenser heat also ends
        # up on the facility loop.
        crac_power_kw = air_heat_kw / self.config.crac_cop if air_heat_kw > 0 else 0.0
        facility_heat_kw = heat_to_facility_kw + air_heat_kw + crac_power_kw

        tower_state = self.tower.step(facility_heat_kw, dt_s)

        pump_power_kw = self.config.pump_power_fraction * total_heat_kw
        cooling_power_kw = pump_power_kw + tower_state.fan_power_kw + crac_power_kw

        overhead_kw = loss_power_kw + cooling_power_kw
        if it_power_kw > 0:
            pue = (it_power_kw + overhead_kw) / it_power_kw
        elif overhead_kw > 0:
            # Overhead power with zero IT power: PUE is unbounded. Report
            # inf rather than the 1.0 floor, which would silently understate
            # idle overhead in any downstream aggregate.
            pue = float("inf")
        else:
            pue = 1.0

        state = CoolingPlantState(
            time_s=now,
            it_power_kw=it_power_kw,
            loss_power_kw=loss_power_kw,
            cooling_power_kw=cooling_power_kw,
            pue=pue,
            # With no CDUs the secondary loop does not exist; report the
            # nominal supply temperature rather than dividing by zero.
            cdu_return_temperature_c=(
                sum(cdu_returns) / len(cdu_returns)
                if cdu_returns
                else self.config.supply_temperature_c
            ),
            tower_return_temperature_c=tower_state.return_temperature_c,
            tower_supply_temperature_c=tower_state.supply_temperature_c,
        )
        self._last_state = state
        return state

    def reset(self) -> None:
        """Reset all loops to their nominal temperatures."""
        for cdu in self.cdus:
            cdu.reset()
        self.tower.reset()
        self._last_state = None
