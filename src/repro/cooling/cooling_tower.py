"""Evaporative cooling-tower model.

The cooling towers reject the facility loop's heat to ambient. The water
returning *to* the towers (the "cooling tower return temperature" plotted in
Fig. 6 of the paper) rises with the facility loop heat load; the towers cool
it back down to the ambient wet-bulb temperature plus an approach that grows
with load. Tower fan power is modelled as a load-dependent fraction of the
rejected heat, contributing to PUE.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import CoolingConfig
from .cdu import WATER_CP


@dataclass
class CoolingTowerState:
    """State of the cooling-tower loop at a point in time."""

    #: Temperature of water arriving at the towers (hot side), Celsius.
    return_temperature_c: float
    #: Temperature of water leaving the towers (cold side), Celsius.
    supply_temperature_c: float
    #: Heat rejected to ambient, kW.
    heat_rejected_kw: float
    #: Tower fan power, kW.
    fan_power_kw: float


class CoolingTower:
    """Facility water loop + evaporative towers (lumped)."""

    def __init__(self, config: CoolingConfig) -> None:
        self.config = config
        self.flow_kg_per_s = config.facility_flow_kg_per_s
        self.thermal_mass_j_per_k = config.facility_thermal_mass_j_per_k
        self._return_temperature_c = config.facility_supply_temperature_c
        self._supply_temperature_c = config.facility_supply_temperature_c
        self._heat_rejected_kw = 0.0
        self._fan_power_kw = 0.0

    @property
    def state(self) -> CoolingTowerState:
        """Current tower-loop state."""
        return CoolingTowerState(
            return_temperature_c=self._return_temperature_c,
            supply_temperature_c=self._supply_temperature_c,
            heat_rejected_kw=self._heat_rejected_kw,
            fan_power_kw=self._fan_power_kw,
        )

    def steady_state_return_c(self, heat_load_kw: float) -> float:
        """Return temperature for a constant heat load (steady state)."""
        delta_t = (heat_load_kw * 1000.0) / (self.flow_kg_per_s * WATER_CP)
        return self._supply_temperature_c + delta_t

    def approach_c(self, heat_load_kw: float) -> float:
        """Load-dependent approach above ambient wet bulb (K)."""
        config = self.config
        return config.tower_approach_c + config.tower_range_coefficient * heat_load_kw * 1000.0

    def step(self, heat_load_kw: float, dt_s: float) -> CoolingTowerState:
        """Advance the facility loop by ``dt_s`` seconds under ``heat_load_kw``."""
        heat_load_kw = max(0.0, heat_load_kw)

        # Cold-side (tower supply) temperature: wet bulb + approach, but never
        # below the configured facility supply setpoint.
        supply_target = max(
            self.config.facility_supply_temperature_c,
            self.config.ambient_wet_bulb_c + self.approach_c(heat_load_kw),
        )

        # Hot-side (tower return) temperature relaxes towards supply + dT.
        tau = self.thermal_mass_j_per_k / (self.flow_kg_per_s * WATER_CP)
        alpha = 1.0 - pow(2.718281828459045, -dt_s / tau) if tau > 0 else 1.0

        delta_t = (heat_load_kw * 1000.0) / (self.flow_kg_per_s * WATER_CP)
        return_target = supply_target + delta_t

        self._supply_temperature_c += alpha * (supply_target - self._supply_temperature_c)
        self._return_temperature_c += alpha * (return_target - self._return_temperature_c)
        self._heat_rejected_kw = heat_load_kw
        self._fan_power_kw = self.config.fan_power_fraction * heat_load_kw
        return self.state

    def reset(self) -> None:
        """Reset both loop temperatures to the facility supply setpoint."""
        self._return_temperature_c = self.config.facility_supply_temperature_c
        self._supply_temperature_c = self.config.facility_supply_temperature_c
        self._heat_rejected_kw = 0.0
        self._fan_power_kw = 0.0
