"""Package version information."""

__version__ = "1.0.0"
