"""Parallel sweep driver: process-pool fan-out with resumable ingest.

:func:`run_sweep` materialises a :class:`~repro.sweep.spec.SweepSpec`, skips
runs already completed in the results store (resume), fans the remainder
across a :class:`concurrent.futures.ProcessPoolExecutor` in chunks, and
ingests results into the store as the single writer.

Design points:

* **Requests cross the boundary as JSON dicts.** Workers rebuild requests
  with :meth:`~repro.sweep.request.RunRequest.from_json_dict` — once per
  chunk: the first request of a chunk takes the full round-trip (so the
  serialisation contract the store depends on is exercised by every task),
  and subsequent requests that differ only in their seed are derived from
  the parsed one with :func:`dataclasses.replace`.
* **Monte Carlo replicas share one batched task.** With ``batch_size > 1``,
  pending requests that are identical except for their seed are grouped —
  up to ``batch_size`` per group — into a single task executed by the
  in-process batch kernel (:func:`repro.engine.run_batch`): one shared
  system/power-model pool, one batched workload generation, one power-state
  build. Each replica still ships its own outcome and progress beats, so
  the store and resume semantics are identical to the per-run path.
  Requests with no compatible partner fall back to per-run tasks unchanged.
* **Chunked dispatch.** One pool task executes ``chunk_size`` runs back to
  back, amortising task overhead on short runs while keeping failure and
  progress granularity per run.
* **Failures never kill the sweep.** A run raising in a worker comes back
  as a traceback string and is recorded as a ``failed`` row. A chunk task
  dying wholesale (e.g. ``BrokenProcessPool``) marks every unreported run
  of that chunk failed — nothing is silently lost.
* **Per-run progress aggregates into one heartbeat.** Each worker attaches
  a throttled :class:`~repro.obs.ProgressReporter` whose callback ships
  ``(run_id, fraction_done)`` beats over the queue; the parent folds all
  active runs into a single sweep-level line on its own cadence.
* **Resume is id-based and idempotent.** Completed run ids are read from
  the store before dispatch and skipped; failed rows stay eligible and are
  retried. Killing the driver loses at most in-flight runs — every ingested
  result was committed individually.
* **Ctrl-C is safe.** ``KeyboardInterrupt`` during ingest salvages the
  outcomes already sitting in the results queue into the store, shuts the
  pool and manager down (no orphaned workers), and re-raises with a resume
  hint — the interrupted sweep continues from the store on the next run.
* **Ingest terminates by accounting, not by peeking.** ``Queue.empty()``
  is unreliable across processes, so the loop runs until every pending run
  has either reported its outcome or been reaped from a dead chunk.
"""

from __future__ import annotations

import json
import sys
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from dataclasses import dataclass, replace
from pathlib import Path
from queue import Empty
from typing import IO, TYPE_CHECKING, Callable, Mapping, Union

import numpy as np

from ..engine.batch import run_batch
from ..exceptions import ConfigurationError
from ..obs import Observability, ProgressReporter
from .request import RunRequest, run_request
from .spec import SweepRun, SweepSpec
from .store import ResultsStore

if TYPE_CHECKING:
    from multiprocessing.managers import SyncManager
    from queue import Queue

__all__ = ["SweepOutcome", "run_sweep"]


@dataclass(frozen=True)
class SweepOutcome:
    """What one :func:`run_sweep` invocation did.

    ``total`` counts the materialised grid; ``skipped`` the runs resume
    found already completed; ``executed = completed + failed`` the runs
    this invocation actually performed. ``stopped_early`` is only set by
    the test-oriented ``stop_after_runs`` kill switch.

    ``batched_tasks`` / ``per_run_tasks`` describe how the pending runs
    were dispatched: a batched task executes 2..``batch_size`` seed
    replicas of one request on the in-process batch kernel; a per-run task
    executes exactly one run. With ``batch_size=1`` every task is per-run.
    """

    sweep: str
    total: int
    skipped: int
    executed: int
    completed: int
    failed: int
    stopped_early: bool
    wall_s: float
    runs_per_s: float
    batched_tasks: int = 0
    per_run_tasks: int = 0


@dataclass(frozen=True)
class _RunPayload:
    """What the parent ships to a worker for one run (picklable)."""

    run_id: str
    sweep: str
    run_index: int
    workload: str
    request: dict[str, object]
    progress_interval_s: float | None


@dataclass(frozen=True)
class _RunOutcome:
    """What a worker ships back for one run (picklable)."""

    run_id: str
    status: str
    summary: dict[str, float] | None
    error: str | None
    wall_s: float


@dataclass(frozen=True)
class _BatchPayload:
    """A batched task: seed replicas of one request, run on the batch kernel.

    Grouping guarantees every member's request dict is identical except for
    its ``seed``, which is exactly the compatibility contract of
    :func:`repro.engine.run_batch`.
    """

    payloads: tuple[_RunPayload, ...]


#: One unit of worker dispatch: a single run or a batched replica group.
_Task = Union[_RunPayload, _BatchPayload]


@dataclass(frozen=True)
class _ProgressBeat:
    """One throttled in-run progress sample from a worker."""

    run_id: str
    fraction: float


def _execute_one(
    payload: _RunPayload,
    queue: "Queue[object]",
    request: RunRequest | None = None,
) -> _RunOutcome:
    """Run one request in a worker, streaming progress beats to ``queue``.

    ``request`` optionally supplies the already-parsed request (the
    once-per-chunk parse in :func:`_execute_chunk`); ``None`` parses the
    payload's JSON dict here, inside the failure boundary.
    """
    start = time.monotonic()
    try:
        if request is None:
            request = RunRequest.from_json_dict(payload.request)
        obs: Observability | None = None
        if payload.progress_interval_s is not None:

            def _beat(snapshot: object) -> None:
                fraction = getattr(snapshot, "fraction_done", None)
                if fraction is not None:
                    queue.put(_ProgressBeat(run_id=payload.run_id, fraction=fraction))

            obs = Observability(
                progress=ProgressReporter(
                    payload.progress_interval_s, callback=_beat
                )
            )
        result = run_request(request, obs=obs)
        return _RunOutcome(
            run_id=payload.run_id,
            status="completed",
            summary=result.summary(),
            error=None,
            wall_s=time.monotonic() - start,
        )
    except Exception:
        # Any failure becomes data: the traceback travels back as a string
        # and is recorded as a failed row. The sweep itself never dies.
        return _RunOutcome(
            run_id=payload.run_id,
            status="failed",
            summary=None,
            error=traceback.format_exc(),
            wall_s=time.monotonic() - start,
        )


def _execute_batch(batch: _BatchPayload, queue: "Queue[object]") -> None:
    """Run one batched replica group, shipping per-replica outcomes.

    One :func:`repro.engine.run_batch` call executes every seed replica of
    the group in-process; each replica gets its own throttled
    :class:`~repro.obs.ProgressReporter` whose beats carry that replica's
    run id, so the parent's heartbeat sees batched runs exactly like
    per-run ones. A failure anywhere in the batch fails every replica of
    the group (they share one kernel invocation), with the traceback
    recorded on each row. Per-replica ``wall_s`` is the batch wall time
    amortised over the group — individual replicas are interleaved on one
    loop, so no finer attribution exists.
    """
    start = time.monotonic()
    payloads = batch.payloads
    try:
        request = RunRequest.from_json_dict(payloads[0].request)
        seeds = [int(payload.request["seed"]) for payload in payloads]  # type: ignore[arg-type]
        reporters: list[ProgressReporter | None] | None = None
        interval_s = payloads[0].progress_interval_s
        if interval_s is not None:

            def _replica_beat(run_id: str) -> "Callable[[object], None]":
                def _beat(snapshot: object) -> None:
                    fraction = getattr(snapshot, "fraction_done", None)
                    if fraction is not None:
                        queue.put(_ProgressBeat(run_id=run_id, fraction=fraction))

                return _beat

            reporters = [
                ProgressReporter(interval_s, callback=_replica_beat(payload.run_id))
                for payload in payloads
            ]
        results = run_batch(request, seeds, progress=reporters)
        wall_s = (time.monotonic() - start) / len(payloads)
        for payload, result in zip(payloads, results):
            queue.put(
                _RunOutcome(
                    run_id=payload.run_id,
                    status="completed",
                    summary=result.summary(),
                    error=None,
                    wall_s=wall_s,
                )
            )
    except Exception:
        error = traceback.format_exc()
        wall_s = (time.monotonic() - start) / len(payloads)
        for payload in payloads:
            queue.put(
                _RunOutcome(
                    run_id=payload.run_id,
                    status="failed",
                    summary=None,
                    error=error,
                    wall_s=wall_s,
                )
            )


def _equal_except_seed(
    a: Mapping[str, object], b: Mapping[str, object]
) -> bool:
    """Whether two request JSON dicts describe the same run modulo seed."""
    if a.keys() != b.keys():
        return False
    return all(a[key] == b[key] for key in a if key != "seed")


def _execute_chunk(tasks: tuple[_Task, ...], queue: "Queue[object]") -> None:
    """Pool task: run a chunk of tasks, shipping each outcome as it lands.

    The request JSON is parsed once per chunk: the first per-run payload
    takes the full ``from_json_dict`` round-trip (keeping the
    serialisation contract exercised by every task), and later payloads
    that differ only in their seed reuse the parsed request via
    ``dataclasses.replace``. Batched tasks parse their own first payload —
    the same one-round-trip-per-task discipline.
    """
    base_dict: Mapping[str, object] | None = None
    base_request: RunRequest | None = None
    for task in tasks:
        if isinstance(task, _BatchPayload):
            _execute_batch(task, queue)
            continue
        request: RunRequest | None = None
        if base_request is not None and base_dict is not None:
            if _equal_except_seed(base_dict, task.request):
                request = replace(base_request, seed=task.request["seed"])  # type: ignore[arg-type]
        if request is None:
            try:
                request = RunRequest.from_json_dict(task.request)
                base_request, base_dict = request, task.request
            except Exception:
                # Leave request None: _execute_one re-parses inside its
                # failure boundary and records the traceback as a failed row.
                request = None
        queue.put(_execute_one(task, queue, request))


def _task_payloads(task: _Task) -> tuple[_RunPayload, ...]:
    return task.payloads if isinstance(task, _BatchPayload) else (task,)


def _group_tasks(
    pending: list[SweepRun],
    payloads: Mapping[str, _RunPayload],
    batch_size: int,
) -> tuple[list[_Task], int, int]:
    """Group compatible pending runs into batched tasks.

    Runs whose request dicts are identical except for their seed share a
    group; each group is sliced into batched tasks of up to ``batch_size``
    replicas, and any leftover singleton (or any run with no compatible
    partner) becomes an ordinary per-run task. Returns the task list plus
    ``(batched_tasks, per_run_tasks)`` counts. Group order follows first
    appearance in ``pending``, so ``batch_size=1`` preserves the exact
    pre-batching dispatch order.
    """
    if batch_size <= 1:
        return [payloads[run.run_id] for run in pending], 0, len(pending)
    groups: dict[str, list[_RunPayload]] = {}
    for run in pending:
        payload = payloads[run.run_id]
        key = json.dumps(
            {k: v for k, v in payload.request.items() if k != "seed"},
            sort_keys=True,
        )
        groups.setdefault(key, []).append(payload)
    tasks: list[_Task] = []
    batched_tasks = per_run_tasks = 0
    for group in groups.values():
        for start in range(0, len(group), batch_size):
            chunk = group[start : start + batch_size]
            if len(chunk) >= 2:
                tasks.append(_BatchPayload(tuple(chunk)))
                batched_tasks += 1
            else:
                tasks.append(chunk[0])
                per_run_tasks += 1
    return tasks, batched_tasks, per_run_tasks


def _chunks(items: list[_Task], size: int) -> list[tuple[_Task, ...]]:
    return [tuple(items[i : i + size]) for i in range(0, len(items), size)]


class _Heartbeat:
    """Folds per-run beats into one throttled sweep-level line."""

    def __init__(
        self,
        sweep: str,
        total: int,
        interval_s: float,
        stream: IO[str] | None,
    ) -> None:
        self.sweep = sweep
        self.total = total
        self.interval_s = interval_s
        self.stream = stream
        self.done = 0
        self.fractions: dict[str, float] = {}
        self._start = time.monotonic()
        self._next_due = self._start + interval_s

    def on_beat(self, beat: _ProgressBeat) -> None:
        self.fractions[beat.run_id] = beat.fraction

    def on_done(self, run_id: str) -> None:
        self.done += 1
        self.fractions.pop(run_id, None)

    def maybe_emit(self) -> None:
        if self.stream is None or time.monotonic() < self._next_due:
            return
        self._next_due = time.monotonic() + self.interval_s
        active = len(self.fractions)
        mean_fraction = (
            sum(self.fractions.values()) / active if active > 0 else 0.0
        )
        wall = time.monotonic() - self._start
        self.stream.write(
            f"[sweep {self.sweep}] {self.done}/{self.total} done  "
            f"active={active} mean_progress={mean_fraction:.0%}  "
            f"wall={wall:.0f}s\n"
        )
        self.stream.flush()


def _record_outcome(
    store: ResultsStore, run: SweepRun, outcome: _RunOutcome
) -> None:
    common = dict(
        run_id=run.run_id,
        sweep=run.sweep,
        run_index=run.run_index,
        system=run.request.system,
        policy=run.request.policy,
        workload=run.workload,
        seed=run.request.seed,
        request_json=run.request.to_json(),
    )
    if outcome.status == "completed" and outcome.summary is not None:
        store.record_completed(
            **common,  # type: ignore[arg-type]
            summary=outcome.summary,
            wall_s=outcome.wall_s,
            finished_unix_s=time.time(),
        )
    else:
        store.record_failed(
            **common,  # type: ignore[arg-type]
            error=outcome.error or "worker returned no error detail",
            wall_s=outcome.wall_s,
            finished_unix_s=time.time(),
        )


def _run_serial(
    tasks: list[_Task],
    store: ResultsStore,
    heartbeat: _Heartbeat,
    by_id: Mapping[str, SweepRun],
    stop_after_runs: int | None,
) -> tuple[int, int, bool]:
    """In-process path for ``workers=1``: the honest single-process baseline.

    No pool, no pickling of results — but every task still goes through
    the JSON round-trip (each task runs as its own single-task chunk, so
    the ``stop_after_runs`` kill switch keeps per-task granularity) and
    both paths execute the identical computation.
    """
    import queue as queue_module

    completed = failed = ingested = 0
    for task in tasks:
        if stop_after_runs is not None and ingested >= stop_after_runs:
            return completed, failed, True
        beats: "Queue[object]" = queue_module.Queue()
        _execute_chunk((task,), beats)
        while True:
            try:
                message = beats.get_nowait()
            except queue_module.Empty:
                break
            if isinstance(message, _ProgressBeat):
                heartbeat.on_beat(message)
                continue
            if isinstance(message, _RunOutcome):
                _record_outcome(store, by_id[message.run_id], message)
                heartbeat.on_done(message.run_id)
                ingested += 1
                if message.status == "completed":
                    completed += 1
                else:
                    failed += 1
        heartbeat.maybe_emit()
    return completed, failed, False


def run_sweep(
    spec: SweepSpec,
    store_path: str | Path,
    *,
    workers: int | None = None,
    chunk_size: int = 8,
    batch_size: int = 1,
    resume: bool = True,
    heartbeat_interval_s: float | None = 10.0,
    progress_interval_s: float | None = None,
    stop_after_runs: int | None = None,
    shuffle_seed: int | None = None,
    stream: IO[str] | None = None,
) -> SweepOutcome:
    """Execute a sweep into a results store, in parallel, resumably.

    Parameters
    ----------
    spec:
        The sweep to run; materialised with :meth:`SweepSpec.materialize`.
    store_path:
        SQLite results store (created if absent).
    workers:
        Pool size; ``None`` means ``os.cpu_count()``. ``1`` runs in-process
        with no pool — the single-process baseline the throughput benchmark
        compares against.
    chunk_size:
        Tasks per pool submission (a batched task counts as one).
    batch_size:
        Maximum seed replicas executed per batched task. ``1`` (the
        default) disables batching; ``> 1`` groups pending requests that
        are identical except for their seed onto the in-process Monte
        Carlo kernel (:func:`repro.engine.run_batch`), which shares the
        system config, power model and power-state construction across the
        group. Stored results are identical (within 1e-9 per metric, and
        bit-identical in practice) to a ``batch_size=1`` sweep; requests
        with no compatible partner run on the per-run path unchanged.
    resume:
        Skip run ids already stored as completed. Failed rows are always
        retried. ``False`` re-executes (and overwrites) everything.
    heartbeat_interval_s:
        Cadence of the sweep-level progress line on ``stream`` (default
        stderr); ``None`` disables it.
    progress_interval_s:
        Cadence of *per-run* progress beats shipped from workers; defaults
        to ``heartbeat_interval_s / 2`` (``None`` disables in-run beats and
        leaves only per-run completion granularity).
    stop_after_runs:
        Stop dispatch after ingesting this many run outcomes — simulates a
        killed driver for resume tests. In-flight chunk remainders are
        abandoned (not recorded), exactly like a real kill.
    shuffle_seed:
        Execute runs in a shuffled order (results must be identical — seeds
        are keyed by materialisation index, and tests rely on this).
    stream:
        Heartbeat destination; defaults to ``sys.stderr``.
    """
    if workers is not None and workers < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers}")
    if chunk_size < 1:
        raise ConfigurationError(f"chunk_size must be >= 1, got {chunk_size}")
    if batch_size < 1:
        raise ConfigurationError(f"batch_size must be >= 1, got {batch_size}")
    if stop_after_runs is not None and stop_after_runs < 0:
        raise ConfigurationError("stop_after_runs must be >= 0")

    wall_start = time.monotonic()
    runs = spec.materialize()
    by_id = {run.run_id: run for run in runs}

    if heartbeat_interval_s is not None and stream is None:
        stream = sys.stderr
    if progress_interval_s is None and heartbeat_interval_s is not None:
        progress_interval_s = heartbeat_interval_s / 2.0

    with ResultsStore(store_path) as store:
        done_ids = store.known_run_ids(status="completed") if resume else set()
        pending = [run for run in runs if run.run_id not in done_ids]
        skipped = len(runs) - len(pending)

        if shuffle_seed is not None:
            order = np.random.default_rng(shuffle_seed).permutation(len(pending))
            pending = [pending[int(i)] for i in order]

        payloads = {
            run.run_id: _RunPayload(
                run_id=run.run_id,
                sweep=run.sweep,
                run_index=run.run_index,
                workload=run.workload,
                request=run.request.to_json_dict(),
                progress_interval_s=progress_interval_s,
            )
            for run in pending
        }
        heartbeat = _Heartbeat(
            spec.name,
            len(runs),
            heartbeat_interval_s if heartbeat_interval_s is not None else 3600.0,
            stream if heartbeat_interval_s is not None else None,
        )
        heartbeat.done = skipped

        tasks, batched_tasks, per_run_tasks = _group_tasks(
            pending, payloads, batch_size
        )

        if workers == 1 or not pending:
            completed, failed, stopped = _run_serial(
                tasks, store, heartbeat, by_id, stop_after_runs
            )
        else:
            completed, failed, stopped = _run_pooled(
                tasks,
                len(pending),
                store,
                heartbeat,
                by_id,
                workers=workers,
                chunk_size=chunk_size,
                stop_after_runs=stop_after_runs,
            )

    wall_s = time.monotonic() - wall_start
    executed = completed + failed
    return SweepOutcome(
        sweep=spec.name,
        total=len(runs),
        skipped=skipped,
        executed=executed,
        completed=completed,
        failed=failed,
        stopped_early=stopped,
        wall_s=wall_s,
        runs_per_s=executed / wall_s if wall_s > 0 else 0.0,
        batched_tasks=batched_tasks,
        per_run_tasks=per_run_tasks,
    )


def _run_pooled(
    tasks: list[_Task],
    pending_count: int,
    store: ResultsStore,
    heartbeat: _Heartbeat,
    by_id: Mapping[str, SweepRun],
    *,
    workers: int | None,
    chunk_size: int,
    stop_after_runs: int | None,
) -> tuple[int, int, bool]:
    """Fan chunks across a process pool, ingesting results as they stream in."""
    import multiprocessing

    completed = failed = ingested = 0
    manager: "SyncManager" = multiprocessing.Manager()
    reported: set[str] = set()

    def _reap_dead_chunk(
        chunk: tuple[_Task, ...], error: BaseException
    ) -> int:
        """Record every unreported run of a chunk whose task died wholesale.

        Covers worker crashes / ``BrokenProcessPool``: the runs never got
        to report, and silence is not an option for a warehouse. Batched
        tasks reap every replica of the group.
        """
        count = 0
        for task in chunk:
            for payload in _task_payloads(task):
                if payload.run_id in reported:
                    continue
                _record_outcome(
                    store,
                    by_id[payload.run_id],
                    _RunOutcome(
                        run_id=payload.run_id,
                        status="failed",
                        summary=None,
                        error=f"chunk task died before the run reported: {error!r}",
                        wall_s=0.0,
                    ),
                )
                reported.add(payload.run_id)
                heartbeat.on_done(payload.run_id)
                count += 1
        return count

    try:
        queue: "Queue[object]" = _results_queue(manager)
        pool = ProcessPoolExecutor(max_workers=workers)
        try:
            future_chunks: dict[Future[None], tuple[_Task, ...]] = {
                pool.submit(_execute_chunk, chunk, queue): chunk
                for chunk in _chunks(tasks, chunk_size)
            }
            outstanding = set(future_chunks)
            # Termination is by deterministic accounting, never by peeking:
            # Queue.empty() is documented unreliable across processes, so
            # "all futures done and the queue looks empty" can still leave
            # the last _RunOutcome in flight. Every pending run either
            # reports over the queue or is reaped from a dead chunk, so the
            # loop runs until the two tallies meet.
            while outstanding or len(reported) < pending_count:
                drained = False
                while True:
                    try:
                        message = queue.get(timeout=0.05)
                    except Empty:
                        break
                    drained = True
                    if isinstance(message, _ProgressBeat):
                        heartbeat.on_beat(message)
                        continue
                    if isinstance(message, _RunOutcome):
                        _record_outcome(store, by_id[message.run_id], message)
                        reported.add(message.run_id)
                        heartbeat.on_done(message.run_id)
                        ingested += 1
                        if message.status == "completed":
                            completed += 1
                        else:
                            failed += 1
                        if (
                            stop_after_runs is not None
                            and ingested >= stop_after_runs
                        ):
                            # Simulated kill: stop ingesting. Queued chunks
                            # are cancelled; in-flight ones drain into the
                            # queue unread, so their runs are never
                            # recorded — exactly a kill's store footprint,
                            # without orphaning live worker processes.
                            pool.shutdown(wait=True, cancel_futures=True)
                            return completed, failed, True
                heartbeat.maybe_emit()
                if not outstanding:
                    continue
                if drained:
                    finished = {f for f in outstanding if f.done()}
                else:
                    finished, _ = wait(
                        outstanding, timeout=0.1, return_when=FIRST_COMPLETED
                    )
                outstanding -= finished
                for future in finished:
                    error = future.exception()
                    if error is not None:
                        failed += _reap_dead_chunk(future_chunks[future], error)
        except BaseException:
            # KeyboardInterrupt (and anything else escaping the ingest
            # loop) must not lose work or orphan workers: persist outcomes
            # already delivered to the queue, tell the user the sweep is
            # resumable, then shut the pool down on the way out.
            salvaged = _salvage_queue(queue, store, by_id, reported)
            if heartbeat.stream is not None:
                heartbeat.stream.write(
                    f"[sweep {heartbeat.sweep}] interrupted — "
                    f"{len(reported)} run(s) recorded ({salvaged} salvaged "
                    "from the queue); re-run the same sweep to resume\n"
                )
                heartbeat.stream.flush()
            raise
        finally:
            pool.shutdown(wait=False, cancel_futures=True)
    finally:
        manager.shutdown()
    return completed, failed, False


def _results_queue(manager: "SyncManager") -> "Queue[object]":
    """The parent-side results queue (module hook so tests can wrap it)."""
    return manager.Queue()


def _salvage_queue(
    queue: "Queue[object]",
    store: ResultsStore,
    by_id: Mapping[str, SweepRun],
    reported: set[str],
) -> int:
    """Drain and persist outcomes already delivered when ingest is aborted.

    Called on the interrupt path: an outcome sitting in the manager queue
    is finished work, and dropping it would re-run that simulation on
    resume for nothing. Best effort — a manager that is already gone just
    ends the drain.
    """
    salvaged = 0
    while True:
        try:
            message = queue.get_nowait()
        except (Empty, OSError, EOFError):
            return salvaged
        if isinstance(message, _RunOutcome) and message.run_id not in reported:
            _record_outcome(store, by_id[message.run_id], message)
            reported.add(message.run_id)
            salvaged += 1
