"""Parallel scenario sweeps: fan a grid of runs over processes into SQLite.

The paper's actual workflow is comparative — power/cooling outcomes across
seeds, scheduling policies and system variants — so one fast run is not
enough; this package turns the engine from "one run" into "10k runs
overnight":

* :mod:`repro.sweep.request` — :class:`RunRequest`, the serialisable
  description of one engine run (JSON round-trip, content-hash
  :attr:`~RunRequest.run_id`), and :func:`run_request`, the single
  execution path shared by ``run_simulation``, the CLIs and pool workers.
* :mod:`repro.sweep.spec` — :class:`SweepSpec` axis grids materialised
  into :class:`SweepRun` lists with order-independent spawned seeds.
* :mod:`repro.sweep.driver` — :func:`run_sweep`, the resumable
  process-pool driver with failure capture and a sweep-level heartbeat.
* :mod:`repro.sweep.store` — :class:`ResultsStore`, the single-writer
  WAL-mode SQLite warehouse with an axis/metric query layer and CSV export.
* :mod:`repro.sweep.cli` — the ``repro-sweep`` command
  (``run`` / ``status`` / ``query`` / ``example``).
"""

from .driver import SweepOutcome, run_sweep
from .request import RunRequest, run_request
from .spec import SweepRun, SweepSpec, load_sweep_spec
from .store import ResultsStore, StoredRun

__all__ = [
    "ResultsStore",
    "RunRequest",
    "run_request",
    "run_sweep",
    "load_sweep_spec",
    "StoredRun",
    "SweepOutcome",
    "SweepRun",
    "SweepSpec",
]
