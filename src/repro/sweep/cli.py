"""Command-line entry point: ``repro-sweep`` / ``python -m repro.sweep``.

Subcommands:

``run``
    Execute a sweep spec (JSON/YAML) into a SQLite results store, in
    parallel, resuming past completed runs by default.
``status``
    Completed/failed counts for a store (optionally one sweep).
``query``
    Filter rows by axis values, order by any metric (top-N), print a table
    or export CSV.
``example``
    Write a commented-by-construction example spec to get started.

Examples
--------
Run a two-policy, 8-seed comparison on the tiny system with 4 workers::

    repro-sweep example --out sweep.json
    repro-sweep run sweep.json --store results.sqlite --workers 4
    repro-sweep status results.sqlite
    repro-sweep query results.sqlite --order-by total_energy_kwh --limit 5
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from typing import Sequence

from ..exceptions import SRapsError
from .driver import run_sweep
from .spec import WORKLOAD_VARIANTS, SweepSpec, load_sweep_spec
from .store import SUMMARY_COLUMNS, ResultsStore, StoredRun

__all__ = ["main", "build_parser"]

_EXAMPLE_SPEC: dict[str, object] = {
    "name": "tiny-policy-compare",
    "duration": "12h",
    "systems": ["tiny"],
    "policies": ["fcfs", "backfill"],
    "workloads": ["default", "busy_trace"],
    "n_seeds": 4,
    "root_seed": 42,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-sweep",
        description=(
            "Fan a grid of S-RAPS simulation runs across a process pool and "
            "stream the results into a queryable SQLite warehouse."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="execute a sweep spec into a results store")
    run_p.add_argument("spec", help="sweep spec file (JSON, or YAML if available)")
    run_p.add_argument(
        "--store", required=True, metavar="PATH", help="SQLite results store"
    )
    run_p.add_argument(
        "--workers",
        type=int,
        default=None,
        help="process-pool size; 1 = in-process, default: cpu count",
    )
    run_p.add_argument(
        "--chunk-size",
        type=int,
        default=8,
        help="tasks per pool submission (default: 8)",
    )
    run_p.add_argument(
        "--batch-size",
        type=int,
        default=1,
        metavar="N",
        help=(
            "group up to N seed replicas of one request into a single "
            "in-process Monte Carlo batch task (default: 1 = no batching)"
        ),
    )
    run_p.add_argument(
        "--no-resume",
        action="store_true",
        help="re-execute runs already completed in the store (overwrites rows)",
    )
    run_p.add_argument(
        "--heartbeat",
        type=float,
        default=10.0,
        metavar="SECONDS",
        help="sweep progress line cadence on stderr; 0 disables (default: 10)",
    )
    run_p.add_argument(
        "--quiet", action="store_true", help="suppress the outcome summary"
    )

    status_p = sub.add_parser("status", help="completed/failed counts for a store")
    status_p.add_argument("store", help="SQLite results store")
    status_p.add_argument(
        "--sweep", default=None, help="restrict to one sweep name"
    )

    query_p = sub.add_parser("query", help="filter, rank and export stored runs")
    query_p.add_argument("store", help="SQLite results store")
    query_p.add_argument("--sweep", default=None, help="filter: sweep name")
    query_p.add_argument("--system", default=None, help="filter: system name")
    query_p.add_argument("--policy", default=None, help="filter: policy name")
    query_p.add_argument("--workload", default=None, help="filter: workload variant")
    query_p.add_argument("--seed", type=int, default=None, help="filter: seed")
    query_p.add_argument(
        "--status",
        default=None,
        choices=("completed", "failed"),
        help="filter: run status",
    )
    query_p.add_argument(
        "--order-by",
        default=None,
        metavar="COLUMN",
        help="order by an axis or metric column, e.g. total_energy_kwh",
    )
    query_p.add_argument(
        "--descending", action="store_true", help="order descending (top-N first)"
    )
    query_p.add_argument(
        "--limit", type=int, default=None, help="return at most this many rows"
    )
    query_p.add_argument(
        "--csv", metavar="PATH", default=None, help="export the result as CSV"
    )
    query_p.add_argument(
        "--metrics",
        default="total_energy_kwh,mean_pue,mean_utilization,mean_wait_s",
        help="comma-separated metric columns for the printed table",
    )

    example_p = sub.add_parser("example", help="write an example sweep spec")
    example_p.add_argument(
        "--out", metavar="PATH", default=None, help="destination (default: stdout)"
    )
    return parser


def _fmt_metric(value: float) -> str:
    if not math.isfinite(value):
        return "inf" if value > 0 else "-inf"
    return f"{value:.4g}"


def _print_query_table(rows: list[StoredRun], metrics: list[str]) -> None:
    header = ["run_id", "system", "policy", "workload", "seed", "status", *metrics]
    table = [header]
    for run in rows:
        cells = [
            run.run_id,
            run.system,
            run.policy or "-",
            run.workload,
            str(run.seed),
            run.status,
        ]
        for name in metrics:
            if run.summary is None:
                cells.append("-")
            else:
                cells.append(_fmt_metric(run.summary[name]))
        table.append(cells)
    widths = [max(len(row[i]) for row in table) for i in range(len(header))]
    for row in table:
        print("  ".join(cell.ljust(width) for cell, width in zip(row, widths)))


def _cmd_run(args: argparse.Namespace) -> int:
    spec = load_sweep_spec(args.spec)
    heartbeat = None if args.heartbeat <= 0 else args.heartbeat
    outcome = run_sweep(
        spec,
        args.store,
        workers=args.workers,
        chunk_size=args.chunk_size,
        batch_size=args.batch_size,
        resume=not args.no_resume,
        heartbeat_interval_s=heartbeat,
    )
    if not args.quiet:
        print(
            f"sweep {outcome.sweep!r}: {outcome.total} runs "
            f"({outcome.skipped} resumed, {outcome.completed} completed, "
            f"{outcome.failed} failed) in {outcome.wall_s:.1f}s "
            f"[{outcome.runs_per_s:.2f} runs/s] "
            f"tasks: {outcome.batched_tasks} batched + "
            f"{outcome.per_run_tasks} per-run"
        )
    return 0 if outcome.failed == 0 else 1


def _cmd_status(args: argparse.Namespace) -> int:
    with ResultsStore(args.store) as store:
        counts = store.count_by_status(sweep=args.sweep)
    completed = counts.get("completed", 0)
    failed = counts.get("failed", 0)
    scope = f"sweep {args.sweep!r}" if args.sweep else "store"
    print(f"{scope}: {completed} completed, {failed} failed")
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    metrics = [name.strip() for name in args.metrics.split(",") if name.strip()]
    unknown = sorted(set(metrics) - set(SUMMARY_COLUMNS))
    if unknown:
        print(
            f"unknown metric column(s): {', '.join(unknown)}; known: "
            + ", ".join(SUMMARY_COLUMNS),
            file=sys.stderr,
        )
        return 2
    query_kwargs = dict(
        sweep=args.sweep,
        system=args.system,
        policy=args.policy,
        workload=args.workload,
        seed=args.seed,
        status=args.status,
        order_by=args.order_by,
        descending=args.descending,
        limit=args.limit,
    )
    with ResultsStore(args.store) as store:
        if args.csv:
            count = store.to_csv(args.csv, **query_kwargs)
            print(f"wrote {count} rows to {args.csv}")
            return 0
        rows = store.runs(**query_kwargs)  # type: ignore[arg-type]
    if not rows:
        print("no matching runs")
        return 0
    _print_query_table(rows, metrics)
    return 0


def _cmd_example(args: argparse.Namespace) -> int:
    text = json.dumps(_EXAMPLE_SPEC, indent=2) + "\n"
    # Validate what we hand out: the example must always materialise.
    SweepSpec.from_json_dict(_EXAMPLE_SPEC).materialize()
    if args.out is None:
        sys.stdout.write(text)
    else:
        with open(args.out, "w") as handle:
            handle.write(text)
        print(f"wrote example spec to {args.out}")
        print("known workload variants: " + ", ".join(sorted(WORKLOAD_VARIANTS)))
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "run": _cmd_run,
        "status": _cmd_status,
        "query": _cmd_query,
        "example": _cmd_example,
    }
    try:
        return handlers[args.command](args)
    except KeyboardInterrupt:
        # The driver has already salvaged queued outcomes and shut the pool
        # down; every recorded run is durable, so the same command resumes.
        print(
            "interrupted — completed runs are stored; re-run the same "
            "command to resume",
            file=sys.stderr,
        )
        return 130
    except (SRapsError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
