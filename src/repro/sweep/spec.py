"""Sweep specifications: an axis grid materialised into concrete runs.

A :class:`SweepSpec` names the axes of a scenario sweep — systems, scheduling
policies, workload variants and seeds — plus the shared run parameters
(window, horizon, engine flags). :meth:`SweepSpec.materialize` expands the
grid into an ordered list of :class:`SweepRun` rows, each wrapping a fully
serialisable :class:`~repro.sweep.request.RunRequest` with its sweep
coordinates (run index and axis labels), ready for the parallel driver.

Seeds come in two flavours:

``n_seeds`` (Monte Carlo mode)
    Per-run seeds are derived via ``numpy.random.SeedSequence(root_seed)
    .spawn(total)`` keyed by run index at *materialisation* time, so every
    run draws from a statistically independent stream and the stored results
    are identical no matter in which order (or on how many workers) the runs
    execute or complete.

``seeds`` (paired mode)
    An explicit seed list applied to every grid point, so e.g. two policies
    can be compared on bit-identical workloads seed by seed.

Workload variants are names: the built-in registry covers the benchmark
specs (``default``, ``busy_trace``, ``frontier_scale``, ``burst_arrival``,
``idle_heavy``) and ``custom_workloads`` adds inline
:class:`~repro.workloads.WorkloadSpec` definitions under new names.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from itertools import product
from pathlib import Path
from typing import Callable, Mapping

import numpy as np

from ..exceptions import ConfigurationError
from ..power.signals import OperatingSignals
from ..units import parse_duration
from ..workloads import (
    WorkloadSpec,
    burst_arrival_spec,
    busy_trace_spec,
    frontier_scale_spec,
)
from .request import RunRequest, workload_spec_from_dict, workload_spec_to_dict

__all__ = [
    "SweepRun",
    "SweepSpec",
    "WORKLOAD_VARIANTS",
    "load_sweep_spec",
]


def _idle_heavy_spec() -> WorkloadSpec:
    """Sparse constant-power jobs separated by idle hours (bench shape)."""
    from ..workloads.distributions import (
        JobSizeDistribution,
        RuntimeDistribution,
        WaveArrivals,
    )

    return WorkloadSpec(
        sizes=JobSizeDistribution(min_nodes=1, max_nodes=8),
        runtimes=RuntimeDistribution(
            median_s=1200.0, sigma=0.6, min_s=300.0, max_s=3600.0
        ),
        arrivals=WaveArrivals(rate_per_hour=0.3, amplitude=0.3),
        trace_interval_s=None,
        generate_power_trace=False,
    )


#: Built-in workload variant name -> spec factory. ``None`` means "use the
#: per-system default" (:func:`~repro.workloads.default_workload_spec`,
#: resolved at execution time so it scales to each system on the axis).
WORKLOAD_VARIANTS: dict[str, Callable[[], WorkloadSpec] | None] = {
    "default": None,
    "busy_trace": busy_trace_spec,
    "frontier_scale": frontier_scale_spec,
    "burst_arrival": burst_arrival_spec,
    "idle_heavy": _idle_heavy_spec,
}


@dataclass(frozen=True)
class SweepRun:
    """One materialised grid point: a request plus its sweep coordinates."""

    sweep: str
    run_index: int
    workload: str
    request: RunRequest

    @property
    def run_id(self) -> str:
        """The request's content-hash id (the results-store primary key)."""
        return self.request.run_id


@dataclass(frozen=True)
class SweepSpec:
    """Axes and shared parameters of one scenario sweep.

    Attributes
    ----------
    name:
        Sweep label stored with every result row.
    duration_s:
        Synthetic workload window shared by all runs, seconds.
    systems / policies / workloads:
        Axis values. ``None`` in ``policies`` means each system's default
        policy; workload names resolve through :data:`WORKLOAD_VARIANTS`
        and ``custom_workloads``.
    n_seeds:
        Monte Carlo mode: this many independent seeds per grid point,
        spawned from ``root_seed`` by run index. Mutually exclusive with
        ``seeds``; when both are omitted one spawned seed per point is used.
    seeds:
        Paired mode: explicit seeds applied to every grid point.
    root_seed:
        Entropy root for ``n_seeds`` spawning.
    horizon_s / dense_ticks:
        Forwarded to every :class:`RunRequest`.
    power_caps:
        Power-cap axis, kW. ``None`` means uncapped; a finite cap builds a
        constant :class:`~repro.power.signals.OperatingSignals` for the
        run (wrapping its policy in a
        :class:`~repro.engine.scheduler.PowerCapScheduler`).
    price_per_kwh / carbon_kg_per_kwh:
        Optional constant electricity price / carbon intensity applied to
        every run (scalar parameters, not axes); they weight the
        ``energy_cost`` / ``carbon_kg`` summary metrics.
    custom_workloads:
        Inline workload variants: name -> :class:`WorkloadSpec`. Names
        shadow the built-in registry.
    """

    name: str
    duration_s: float
    systems: tuple[str, ...] = ("tiny",)
    policies: tuple[str | None, ...] = (None,)
    workloads: tuple[str, ...] = ("default",)
    n_seeds: int | None = None
    seeds: tuple[int, ...] | None = None
    root_seed: int = 0
    horizon_s: float | None = None
    dense_ticks: bool = False
    power_caps: tuple[float | None, ...] = (None,)
    price_per_kwh: float | None = None
    carbon_kg_per_kwh: float | None = None
    custom_workloads: Mapping[str, WorkloadSpec] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("a sweep needs a name")
        if self.duration_s <= 0:
            raise ConfigurationError("sweep duration_s must be positive")
        if self.horizon_s is not None and self.horizon_s <= 0:
            raise ConfigurationError("sweep horizon_s must be positive")
        for axis in ("systems", "policies", "workloads"):
            if not getattr(self, axis):
                raise ConfigurationError(f"sweep axis {axis!r} must be non-empty")
        if self.n_seeds is not None and self.seeds is not None:
            raise ConfigurationError(
                "n_seeds (spawned) and seeds (explicit) are mutually exclusive"
            )
        if self.n_seeds is not None and self.n_seeds < 1:
            raise ConfigurationError("n_seeds must be >= 1")
        if self.seeds is not None and not self.seeds:
            raise ConfigurationError("explicit seeds must be non-empty")
        if not self.power_caps:
            raise ConfigurationError("sweep axis 'power_caps' must be non-empty")
        for cap in self.power_caps:
            if cap is not None and cap <= 0:
                raise ConfigurationError(
                    f"power cap values must be positive kW or null, got {cap!r}"
                )
        for scalar in ("price_per_kwh", "carbon_kg_per_kwh"):
            value = getattr(self, scalar)
            if value is not None and value < 0:
                raise ConfigurationError(f"sweep {scalar} must be >= 0")
        # Mirror RunRequest's numeric canonicalisation so equal specs always
        # materialise identical run ids (parse_duration("1h") returns int).
        object.__setattr__(self, "duration_s", float(self.duration_s))
        if self.horizon_s is not None:
            object.__setattr__(self, "horizon_s", float(self.horizon_s))
        object.__setattr__(
            self,
            "power_caps",
            tuple(None if cap is None else float(cap) for cap in self.power_caps),
        )
        for name in self.workloads:
            if name not in self.custom_workloads and name not in WORKLOAD_VARIANTS:
                known = sorted(set(WORKLOAD_VARIANTS) | set(self.custom_workloads))
                raise ConfigurationError(
                    f"unknown workload variant {name!r}; known: " + ", ".join(known)
                )

    # -- grid expansion --------------------------------------------------------

    def _workload_spec_of(self, variant: str) -> WorkloadSpec | None:
        if variant in self.custom_workloads:
            return self.custom_workloads[variant]
        factory = WORKLOAD_VARIANTS[variant]
        return None if factory is None else factory()

    @property
    def seeds_per_point(self) -> int:
        """How many runs each (system, policy, workload) grid point expands to."""
        if self.seeds is not None:
            return len(self.seeds)
        return self.n_seeds if self.n_seeds is not None else 1

    @property
    def total_runs(self) -> int:
        """Grid size: product of the axis lengths times the seeds per point."""
        return (
            len(self.systems)
            * len(self.policies)
            * len(self.workloads)
            * len(self.power_caps)
            * self.seeds_per_point
        )

    def _signals_of(self, power_cap_kw: float | None) -> OperatingSignals | None:
        """The constant operating signals for one cap-axis value."""
        if (
            power_cap_kw is None
            and self.price_per_kwh is None
            and self.carbon_kg_per_kwh is None
        ):
            return None
        return OperatingSignals.constant(
            power_cap_kw=power_cap_kw,
            price_per_kwh=self.price_per_kwh,
            carbon_kg_per_kwh=self.carbon_kg_per_kwh,
        )

    def materialize(self) -> list[SweepRun]:
        """Expand the grid into ordered :class:`SweepRun` rows.

        Deterministic: the same spec always yields the same runs in the
        same order with the same run ids. In ``n_seeds`` mode the per-run
        seed is drawn from ``SeedSequence(root_seed).spawn(total)[run_index]``
        — keyed by the run's *materialisation* index, never by execution or
        completion order, so sweep results cannot depend on scheduling.
        """
        combos = list(
            product(self.systems, self.policies, self.workloads, self.power_caps)
        )
        total = len(combos) * self.seeds_per_point
        spawned: list[np.random.SeedSequence] | None = None
        if self.seeds is None:
            spawned = np.random.SeedSequence(self.root_seed).spawn(total)

        runs: list[SweepRun] = []
        run_index = 0
        for system, policy, workload, power_cap in combos:
            for seed_slot in range(self.seeds_per_point):
                if self.seeds is not None:
                    seed = int(self.seeds[seed_slot])
                else:
                    assert spawned is not None
                    # uint32 words: plenty of seed space, and the value
                    # fits SQLite's signed 64-bit INTEGER column.
                    seed = int(spawned[run_index].generate_state(1, dtype=np.uint32)[0])
                request = RunRequest(
                    system=system,
                    policy=policy,
                    duration_s=self.duration_s,
                    seed=seed,
                    spec=self._workload_spec_of(workload),
                    horizon_s=self.horizon_s,
                    dense_ticks=self.dense_ticks,
                    signals=self._signals_of(power_cap),
                )
                runs.append(
                    SweepRun(
                        sweep=self.name,
                        run_index=run_index,
                        workload=workload,
                        request=request,
                    )
                )
                run_index += 1

        seen: dict[str, SweepRun] = {}
        for run in runs:
            clash = seen.get(run.run_id)
            if clash is not None:
                raise ConfigurationError(
                    f"sweep {self.name!r} materialises duplicate run id "
                    f"{run.run_id} (run {clash.run_index} and {run.run_index} "
                    "describe the identical simulation); remove the redundant "
                    "axis value (e.g. both None and the default policy name)"
                )
            seen[run.run_id] = run
        return runs

    # -- serialisation ---------------------------------------------------------

    def to_json_dict(self) -> dict[str, object]:
        """A JSON-ready dict that :meth:`from_json_dict` inverts."""
        return {
            "name": self.name,
            "duration_s": self.duration_s,
            "systems": list(self.systems),
            "policies": list(self.policies),
            "workloads": list(self.workloads),
            "n_seeds": self.n_seeds,
            "seeds": None if self.seeds is None else list(self.seeds),
            "root_seed": self.root_seed,
            "horizon_s": self.horizon_s,
            "dense_ticks": self.dense_ticks,
            "power_caps": list(self.power_caps),
            "price_per_kwh": self.price_per_kwh,
            "carbon_kg_per_kwh": self.carbon_kg_per_kwh,
            "custom_workloads": {
                name: workload_spec_to_dict(spec)
                for name, spec in sorted(self.custom_workloads.items())
            },
        }

    @classmethod
    def from_json_dict(cls, data: Mapping[str, object]) -> "SweepSpec":
        """Rebuild a spec from JSON, accepting ``"6h"``-style durations.

        ``duration`` / ``horizon`` are accepted as aliases of
        ``duration_s`` / ``horizon_s`` and parsed with
        :func:`repro.units.parse_duration`, so spec files can say
        ``"duration": "6h"``.
        """
        payload = dict(data)
        for alias, target in (("duration", "duration_s"), ("horizon", "horizon_s")):
            if alias in payload:
                if target in payload:
                    raise ConfigurationError(
                        f"sweep spec sets both {alias!r} and {target!r}"
                    )
                value = payload.pop(alias)
                payload[target] = None if value is None else parse_duration(value)
        known = {
            "name",
            "duration_s",
            "systems",
            "policies",
            "workloads",
            "n_seeds",
            "seeds",
            "root_seed",
            "horizon_s",
            "dense_ticks",
            "power_caps",
            "price_per_kwh",
            "carbon_kg_per_kwh",
            "custom_workloads",
        }
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ConfigurationError(
                f"unknown sweep spec field(s) {', '.join(unknown)}; known: "
                + ", ".join(sorted(known | {"duration", "horizon"}))
            )
        custom_raw = payload.get("custom_workloads") or {}
        if not isinstance(custom_raw, Mapping):
            raise ConfigurationError("custom_workloads must map names to spec dicts")
        payload["custom_workloads"] = {
            str(name): workload_spec_from_dict(spec_dict)
            for name, spec_dict in custom_raw.items()
        }
        for axis in ("systems", "policies", "workloads", "power_caps"):
            if axis in payload:
                payload[axis] = tuple(payload[axis])
        if payload.get("seeds") is not None:
            payload["seeds"] = tuple(int(s) for s in payload["seeds"])
        try:
            return cls(**payload)  # type: ignore[arg-type]
        except TypeError as exc:
            raise ConfigurationError(f"invalid sweep spec: {exc}") from exc


def load_sweep_spec(path: str | Path) -> SweepSpec:
    """Load a :class:`SweepSpec` from a JSON (or, if available, YAML) file."""
    file_path = Path(path)
    try:
        text = file_path.read_text()
    except OSError as exc:
        raise ConfigurationError(f"cannot read sweep spec {file_path}: {exc}") from exc
    if file_path.suffix.lower() in (".yaml", ".yml"):
        try:
            import yaml
        except ImportError as exc:  # pragma: no cover - environment-dependent
            raise ConfigurationError(
                "YAML sweep specs need the optional pyyaml dependency; "
                "use JSON instead"
            ) from exc
        data = yaml.safe_load(text)
    else:
        try:
            data = json.loads(text)
        except ValueError as exc:
            raise ConfigurationError(
                f"sweep spec {file_path} is not valid JSON: {exc}"
            ) from exc
    if not isinstance(data, Mapping):
        raise ConfigurationError(f"sweep spec {file_path} must be a JSON object")
    return SweepSpec.from_json_dict(data)
