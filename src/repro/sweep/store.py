"""SQLite results warehouse for scenario sweeps.

One ``runs`` table, keyed by the request's content-hash ``run_id``. Each row
carries the sweep coordinates (sweep name, run index, axis values), the full
request JSON (so any row can be re-executed verbatim), the run status and —
for completed runs — every summary metric flattened into its own ``REAL``
column plus a JSON copy. Failed runs store the worker traceback instead.

The store is strictly single-writer: the sweep driver's parent process is
the only one that ever opens the database for writing (workers send results
back over a queue), so SQLite's WAL mode plus one connection gives durable
per-run commits with no locking games. ``INSERT OR REPLACE`` keyed on
``run_id`` makes ingest idempotent — re-recording a run overwrites its row
rather than duplicating it, which is what sweep resume leans on.

The query layer (:meth:`ResultsStore.runs`, :meth:`ResultsStore.to_csv`)
covers the paper's comparison workflow: filter rows by axis values, order by
any metric for top-N ranking, export to CSV for plotting.
"""

from __future__ import annotations

import csv
import json
import math
import sqlite3
from dataclasses import dataclass
from pathlib import Path
from types import TracebackType
from typing import Iterator, Mapping

from ..engine.stats import json_safe
from ..exceptions import ConfigurationError

__all__ = ["ResultsStore", "StoredRun", "SUMMARY_COLUMNS"]

#: Summary metrics flattened into dedicated REAL columns, in schema order.
#: Must stay in sync with :meth:`repro.engine.stats.StatsCollector.summary`.
SUMMARY_COLUMNS: tuple[str, ...] = (
    "total_energy_kwh",
    "it_energy_kwh",
    "cooling_energy_kwh",
    "mean_pue",
    "max_pue",
    "mean_utilization",
    "node_hours",
    "mean_wait_s",
    "max_wait_s",
    "makespan_s",
    "jobs_completed",
    "jobs_dismissed",
    "ticks",
    "simulated_s",
    "mean_cpu_util",
    "mean_gpu_util",
    "energy_cost",
    "carbon_kg",
    "cap_violation_kwh",
    "capped_hold_s",
)

#: Columns added after the first released schema: rows recorded by an older
#: store predate them, so their SQL values are NULL (decoded as NaN).
_MIGRATED_COLUMNS: tuple[str, ...] = (
    "mean_cpu_util",
    "mean_gpu_util",
    "energy_cost",
    "carbon_kg",
    "cap_violation_kwh",
    "capped_hold_s",
)

#: Columns the axis filters and ``order_by`` may reference (whitelist: these
#: names are interpolated into SQL, so nothing outside this set is allowed).
_AXIS_COLUMNS: tuple[str, ...] = (
    "sweep",
    "run_index",
    "system",
    "policy",
    "workload",
    "seed",
    "status",
)
_ORDERABLE: frozenset[str] = frozenset(_AXIS_COLUMNS) | frozenset(SUMMARY_COLUMNS) | {
    "run_id",
    "wall_s",
    "finished_unix_s",
}

_SCHEMA = f"""
CREATE TABLE IF NOT EXISTS runs (
    run_id TEXT PRIMARY KEY,
    sweep TEXT NOT NULL,
    run_index INTEGER NOT NULL,
    system TEXT NOT NULL,
    policy TEXT,
    workload TEXT NOT NULL,
    seed INTEGER NOT NULL,
    status TEXT NOT NULL CHECK (status IN ('completed', 'failed')),
    request_json TEXT NOT NULL,
    summary_json TEXT,
    error TEXT,
    wall_s REAL,
    finished_unix_s REAL,
    {", ".join(f"{name} REAL" for name in SUMMARY_COLUMNS)}
);
CREATE INDEX IF NOT EXISTS runs_sweep_status ON runs (sweep, status);
"""


@dataclass(frozen=True)
class StoredRun:
    """One warehouse row, decoded.

    ``summary`` is ``None`` for failed runs; ``error`` is ``None`` for
    completed ones. The REAL-column metrics round-trip exactly (SQLite REAL
    is an IEEE double, including ``inf`` for the idle-system PUE sentinel);
    ``summary`` is rebuilt from them, not from the lossy JSON copy.
    """

    run_id: str
    sweep: str
    run_index: int
    system: str
    policy: str | None
    workload: str
    seed: int
    status: str
    request_json: str
    summary: dict[str, float] | None
    error: str | None
    wall_s: float | None
    finished_unix_s: float | None


def _row_to_stored_run(row: sqlite3.Row) -> StoredRun:
    summary: dict[str, float] | None = None
    if row["status"] == "completed":
        # Migrated columns are NULL on rows recorded before they existed.
        summary = {
            name: math.nan if row[name] is None else float(row[name])
            for name in SUMMARY_COLUMNS
        }
    return StoredRun(
        run_id=row["run_id"],
        sweep=row["sweep"],
        run_index=int(row["run_index"]),
        system=row["system"],
        policy=row["policy"],
        workload=row["workload"],
        seed=int(row["seed"]),
        status=row["status"],
        request_json=row["request_json"],
        summary=summary,
        error=row["error"],
        wall_s=None if row["wall_s"] is None else float(row["wall_s"]),
        finished_unix_s=(
            None if row["finished_unix_s"] is None else float(row["finished_unix_s"])
        ),
    )


class ResultsStore:
    """Single-writer SQLite warehouse for sweep results.

    Usable as a context manager; every ``record_*`` call commits, so each
    run is durable the moment it is ingested (per-run resume granularity —
    a killed sweep loses at most the in-flight runs, never recorded ones).
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._conn = sqlite3.connect(str(self.path))
        self._conn.row_factory = sqlite3.Row
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self._conn.executescript(_SCHEMA)
        self._migrate_columns()
        self._conn.commit()

    def _migrate_columns(self) -> None:
        """Bring a pre-existing database up to the current column set.

        ``CREATE TABLE IF NOT EXISTS`` is a no-op on an old file, so metric
        columns added since it was created must be bolted on here. New
        columns start NULL on old rows (decoded as NaN) — re-running those
        requests fills them, since ingest is an idempotent upsert.
        """
        existing = {
            row["name"]
            for row in self._conn.execute("PRAGMA table_info(runs)").fetchall()
        }
        for name in SUMMARY_COLUMNS:
            if name not in existing:
                self._conn.execute(f"ALTER TABLE runs ADD COLUMN {name} REAL")

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "ResultsStore":
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self.close()

    # -- ingest (single writer) ------------------------------------------------

    def record_completed(
        self,
        *,
        run_id: str,
        sweep: str,
        run_index: int,
        system: str,
        policy: str | None,
        workload: str,
        seed: int,
        request_json: str,
        summary: Mapping[str, float],
        wall_s: float,
        finished_unix_s: float,
    ) -> None:
        """Upsert a completed run with its full summary."""
        missing = sorted(set(SUMMARY_COLUMNS) - set(summary))
        if missing:
            raise ConfigurationError(
                f"run {run_id} summary is missing metric(s): {', '.join(missing)}"
            )
        columns = [
            "run_id",
            "sweep",
            "run_index",
            "system",
            "policy",
            "workload",
            "seed",
            "status",
            "request_json",
            "summary_json",
            "error",
            "wall_s",
            "finished_unix_s",
            *SUMMARY_COLUMNS,
        ]
        values = [
            run_id,
            sweep,
            run_index,
            system,
            policy,
            workload,
            seed,
            "completed",
            request_json,
            # JSON copy for humans/tools; non-finite floats (idle-PUE inf)
            # become null here but survive exactly in the REAL columns.
            json.dumps(json_safe(dict(summary)), sort_keys=True),
            None,
            wall_s,
            finished_unix_s,
            *[float(summary[name]) for name in SUMMARY_COLUMNS],
        ]
        placeholders = ", ".join("?" for _ in columns)
        self._conn.execute(
            f"INSERT OR REPLACE INTO runs ({', '.join(columns)}) "
            f"VALUES ({placeholders})",
            values,
        )
        self._conn.commit()

    def record_failed(
        self,
        *,
        run_id: str,
        sweep: str,
        run_index: int,
        system: str,
        policy: str | None,
        workload: str,
        seed: int,
        request_json: str,
        error: str,
        wall_s: float | None,
        finished_unix_s: float,
    ) -> None:
        """Upsert a failed run with its traceback text."""
        self._conn.execute(
            "INSERT OR REPLACE INTO runs (run_id, sweep, run_index, system, "
            "policy, workload, seed, status, request_json, summary_json, "
            "error, wall_s, finished_unix_s) "
            "VALUES (?, ?, ?, ?, ?, ?, ?, 'failed', ?, NULL, ?, ?, ?)",
            (
                run_id,
                sweep,
                run_index,
                system,
                policy,
                workload,
                seed,
                request_json,
                error,
                wall_s,
                finished_unix_s,
            ),
        )
        self._conn.commit()

    # -- queries ---------------------------------------------------------------

    def known_run_ids(self, *, status: str = "completed") -> set[str]:
        """Run ids already stored with ``status`` (the resume skip-set).

        Resume deliberately asks for ``'completed'`` only: failed runs stay
        eligible so a re-run retries them.
        """
        rows = self._conn.execute(
            "SELECT run_id FROM runs WHERE status = ?", (status,)
        ).fetchall()
        return {row["run_id"] for row in rows}

    def count_by_status(self, *, sweep: str | None = None) -> dict[str, int]:
        """``{'completed': n, 'failed': m}`` counts, optionally per sweep."""
        query = "SELECT status, COUNT(*) AS n FROM runs"
        params: tuple[object, ...] = ()
        if sweep is not None:
            query += " WHERE sweep = ?"
            params = (sweep,)
        query += " GROUP BY status"
        return {
            row["status"]: int(row["n"])
            for row in self._conn.execute(query, params).fetchall()
        }

    def runs(
        self,
        *,
        sweep: str | None = None,
        system: str | None = None,
        policy: str | None = None,
        workload: str | None = None,
        seed: int | None = None,
        status: str | None = None,
        order_by: str | None = None,
        descending: bool = False,
        limit: int | None = None,
    ) -> list[StoredRun]:
        """Query rows by axis values, optionally ordered and truncated.

        ``order_by`` must name a known column (axis, metric or bookkeeping)
        — the whitelist is what keeps the interpolation injection-safe.
        ``descending=True`` with a metric ``order_by`` plus ``limit`` is
        the top-N-by-metric query.
        """
        clauses: list[str] = []
        params: list[object] = []
        filters: tuple[tuple[str, object | None], ...] = (
            ("sweep", sweep),
            ("system", system),
            ("policy", policy),
            ("workload", workload),
            ("seed", seed),
            ("status", status),
        )
        for column, value in filters:
            if value is not None:
                clauses.append(f"{column} = ?")
                params.append(value)
        query = "SELECT * FROM runs"
        if clauses:
            query += " WHERE " + " AND ".join(clauses)
        if order_by is not None:
            if order_by not in _ORDERABLE:
                raise ConfigurationError(
                    f"cannot order by {order_by!r}; known columns: "
                    + ", ".join(sorted(_ORDERABLE))
                )
            query += f" ORDER BY {order_by}" + (" DESC" if descending else " ASC")
        else:
            query += " ORDER BY sweep, run_index"
        if limit is not None:
            if limit < 1:
                raise ConfigurationError("limit must be >= 1")
            query += " LIMIT ?"
            params.append(limit)
        rows = self._conn.execute(query, params).fetchall()
        return [_row_to_stored_run(row) for row in rows]

    def to_csv(self, path: str | Path, **query_kwargs: object) -> int:
        """Export a :meth:`runs` query to CSV; returns the row count.

        Columns: run id, sweep coordinates, status, wall time, then every
        summary metric (empty for failed runs, ``inf`` rendered as ``inf``).
        """
        stored = self.runs(**query_kwargs)  # type: ignore[arg-type]
        header = [
            "run_id",
            "sweep",
            "run_index",
            "system",
            "policy",
            "workload",
            "seed",
            "status",
            "wall_s",
            *SUMMARY_COLUMNS,
        ]
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(header)
            for run in stored:
                metrics: list[object] = (
                    [""] * len(SUMMARY_COLUMNS)
                    if run.summary is None
                    else [_csv_number(run.summary[name]) for name in SUMMARY_COLUMNS]
                )
                writer.writerow(
                    [
                        run.run_id,
                        run.sweep,
                        run.run_index,
                        run.system,
                        "" if run.policy is None else run.policy,
                        run.workload,
                        run.seed,
                        run.status,
                        "" if run.wall_s is None else run.wall_s,
                        *metrics,
                    ]
                )
        return len(stored)

    def iter_request_json(self, *, sweep: str | None = None) -> Iterator[tuple[str, str]]:
        """Yield ``(run_id, request_json)`` pairs, e.g. for re-execution."""
        query = "SELECT run_id, request_json FROM runs"
        params: tuple[object, ...] = ()
        if sweep is not None:
            query += " WHERE sweep = ?"
            params = (sweep,)
        query += " ORDER BY sweep, run_index"
        for row in self._conn.execute(query, params):
            yield row["run_id"], row["request_json"]


def _csv_number(value: float) -> object:
    """Render a metric for CSV (``inf`` spelled out, finite values as-is)."""
    if math.isinf(value):
        return "inf" if value > 0 else "-inf"
    return value
