"""Serialisable run descriptions: one :class:`RunRequest` = one engine run.

A :class:`RunRequest` captures everything :func:`run_request` needs to
reproduce a :class:`~repro.engine.SimulationEngine` run — registered system
name, scheduling policy, synthetic-workload window and (optionally) the full
:class:`~repro.workloads.WorkloadSpec`, engine flags and the seed — and
round-trips losslessly through JSON. That is what lets a run cross a process
boundary: the sweep driver ships request dicts to pool workers, and the
planned simulation-as-a-service front end can accept the same payload over
the wire (the Balsam ``BatchJob`` schemas are the exemplar shape).

:attr:`RunRequest.run_id` is a content hash of the canonical JSON form, so
the same request always maps to the same id — across processes, sessions and
machines — which is what makes sweep resume idempotent: a results store row
keyed by ``run_id`` either exists (skip) or does not (run).

:func:`repro.engine.run_simulation` is a thin back-compat shim over
:func:`run_request`: serialisable calls are routed through a request, while
explicit ``workload=`` lists, ad-hoc :class:`~repro.config.SystemConfig`
instances and :class:`~repro.engine.Scheduler` instances keep the historical
direct path (those cannot cross a process boundary).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, fields
from typing import Any, Mapping

from ..config import get_system_config
from ..engine.engine import SimulationEngine, SimulationResult, resolve_policy_name
from ..exceptions import ConfigurationError, SimulationError
from ..obs import Observability
from ..power.signals import OperatingSignals
from ..workloads import (
    BurstArrivals,
    JobSizeDistribution,
    PoissonArrivals,
    RuntimeDistribution,
    SyntheticWorkloadGenerator,
    UserPopulation,
    WaveArrivals,
    WorkloadSpec,
    default_workload_spec,
)

__all__ = [
    "RunRequest",
    "run_request",
    "workload_spec_from_dict",
    "workload_spec_to_dict",
]

#: JSON type tag -> arrival-process class (the one union inside WorkloadSpec).
_ARRIVAL_KINDS: dict[str, type] = {
    "wave": WaveArrivals,
    "poisson": PoissonArrivals,
    "burst": BurstArrivals,
}

#: WorkloadSpec fields whose JSON lists must come back as tuples.
_SPEC_TUPLE_FIELDS = (
    "cpu_util_range",
    "gpu_util_range",
    "mem_util_range",
    "phase_count_range",
    "priority_range",
)


def _dataclass_from_dict(cls: type, data: Mapping[str, object], label: str) -> Any:
    """Rebuild a flat (non-nested) spec dataclass, rejecting unknown keys."""
    known = {f.name for f in fields(cls)}
    unknown = sorted(set(data) - known)
    if unknown:
        raise ConfigurationError(
            f"unknown {label} field(s) {', '.join(unknown)}; known: "
            + ", ".join(sorted(known))
        )
    return cls(**data)


def workload_spec_to_dict(spec: WorkloadSpec) -> dict[str, object]:
    """A JSON-ready dict that :func:`workload_spec_from_dict` inverts exactly."""
    arrival_kind = None
    for kind, cls in _ARRIVAL_KINDS.items():
        if type(spec.arrivals) is cls:
            arrival_kind = kind
            break
    if arrival_kind is None:
        raise ConfigurationError(
            f"arrival process {type(spec.arrivals).__name__} is not JSON-"
            "serialisable; use WaveArrivals, PoissonArrivals or BurstArrivals"
        )
    payload = asdict(spec)
    payload["sizes"] = asdict(spec.sizes)
    payload["runtimes"] = asdict(spec.runtimes)
    payload["arrivals"] = {"kind": arrival_kind, **asdict(spec.arrivals)}
    payload["users"] = asdict(spec.users)
    for name in _SPEC_TUPLE_FIELDS:
        payload[name] = list(getattr(spec, name))
    return payload


def workload_spec_from_dict(data: Mapping[str, object]) -> WorkloadSpec:
    """Rebuild a :class:`WorkloadSpec` from its JSON dict form."""
    known = {f.name for f in fields(WorkloadSpec)}
    unknown = sorted(set(data) - known)
    if unknown:
        raise ConfigurationError(
            f"unknown WorkloadSpec field(s) {', '.join(unknown)}; known: "
            + ", ".join(sorted(known))
        )
    kwargs: dict[str, Any] = dict(data)
    if "sizes" in kwargs:
        kwargs["sizes"] = _dataclass_from_dict(
            JobSizeDistribution, dict(kwargs["sizes"]), "JobSizeDistribution"
        )
    if "runtimes" in kwargs:
        kwargs["runtimes"] = _dataclass_from_dict(
            RuntimeDistribution, dict(kwargs["runtimes"]), "RuntimeDistribution"
        )
    if "users" in kwargs:
        kwargs["users"] = _dataclass_from_dict(
            UserPopulation, dict(kwargs["users"]), "UserPopulation"
        )
    if "arrivals" in kwargs:
        arrival_data = dict(kwargs["arrivals"])
        kind = arrival_data.pop("kind", None)
        if kind not in _ARRIVAL_KINDS:
            raise ConfigurationError(
                f"unknown arrival kind {kind!r}; known: "
                + ", ".join(sorted(_ARRIVAL_KINDS))
            )
        kwargs["arrivals"] = _dataclass_from_dict(
            _ARRIVAL_KINDS[str(kind)], arrival_data, f"{kind} arrivals"
        )
    for name in _SPEC_TUPLE_FIELDS:
        if name in kwargs:
            kwargs[name] = tuple(kwargs[name])
    return WorkloadSpec(**kwargs)


@dataclass(frozen=True)
class RunRequest:
    """Everything needed to reproduce one simulation run, JSON-serialisable.

    Attributes
    ----------
    system:
        Registered system name (``"tiny"``, ``"frontier"``, ...). Only
        registry names are allowed — an ad-hoc :class:`SystemConfig` cannot
        cross a process boundary (register it on both sides instead).
    policy:
        Scheduling policy name, or ``None`` for the system's default.
    backfill:
        The ``run_simulation`` convenience switch (``"easy"`` upgrades an
        FCFS/default policy to EASY backfill), validated identically.
    duration_s:
        Synthetic workload window in seconds.
    seed:
        Workload-generation and down-node seed; fixes the whole run.
    spec:
        Workload specification, or ``None`` for the system-scaled default
        (:func:`~repro.workloads.default_workload_spec`).
    horizon_s:
        Optional hard stop for the engine clock, seconds.
    dense_ticks / event_index / vectorized:
        The engine's sampling / complexity flags, defaulted like the engine.
    signals:
        Optional :class:`~repro.power.signals.OperatingSignals` (or its
        JSON dict form) — power cap, electricity price and carbon
        intensity step series for power-aware operation. ``None`` (the
        default) is serialised by *omission* so every pre-existing
        request keeps its run id.
    """

    system: str = "tiny"
    policy: str | None = None
    backfill: str | None = None
    duration_s: float = 86400.0
    seed: int = 0
    spec: WorkloadSpec | None = None
    horizon_s: float | None = None
    dense_ticks: bool = False
    event_index: bool = True
    vectorized: bool = True
    signals: OperatingSignals | None = None

    def __post_init__(self) -> None:
        if not self.system or not isinstance(self.system, str):
            raise ConfigurationError("RunRequest.system must be a registered system name")
        if self.duration_s <= 0:
            raise SimulationError(
                f"RunRequest.duration_s must be positive, got {self.duration_s!r}"
            )
        if self.horizon_s is not None and self.horizon_s <= 0:
            raise SimulationError(
                f"RunRequest.horizon_s must be positive, got {self.horizon_s!r}"
            )
        # Canonicalise the numeric fields: the run id hashes the JSON form,
        # and json.dumps renders int 3600 and float 3600.0 differently, so
        # equal requests built from "1h" (int) and 3600.0 (float) would
        # otherwise hash apart. frozen=True requires the direct setattr.
        object.__setattr__(self, "duration_s", float(self.duration_s))
        object.__setattr__(self, "seed", int(self.seed))
        if self.horizon_s is not None:
            object.__setattr__(self, "horizon_s", float(self.horizon_s))
        if self.signals is not None and not isinstance(self.signals, OperatingSignals):
            object.__setattr__(
                self, "signals", OperatingSignals.from_json_dict(self.signals)
            )

    # -- serialisation ---------------------------------------------------------

    def to_json_dict(self) -> dict[str, object]:
        """A plain-JSON dict that :meth:`from_json_dict` inverts exactly."""
        payload: dict[str, object] = {
            "system": self.system,
            "policy": self.policy,
            "backfill": self.backfill,
            "duration_s": self.duration_s,
            "seed": self.seed,
            "spec": None if self.spec is None else workload_spec_to_dict(self.spec),
            "horizon_s": self.horizon_s,
            "dense_ticks": self.dense_ticks,
            "event_index": self.event_index,
            "vectorized": self.vectorized,
        }
        # Serialised by omission when absent: the run id hashes this dict,
        # and a "signals": null key would re-hash every historical request.
        if self.signals is not None:
            payload["signals"] = self.signals.to_json_dict()
        return payload

    @classmethod
    def from_json_dict(cls, data: Mapping[str, object]) -> "RunRequest":
        """Rebuild a request from :meth:`to_json_dict` output."""
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ConfigurationError(
                f"unknown RunRequest field(s) {', '.join(unknown)}; known: "
                + ", ".join(sorted(known))
            )
        kwargs: dict[str, Any] = dict(data)
        spec_data = kwargs.get("spec")
        if spec_data is not None:
            kwargs["spec"] = workload_spec_from_dict(spec_data)
        return cls(**kwargs)

    def to_json(self) -> str:
        """Canonical JSON form (sorted keys, minimal separators).

        This exact byte string is what :attr:`run_id` hashes, so it must be
        deterministic: ``sort_keys`` fixes the field order and Python's
        shortest-repr float formatting is itself deterministic.
        """
        return json.dumps(
            self.to_json_dict(), sort_keys=True, separators=(",", ":"), allow_nan=False
        )

    @classmethod
    def from_json(cls, text: str) -> "RunRequest":
        return cls.from_json_dict(json.loads(text))

    @property
    def run_id(self) -> str:
        """Stable content-hash id of this request (16 hex chars).

        Two requests share a ``run_id`` exactly when their canonical JSON
        forms are byte-identical — the key the results store and the sweep
        driver's resume logic are built on.
        """
        return hashlib.sha256(self.to_json().encode("utf-8")).hexdigest()[:16]


def run_request(
    request: RunRequest, *, obs: Observability | None = None
) -> SimulationResult:
    """Execute one :class:`RunRequest` and return its result.

    This is the single execution path every front end funnels into:
    :func:`repro.engine.run_simulation` (back-compat shim), the ``repro-sim``
    CLI and the sweep driver's pool workers all end up here, so a stored
    sweep summary and a direct in-process run of the same request are the
    same computation.
    """
    config = get_system_config(request.system)
    policy = resolve_policy_name(
        request.policy if request.policy is not None else config.default_policy,
        request.backfill,
    )
    spec = request.spec if request.spec is not None else default_workload_spec(config)
    generator = SyntheticWorkloadGenerator(config, spec, seed=request.seed)
    workload = generator.generate(request.duration_s)
    engine = SimulationEngine(
        config,
        workload,
        policy,
        seed=request.seed,
        horizon_s=request.horizon_s,
        dense_ticks=request.dense_ticks,
        event_index=request.event_index,
        vectorized=request.vectorized,
        signals=request.signals,
        obs=obs,
    )
    return engine.run()
