"""Per-node power from component utilization.

The node power model is a linear component model: each CPU socket and GPU
contributes its idle power plus a utilization-proportional dynamic share, the
memory subsystem contributes a bandwidth-proportional dynamic share, and the
node baseboard (fans, NIC, VRM overhead) contributes a constant. This is the
level of fidelity RAPS uses for job-trace replay; datasets that carry
measured node power bypass the model entirely (the recorded trace wins).
"""

from __future__ import annotations

import numpy as np

from ..config import NodePowerConfig, SystemConfig


class NodePowerModel:
    """Compute node power in watts from utilization fractions."""

    def __init__(self, config: NodePowerConfig) -> None:
        self.config = config
        # Hoisted per-component dynamic ranges: the subtraction results are
        # identical to inlining them (same IEEE operation, computed once),
        # so evaluation stays bit-for-bit compatible while the hot path
        # sheds two subtractions and four attribute lookups per call.
        self._cpu_dynamic_w = config.cpu_max_w - config.cpu_idle_w
        self._gpu_dynamic_w = config.gpu_max_w - config.gpu_idle_w

    def power(
        self,
        cpu_util: float | np.ndarray,
        gpu_util: float | np.ndarray = 0.0,
        mem_util: float | np.ndarray = 0.0,
    ) -> float | np.ndarray:
        """Node power (watts) for the given utilization fractions.

        Inputs outside [0, 1] are clipped; arrays broadcast element-wise so a
        whole trace (or a whole system's worth of nodes) can be evaluated in
        one vectorised call. The scalar and vectorised paths apply the same
        IEEE operations element-wise, so evaluating a profile on its change-
        point grid gives bit-identical values to scalar per-tick calls.
        """
        cfg = self.config
        cpu = np.clip(cpu_util, 0.0, 1.0)
        gpu = np.clip(gpu_util, 0.0, 1.0)
        mem = np.clip(mem_util, 0.0, 1.0)
        power = (
            cfg.idle_w
            + cfg.cpus_per_node * (cfg.cpu_idle_w + cpu * self._cpu_dynamic_w)
            + cfg.gpus_per_node * (cfg.gpu_idle_w + gpu * self._gpu_dynamic_w)
            + mem * cfg.mem_dynamic_w
        )
        if np.isscalar(cpu_util) and np.isscalar(gpu_util) and np.isscalar(mem_util):
            return float(power)
        return power

    @property
    def idle_power(self) -> float:
        """Power of an idle node (watts)."""
        return self.config.min_w

    @property
    def max_power(self) -> float:
        """Power of a fully loaded node (watts)."""
        return self.config.max_w


def system_idle_power_kw(system: SystemConfig, *, include_down: bool = False) -> float:
    """Idle IT power of the whole system in kilowatts.

    Down nodes are assumed powered off unless ``include_down`` is set.
    """
    total_w = 0.0
    for partition in system.partitions:
        nodes = partition.node_count
        if not include_down:
            nodes = int(round(nodes * (1.0 - system.down_node_fraction)))
        total_w += nodes * partition.node_power.min_w
    return total_w / 1000.0
