"""System-level power aggregation.

At every simulation tick the engine hands the system power model the set of
running jobs; the model evaluates each job's power (recorded trace if
available, otherwise the component model applied to its utilization), adds
the idle power of unallocated nodes, and applies the conversion-loss model to
obtain facility-side power. The per-tick result is a
:class:`SystemPowerSample` carrying the breakdown the statistics collector
and cooling model consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from ..config import SystemConfig
from ..telemetry.job import Job
from .losses import ConversionLossModel, LossBreakdown
from .node_power import NodePowerModel


@dataclass(frozen=True)
class SystemPowerSample:
    """Power state of the system at one simulation time."""

    time_s: float
    #: IT (compute) power of busy nodes, kW.
    job_power_kw: float
    #: IT power of idle (unallocated, in-service) nodes, kW.
    idle_power_kw: float
    #: Conversion losses, kW.
    loss_kw: float
    #: Number of allocated nodes at sampling time.
    allocated_nodes: int
    #: Mean CPU / GPU utilization across allocated nodes (0 if none).
    mean_cpu_util: float
    mean_gpu_util: float

    @property
    def compute_power_kw(self) -> float:
        """Total IT power (busy + idle nodes), kW."""
        return self.job_power_kw + self.idle_power_kw

    @property
    def facility_power_kw(self) -> float:
        """Total power drawn from the facility feed (IT + losses), kW."""
        return self.compute_power_kw + self.loss_kw


class SystemPowerModel:
    """Aggregate job power into system power with conversion losses."""

    def __init__(self, system: SystemConfig) -> None:
        self.system = system
        self._node_models = {
            partition.name: NodePowerModel(partition.node_power)
            for partition in system.partitions
        }
        self._default_partition = system.partitions[0].name
        self.loss_model = ConversionLossModel(
            system.power_loss, peak_compute_power_kw=system.peak_system_power_kw
        )

    # -- per-job power ------------------------------------------------------------

    def job_power_watts(self, job: Job, now: float) -> float:
        """Total power of one running job (watts across all its nodes)."""
        recorded = job.recorded_power_at(now)
        if recorded is not None:
            return recorded * job.nodes_required
        cpu, gpu, mem = job.utilization_at(now)
        model = self._node_models.get(job.partition) or self._node_models[self._default_partition]
        return float(model.power(cpu, gpu, mem)) * job.nodes_required

    def job_energy_joules(self, job: Job) -> float:
        """Energy of a job over its recorded duration (joules).

        Integrates the recorded power trace when present, otherwise the
        component model applied to the utilization profiles on the union of
        their sample grids.
        """
        duration = job.duration
        if duration <= 0:
            return 0.0
        if job.node_power is not None:
            return job.node_power.integral(duration) * job.nodes_required
        model = self._node_models.get(job.partition) or self._node_models[self._default_partition]
        times = np.unique(
            np.concatenate([job.cpu_util.times, job.gpu_util.times, job.mem_util.times, [0.0]])
        )
        times = times[times <= duration]
        cpu = job.cpu_util.values_at(times)
        gpu = job.gpu_util.values_at(times)
        mem = job.mem_util.values_at(times)
        watts = np.asarray(model.power(cpu, gpu, mem), dtype=float)
        edges = np.concatenate([times, [duration]])
        widths = np.diff(edges)
        return float(np.sum(watts * widths)) * job.nodes_required

    # -- system power ---------------------------------------------------------------

    def sample(
        self,
        now: float,
        running_jobs: Sequence[Job] | Iterable[Job],
        *,
        allocated_nodes: int | None = None,
        down_nodes: int = 0,
    ) -> SystemPowerSample:
        """Evaluate system power at time ``now`` given the running jobs."""
        jobs = list(running_jobs)
        job_power_w = 0.0
        cpu_utils: list[float] = []
        gpu_utils: list[float] = []
        nodes_busy = 0
        for job in jobs:
            job_power_w += self.job_power_watts(job, now)
            cpu, gpu, _ = job.utilization_at(now)
            cpu_utils.append(cpu * job.nodes_required)
            gpu_utils.append(gpu * job.nodes_required)
            nodes_busy += job.nodes_required
        if allocated_nodes is None:
            allocated_nodes = nodes_busy

        idle_nodes = max(0, self.system.total_nodes - allocated_nodes - down_nodes)
        idle_power_w = 0.0
        remaining_idle = idle_nodes
        # Idle power accounted per partition, assuming busy nodes are drawn
        # from partitions in configuration order (sufficient for the
        # single-partition systems of the paper; multi-partition splits are
        # approximate).
        busy_remaining = allocated_nodes
        for partition in self.system.partitions:
            busy_here = min(busy_remaining, partition.node_count)
            busy_remaining -= busy_here
            idle_here = min(remaining_idle, partition.node_count - busy_here)
            remaining_idle -= idle_here
            idle_power_w += idle_here * partition.node_power.min_watts

        compute_kw = (job_power_w + idle_power_w) / 1000.0
        losses: LossBreakdown = self.loss_model.evaluate(compute_kw)

        total_busy = max(1, nodes_busy)
        return SystemPowerSample(
            time_s=now,
            job_power_kw=job_power_w / 1000.0,
            idle_power_kw=idle_power_w / 1000.0,
            loss_kw=losses.total_loss_kw,
            allocated_nodes=allocated_nodes,
            mean_cpu_util=sum(cpu_utils) / total_busy if jobs else 0.0,
            mean_gpu_util=sum(gpu_utils) / total_busy if jobs else 0.0,
        )
