"""System-level power aggregation.

At every simulation tick the engine hands the system power model the set of
running jobs; the model evaluates each job's power (recorded trace if
available, otherwise the component model applied to its utilization), adds
the idle power of unallocated nodes, and applies the conversion-loss model to
obtain facility-side power. The per-tick result is a
:class:`SystemPowerSample` carrying the breakdown the statistics collector
and cooling model consume.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from ..cluster.resource_manager import ResourceManager
from ..config import SystemConfig
from ..devtools import hot_path
from ..telemetry.job import Job
from .losses import ConversionLossModel, LossBreakdown
from .node_power import NodePowerModel


@dataclass(frozen=True)
class SystemPowerSample:
    """Power state of the system at one simulation time."""

    time_s: float
    #: IT (compute) power of busy nodes, kW.
    job_power_kw: float
    #: IT power of idle (unallocated, in-service) nodes, kW.
    idle_power_kw: float
    #: Conversion losses, kW.
    loss_kw: float
    #: Number of allocated nodes at sampling time.
    allocated_nodes: int
    #: Mean CPU / GPU utilization across allocated nodes (0 if none).
    mean_cpu_util: float
    mean_gpu_util: float

    @property
    def compute_power_kw(self) -> float:
        """Total IT power (busy + idle nodes), kW."""
        return self.job_power_kw + self.idle_power_kw

    @property
    def facility_power_kw(self) -> float:
        """Total power drawn from the facility feed (IT + losses), kW."""
        return self.compute_power_kw + self.loss_kw


class SystemPowerModel:
    """Aggregate job power into system power with conversion losses."""

    def __init__(self, system: SystemConfig) -> None:
        self.system = system
        self._node_models = {
            partition.name: NodePowerModel(partition.node_power)
            for partition in system.partitions
        }
        self._default_partition = system.partitions[0].name
        self.loss_model = ConversionLossModel(
            system.power_loss, peak_compute_power_kw=system.peak_system_power_kw
        )

    # -- per-job power ------------------------------------------------------------

    def node_model(self, partition: str) -> NodePowerModel:
        """The node power model of ``partition`` (default partition fallback)."""
        return self._node_models.get(partition) or self._node_models[self._default_partition]

    def job_power_w(self, job: Job, now: float) -> float:
        """Total power of one running job (watts across all its nodes)."""
        recorded = job.recorded_power_at(now)
        if recorded is not None:
            return recorded * job.nodes_required
        cpu, gpu, mem = job.utilization_at(now)
        model = self.node_model(job.partition)
        return float(model.power(cpu, gpu, mem)) * job.nodes_required

    def job_energy_j(self, job: Job) -> float:
        """Energy of a job over its recorded duration (joules).

        Integrates the recorded power trace when present, otherwise the
        component model applied to the utilization profiles on the union of
        their sample grids.
        """
        duration = job.duration
        if duration <= 0:
            return 0.0
        if job.node_power is not None:
            return job.node_power.integral(duration) * job.nodes_required
        model = self.node_model(job.partition)
        times = np.unique(
            np.concatenate([job.cpu_util.times, job.gpu_util.times, job.mem_util.times, [0.0]])
        )
        times = times[times <= duration]
        cpu = job.cpu_util.values_at(times)
        gpu = job.gpu_util.values_at(times)
        mem = job.mem_util.values_at(times)
        watts = np.asarray(model.power(cpu, gpu, mem), dtype=float)
        edges = np.concatenate([times, [duration]])
        widths = np.diff(edges)
        return float(np.sum(watts * widths)) * job.nodes_required

    def job_peak_power_w(self, job: Job) -> float:
        """Peak instantaneous power of one job (watts across all its nodes).

        Evaluated on the union change-point grid of the job's
        power-relevant profiles (recorded trace when present, component
        model otherwise) — piecewise-constant profiles attain their peak
        on the grid, so this is an exact bound on
        :meth:`job_power_w` at any time. The
        :class:`~repro.engine.scheduler.PowerCapScheduler` projects
        admissions against this peak, which is what makes its zero-violation
        guarantee hold for time-varying job power under a constant cap.
        """
        times = _union_grid(job)
        if job.node_power is not None:
            watts = job.node_power.values_at(times)
        else:
            model = self.node_model(job.partition)
            cpu = job.cpu_util.values_at(times)
            gpu = job.gpu_util.values_at(times)
            mem = job.mem_util.values_at(times)
            watts = np.asarray(model.power(cpu, gpu, mem), dtype=float)
        return float(np.max(watts)) * job.nodes_required

    def node_idle_power_w(self, partition: str) -> float:
        """Idle draw of one in-service node of ``partition`` (watts)."""
        partition_config = next(
            (p for p in self.system.partitions if p.name == partition),
            self.system.partitions[0],
        )
        return float(partition_config.node_power.min_w)

    def idle_floor_kw(self) -> float:
        """IT power of the whole system sitting idle (every node at min), kW.

        A conservative floor for cap projections: actual idle power is
        lower whenever nodes are allocated (their idle share moves into job
        power) or down.
        """
        idle_w = sum(
            partition.node_count * partition.node_power.min_w
            for partition in self.system.partitions
        )
        return idle_w / 1000.0

    # -- system power ---------------------------------------------------------------

    def sample(
        self,
        now: float,
        running_jobs: Sequence[Job] | Iterable[Job],
        *,
        allocated_nodes: int | None = None,
        down_nodes: int = 0,
    ) -> SystemPowerSample:
        """Evaluate system power at time ``now`` by scanning the running jobs.

        This is the straightforward O(running jobs) evaluation; the engine
        uses :class:`RunningSetPowerAggregator` instead, which reuses cached
        per-job contributions between profile breakpoints and produces the
        same numbers up to floating-point associativity.
        """
        job_power_w = 0.0
        cpu_weighted = 0.0
        gpu_weighted = 0.0
        nodes_busy = 0
        for job in running_jobs:
            job_power_w += self.job_power_w(job, now)
            cpu, gpu, _ = job.utilization_at(now)
            cpu_weighted += cpu * job.nodes_required
            gpu_weighted += gpu * job.nodes_required
            nodes_busy += job.nodes_required
        return self.compose_sample(
            now,
            job_power_w,
            nodes_busy=nodes_busy,
            cpu_weighted=cpu_weighted,
            gpu_weighted=gpu_weighted,
            allocated_nodes=allocated_nodes,
            down_nodes=down_nodes,
        )

    def compose_sample(
        self,
        now: float,
        job_power_w: float,
        *,
        nodes_busy: int,
        cpu_weighted: float,
        gpu_weighted: float,
        allocated_nodes: int | None = None,
        down_nodes: int = 0,
    ) -> SystemPowerSample:
        """Build a :class:`SystemPowerSample` from aggregated job totals.

        Shared by the scanning :meth:`sample` and the incremental
        :class:`RunningSetPowerAggregator`: given the summed job power and
        node-weighted utilizations, add the idle power of unallocated nodes
        and the conversion losses.
        """
        if allocated_nodes is None:
            allocated_nodes = nodes_busy

        idle_nodes = max(0, self.system.total_nodes - allocated_nodes - down_nodes)
        idle_power_w = 0.0
        remaining_idle = idle_nodes
        # Idle power accounted per partition, assuming busy nodes are drawn
        # from partitions in configuration order (sufficient for the
        # single-partition systems of the paper; multi-partition splits are
        # approximate).
        busy_remaining = allocated_nodes
        for partition in self.system.partitions:
            busy_here = min(busy_remaining, partition.node_count)
            busy_remaining -= busy_here
            idle_here = min(remaining_idle, partition.node_count - busy_here)
            remaining_idle -= idle_here
            idle_power_w += idle_here * partition.node_power.min_w

        compute_kw = (job_power_w + idle_power_w) / 1000.0
        losses: LossBreakdown = self.loss_model.evaluate(compute_kw)

        total_busy = max(1, nodes_busy)
        return SystemPowerSample(
            time_s=now,
            job_power_kw=job_power_w / 1000.0,
            idle_power_kw=idle_power_w / 1000.0,
            loss_kw=losses.total_loss_kw,
            allocated_nodes=allocated_nodes,
            mean_cpu_util=cpu_weighted / total_busy if nodes_busy else 0.0,
            mean_gpu_util=gpu_weighted / total_busy if nodes_busy else 0.0,
        )


class _JobPowerState:
    """Cached piecewise-constant power contribution of one running job.

    Built once when the job enters the running set: the job's power-relevant
    profiles are merged onto the union of their change-point grids and the
    per-node model (or recorded power trace) is evaluated on that grid in one
    vectorised call. Afterwards, sampling the job at any time is a
    ``searchsorted`` into the grid instead of three profile lookups plus a
    scalar model evaluation — and between change points nothing needs to be
    recomputed at all.
    """

    __slots__ = (
        "job",
        "start",
        "times",
        "power_w",
        "cpu_weighted",
        "gpu_weighted",
        "next_change",
        "current_power_w",
        "current_cpu_weighted",
        "current_gpu_weighted",
    )

    def __init__(
        self,
        job: Job,
        times: np.ndarray,
        power_w: np.ndarray,
        cpu_weighted: np.ndarray,
        gpu_weighted: np.ndarray,
        now: float,
    ) -> None:
        self.job = job
        self.start = job.sim_start_time if job.sim_start_time is not None else now
        self.times = times
        self.power_w = power_w
        self.cpu_weighted = cpu_weighted
        self.gpu_weighted = gpu_weighted
        self.next_change = math.inf
        self.current_power_w = 0.0
        self.current_cpu_weighted = 0.0
        self.current_gpu_weighted = 0.0
        self.advance_to(now)

    @classmethod
    def for_job(cls, job: Job, model: NodePowerModel, now: float) -> "_JobPowerState":
        """Per-job construction: one profile/model evaluation per job.

        This is the differential baseline for :func:`build_power_states`
        (engine flag ``vectorized=False``): the batched builder must produce
        bit-identical grids and powers, and the property tests hold the two
        to exactly that.
        """
        nodes = job.nodes_required
        times = _union_grid(job)
        cpu_values = job.cpu_util.values_at(times)
        gpu_values = job.gpu_util.values_at(times)
        if job.node_power is not None:
            watts = job.node_power.values_at(times) * nodes
        else:
            mem_values = job.mem_util.values_at(times)
            watts = (
                np.asarray(model.power(cpu_values, gpu_values, mem_values), dtype=float)
                * nodes
            )
        return cls(job, times, watts, cpu_values * nodes, gpu_values * nodes, now)

    def advance_to(self, now: float) -> None:
        """Move the cached contribution to the grid interval containing ``now``."""
        elapsed = now - self.start
        if elapsed < 0.0:
            elapsed = 0.0
        times = self.times
        index = int(np.searchsorted(times, elapsed, side="right")) - 1
        if index < 0:
            index = 0
        self.current_power_w = float(self.power_w[index])
        self.current_cpu_weighted = float(self.cpu_weighted[index])
        self.current_gpu_weighted = float(self.gpu_weighted[index])
        if index + 1 < times.size:
            self.next_change = self.start + float(times[index + 1])
        else:
            self.next_change = math.inf


def _union_grid(job: Job) -> np.ndarray:
    """Union of the change-point grids of a job's power-relevant profiles."""
    grids = [profile.change_grid()[0] for profile in job.power_profiles()]
    if all(grid.size == 1 for grid in grids):
        # All profiles constant: every grid is exactly [0.0], so the
        # union is too — skip the concatenate/unique round-trip, which
        # dominates state construction on summary-only (scalar
        # telemetry) workloads at frontier scale.
        return grids[0]
    return np.unique(np.concatenate(grids))


#: Segment roles of a job's ``power_profiles()`` tuple: with a recorded
#: power trace the tuple is (node_power, cpu, gpu), otherwise (cpu, gpu, mem).
_ROLE_POWER, _ROLE_CPU, _ROLE_GPU, _ROLE_MEM = 0, 1, 2, 3
_ROLES_TRACE = (_ROLE_POWER, _ROLE_CPU, _ROLE_GPU)
_ROLES_MODEL = (_ROLE_CPU, _ROLE_GPU, _ROLE_MEM)


def build_power_states(
    jobs_models: Sequence[tuple[Job, NodePowerModel]], now: float
) -> list[_JobPowerState]:
    """Construct the :class:`_JobPowerState` of ``k`` started jobs in one pass.

    The whole batch is processed in *integer rank space*: one global
    ``np.unique`` over every job's change-point grids yields the distinct
    times and each point's rank; per-job grid unions, zero-order-hold value
    lookups (a single segmented ``searchsorted`` — segments kept disjoint
    by integer key offsets, which unlike float offsets are exact), the
    :class:`NodePowerModel` evaluation (once per distinct model per
    refresh, not per job), the node-count weighting, and the initial
    ``advance_to(now)`` positioning are each **one** vectorised pass over
    the concatenation; the per-job arrays are then sliced back as views.
    Every resulting array and cached scalar is bit-identical to
    :meth:`_JobPowerState.for_job` (the same IEEE operations applied
    element-wise; rank arithmetic is exact), so the batched and per-job
    paths are interchangeable — the engine gates them behind ``vectorized``
    purely as a differential benchmark baseline, and the property tests
    hold the two to bit equality.
    """
    count = len(jobs_models)
    if count == 0:
        return []

    # -- collect the per-profile change grids (cached on each Profile) -------
    seg_times: list[np.ndarray] = []      # per segment: change-grid times
    seg_values: list[np.ndarray] = []     # per segment: change-grid values
    seg_role: list[int] = []              # per segment: _ROLE_* label
    seg_job: list[int] = []               # per segment: owning job index
    trace_job_indices: list[int] = []
    #: id(model) -> (model, job indices) for component-model jobs.
    model_groups: dict[int, tuple[NodePowerModel, list[int]]] = {}
    for index, (job, model) in enumerate(jobs_models):
        roles = _ROLES_MODEL
        if job.node_power is not None:
            roles = _ROLES_TRACE
            trace_job_indices.append(index)
        else:
            group = model_groups.get(id(model))
            if group is None:
                model_groups[id(model)] = group = (model, [])
            group[1].append(index)
        for role, profile in zip(roles, job.power_profiles()):
            grid_times, grid_values = profile.change_grid()
            seg_times.append(grid_times)
            seg_values.append(grid_values)
            seg_role.append(role)
            seg_job.append(index)

    n_seg = len(seg_times)
    seg_lengths = np.array([times.size for times in seg_times])
    point_seg = np.repeat(np.arange(n_seg), seg_lengths)
    point_job = np.asarray(seg_job)[point_seg]

    # -- rank space: global distinct times, each point's rank ----------------
    all_times = np.concatenate(seg_times)
    distinct_times, point_rank = np.unique(all_times, return_inverse=True)
    n_rank = distinct_times.size

    # -- per-job union grids: unique (job, rank) keys, job-major -------------
    union_keys = np.unique(point_job * n_rank + point_rank)
    union_job = union_keys // n_rank
    union_rank = union_keys - union_job * n_rank
    union_times = distinct_times[union_rank]
    union_counts = np.bincount(union_job, minlength=count)
    union_offsets = np.concatenate([[0], np.cumsum(union_counts)])
    # Identical values to the per-job ``np.unique(np.concatenate(grids))``:
    # the same floats, sorted and deduplicated, just computed for the whole
    # batch at once.

    # -- zero-order-hold lookup: one segmented searchsorted ------------------
    # Haystack: every grid point keyed ``segment * n_rank + rank`` — sorted,
    # because grids ascend within a segment and segment keys are disjoint.
    # Needles: for each segment, its job's union ranks under the same
    # segment offset. ``searchsorted(..., "right") - 1`` then lands on the
    # segment's last grid point at or before each union time (every grid
    # starts at t=0.0, so the result never leaves the segment), exactly the
    # ``Profile.values_at`` hold rule.
    needle_lengths = union_counts[seg_job]
    needle_starts = union_offsets[seg_job]
    total_needles = int(needle_lengths.sum())
    needle_local = np.arange(total_needles) - np.repeat(
        np.cumsum(needle_lengths) - needle_lengths, needle_lengths
    )
    needle_pos = needle_local + np.repeat(needle_starts, needle_lengths)
    needle_keys = union_rank[needle_pos] + np.repeat(
        np.arange(n_seg) * n_rank, needle_lengths
    )
    haystack_keys = point_seg * n_rank + point_rank
    held_index = np.searchsorted(haystack_keys, needle_keys, side="right") - 1
    held_values = np.concatenate(seg_values)[held_index]

    # -- split held values by role (job-major order is preserved) ------------
    point_role = np.repeat(seg_role, needle_lengths)
    cpu_values = held_values[point_role == _ROLE_CPU]
    gpu_values = held_values[point_role == _ROLE_GPU]

    node_counts = np.array([float(job.nodes_required) for job, _ in jobs_models])
    weights = np.repeat(node_counts, union_counts)
    cpu_weighted = cpu_values * weights
    gpu_weighted = gpu_values * weights

    # -- power: one model evaluation per distinct model ----------------------
    if len(model_groups) == 1 and not trace_job_indices:
        # Every job uses the same component model (the common case): the
        # role-split arrays already are the model inputs, in job order.
        (model, _indices), = model_groups.values()
        model_w = np.asarray(
            model.power(cpu_values, gpu_values, held_values[point_role == _ROLE_MEM]),
            dtype=float,
        )
        model_w *= weights
        watts = model_w
    else:
        watts = np.empty(int(union_counts.sum()))
        mem_values = held_values[point_role == _ROLE_MEM]
        trace_values = held_values[point_role == _ROLE_POWER]
        # Offsets of each job's slice within the role-split arrays.
        is_trace = np.zeros(count, dtype=bool)
        is_trace[trace_job_indices] = True
        mem_offsets = np.concatenate(
            [[0], np.cumsum(np.where(is_trace, 0, union_counts))]
        )
        trace_offsets = np.concatenate(
            [[0], np.cumsum(np.where(is_trace, union_counts, 0))]
        )
        def job_slice(offsets: np.ndarray, i: int) -> slice:
            return slice(offsets[i], offsets[i] + union_counts[i])

        for i in trace_job_indices:
            watts[union_offsets[i] : union_offsets[i + 1]] = (
                trace_values[job_slice(trace_offsets, i)]
                * jobs_models[i][0].nodes_required
            )

        def job_cpu(i: int) -> np.ndarray:
            return cpu_values[union_offsets[i] : union_offsets[i + 1]]

        def job_gpu(i: int) -> np.ndarray:
            return gpu_values[union_offsets[i] : union_offsets[i + 1]]

        for model, indices in model_groups.values():
            group_w = np.asarray(
                model.power(
                    np.concatenate([job_cpu(i) for i in indices]),
                    np.concatenate([job_gpu(i) for i in indices]),
                    np.concatenate(
                        [mem_values[job_slice(mem_offsets, i)] for i in indices]
                    ),
                ),
                dtype=float,
            )
            group_w *= np.repeat(node_counts[indices], union_counts[indices])
            position = 0
            for i in indices:
                width = int(union_counts[i])
                watts[union_offsets[i] : union_offsets[i] + width] = group_w[
                    position : position + width
                ]
                position += width

    # -- vectorised initial advance_to(now) ----------------------------------
    starts = np.array(
        [
            job.sim_start_time if job.sim_start_time is not None else now
            for job, _ in jobs_models
        ]
    )
    elapsed = np.maximum(now - starts, 0.0)
    # Count of union times at or before each job's elapsed time, computed in
    # rank space: ``searchsorted(distinct_times, elapsed, "right")`` bounds
    # the rank, then the (job, rank) key bounds the job's union slice — the
    # same index ``advance_to`` finds with its per-job searchsorted.
    elapsed_rank = np.searchsorted(distinct_times, elapsed, side="right")
    held_counts = (
        np.searchsorted(
            union_keys, np.arange(count) * n_rank + elapsed_rank, side="left"
        )
        - union_offsets[:-1]
    )
    current_index = np.maximum(held_counts - 1, 0) + union_offsets[:-1]
    current_power = watts[current_index]
    current_cpu = cpu_weighted[current_index]
    current_gpu = gpu_weighted[current_index]
    has_next = current_index + 1 < union_offsets[1:]
    next_change = np.where(
        has_next,
        starts + union_times[np.minimum(current_index + 1, len(union_times) - 1)],
        math.inf,
    )

    states: list[_JobPowerState] = []
    for index, (job, _) in enumerate(jobs_models):
        span = slice(union_offsets[index], union_offsets[index + 1])
        state = _JobPowerState.__new__(_JobPowerState)
        state.job = job
        state.start = float(starts[index])
        state.times = union_times[span]
        state.power_w = watts[span]
        state.cpu_weighted = cpu_weighted[span]
        state.gpu_weighted = gpu_weighted[span]
        state.current_power_w = float(current_power[index])
        state.current_cpu_weighted = float(current_cpu[index])
        state.current_gpu_weighted = float(current_gpu[index])
        state.next_change = float(next_change[index])
        states.append(state)
    return states


class RunningSetPowerAggregator:
    """Incrementally maintained system power over the running set.

    Drop-in replacement for :meth:`SystemPowerModel.sample` (identical up to
    float add/subtract associativity: the incremental totals can carry
    ~1e-15 residue relative to a fresh scan while jobs are running, and are
    flushed to exact zeros whenever the running set drains): the engine asks
    it for a :class:`SystemPowerSample` every step, but instead of
    re-evaluating every running job's profiles and node-power model per
    step, it keeps per-job contributions cached (see :class:`_JobPowerState`)
    and recomputes only

    - jobs that started or ended since the last step, detected in O(1) via
      :attr:`ResourceManager.epoch`, and
    - jobs whose profile crossed a change point since the last step, tracked
      in a min-heap of upcoming change times.

    On an event-free stretch a step is O(1). Dense and event-driven runs
    apply the exact same sequence of add/remove/update operations (membership
    changes and breakpoint crossings happen on the same grid ticks either
    way), so the two modes produce bit-identical power series.
    """

    def __init__(
        self,
        model: SystemPowerModel,
        resource_manager: ResourceManager,
        *,
        batch_states: bool = True,
    ) -> None:
        self._model = model
        self._rm = resource_manager
        self._batch_states = batch_states
        self._epoch: int | None = None
        self._journal_cursor = 0
        self._states: dict[int, _JobPowerState] = {}
        self._changes: list[tuple[float, int]] = []  # (abs change time, job id)
        self._job_power_w = 0.0
        self._cpu_weighted = 0.0
        self._gpu_weighted = 0.0
        self._nodes_busy = 0
        # Observability counters: plain ints on per-event paths, folded
        # into the engine's metrics registry at run finalisation.
        self.breakpoint_crossings = 0
        self.membership_syncs = 0
        self.journal_resyncs = 0
        self.states_built = 0
        self.batched_builds = 0

    @hot_path
    def sample(
        self,
        now: float,
        *,
        allocated_nodes: int | None = None,
        down_nodes: int = 0,
    ) -> SystemPowerSample:
        """System power at ``now``, recomputing only what changed."""
        self._refresh(now)
        if allocated_nodes is None:
            allocated_nodes = self._nodes_busy
        return self._model.compose_sample(
            now,
            self._job_power_w,
            nodes_busy=self._nodes_busy,
            cpu_weighted=self._cpu_weighted,
            gpu_weighted=self._gpu_weighted,
            allocated_nodes=allocated_nodes,
            down_nodes=down_nodes,
        )

    @hot_path
    def next_breakpoint_after(self, now: float) -> float | None:
        """Earliest upcoming profile change time on the running set, or ``None``.

        This is the stable event-bound API the engine's coalescing consumes:
        the minimum of the per-job ``next_change`` times the aggregator
        already maintains in its heap, so the query is ``O(log R)`` amortised
        (stale entries of ended jobs are discarded as they surface) instead
        of a per-job profile scan. The cached state is brought up to ``now``
        first — membership synced against the resource manager's epoch, due
        crossings applied — exactly as :meth:`sample` would, so calling this
        before :meth:`sample` within a step changes nothing but the moment
        the (idempotent) refresh happens. Every returned time is strictly
        after ``now`` and float-identical to the corresponding
        :meth:`Job.next_power_change_after` bound.
        """
        self._refresh(now)
        changes = self._changes
        while changes:
            change_time, job_id = changes[0]
            state = self._states.get(job_id)
            if state is None or state.next_change != change_time:
                heapq.heappop(changes)  # stale: job ended or entry superseded
                continue
            return change_time
        return None

    def observability_counters(self) -> dict[str, int]:
        """Plain-int instrumentation counters (engine metrics publication).

        Keys become ``power_<key>_total`` counters in the metrics registry.
        """
        return {
            "breakpoint_crossings": self.breakpoint_crossings,
            "membership_syncs": self.membership_syncs,
            "journal_resyncs": self.journal_resyncs,
            "states_built": self.states_built,
            "batched_builds": self.batched_builds,
        }

    # -- internals -----------------------------------------------------------

    @hot_path
    def _refresh(self, now: float) -> None:
        """Bring the cached state up to ``now`` (idempotent within a step):
        sync membership against the resource manager's epoch, then apply
        every profile crossing due at or before ``now``."""
        if self._rm.epoch != self._epoch:
            self._sync_membership(now)
            self._epoch = self._rm.epoch
        self._apply_due_changes(now)

    def _sync_membership(self, now: float) -> None:
        """Apply the running-set membership changes since the last refresh.

        The default path consumes the resource manager's allocate/release
        journal — O(changes) regardless of the running-set size — and hands
        every started job to the batched state builder in one pass. When
        the journal cannot answer (a second consumer drained it, cold start
        after a capped buffer) or batching is disabled
        (``batch_states=False``, the differential baseline), the historical
        full set-diff against :attr:`ResourceManager.running_by_id` runs
        instead; both paths add and remove the same per-job contributions,
        so they only differ in float add/subtract association order (well
        below the engine's 1e-9 equivalence gates).
        """
        self.membership_syncs += 1
        running = self._rm.running_by_id
        self._journal_cursor, entries = self._rm.drain_change_journal(
            self._journal_cursor
        )
        if entries is None:
            self.journal_resyncs += 1
        if entries is None or not self._batch_states:
            ended_ids = sorted(self._states.keys() - running.keys())
            started_jobs = [
                running[job_id]
                for job_id in sorted(running.keys() - self._states.keys())
            ]
        else:
            # Net effect of the journal slice: a job that both started and
            # ended between refreshes never contributed to a sample and
            # cancels out. First-touch order preserves the chronological
            # allocate/release order for everything else.
            touched: dict[int, None] = {}
            for _, job_id in entries:
                touched.setdefault(job_id, None)
            ended_ids = [
                job_id
                for job_id in touched
                if job_id in self._states and job_id not in running
            ]
            started_jobs = [
                running[job_id]
                for job_id in touched
                if job_id in running and job_id not in self._states
            ]
        for job_id in ended_ids:
            state = self._states.pop(job_id)
            self._job_power_w -= state.current_power_w
            self._cpu_weighted -= state.current_cpu_weighted
            self._gpu_weighted -= state.current_gpu_weighted
            self._nodes_busy -= state.job.nodes_required
            # Heap entries of ended jobs are discarded lazily.
        if started_jobs:
            self.states_built += len(started_jobs)
            for state in self._build_states(started_jobs, now):
                job_id = state.job.job_id
                self._states[job_id] = state
                self._job_power_w += state.current_power_w
                self._cpu_weighted += state.current_cpu_weighted
                self._gpu_weighted += state.current_gpu_weighted
                self._nodes_busy += state.job.nodes_required
                if math.isfinite(state.next_change):
                    heapq.heappush(self._changes, (state.next_change, job_id))
        if not self._states:
            # Flush float residue so an idle system reports exactly zero job
            # power, not the leftovers of cancelled additions.
            self._job_power_w = 0.0
            self._cpu_weighted = 0.0
            self._gpu_weighted = 0.0

    def _build_states(
        self, started_jobs: list[Job], now: float
    ) -> list[_JobPowerState]:
        """Construct the power states of jobs that just entered the running set.

        Extracted from :meth:`_sync_membership` as the one overridable seam:
        subclasses that already hold prebuilt grids (the batch engine's
        :class:`~repro.engine.batch.PrebuiltPowerStateAggregator`) substitute
        their pool here, and the batched/per-job choice stays in one place.
        Both built-in paths produce bit-identical arrays (contract of
        :func:`build_power_states`).
        """
        if self._batch_states and len(started_jobs) > 1:
            self.batched_builds += 1
            return build_power_states(
                [
                    (job, self._model.node_model(job.partition))
                    for job in started_jobs
                ],
                now,
            )
        return [
            _JobPowerState.for_job(job, self._model.node_model(job.partition), now)
            for job in started_jobs
        ]

    @hot_path
    def _apply_due_changes(self, now: float) -> None:
        """Refresh every cached contribution whose profile crossed a breakpoint."""
        changes = self._changes
        while changes and changes[0][0] <= now:
            change_time, job_id = heapq.heappop(changes)
            state = self._states.get(job_id)
            if state is None or state.next_change != change_time:
                continue  # stale entry: job ended or crossing already applied
            old_power = state.current_power_w
            old_cpu = state.current_cpu_weighted
            old_gpu = state.current_gpu_weighted
            state.advance_to(now)
            self.breakpoint_crossings += 1
            # Delta-update only the quantities that actually changed, so a
            # breakpoint in one profile does not churn the totals of the
            # others through float add/subtract round-trips.
            # Exact identity on purpose: "did advance_to change this
            # cached value at all" — a tolerance would skip genuine
            # sub-epsilon profile steps and desynchronise the running
            # totals from the per-state truth.
            if state.current_power_w != old_power:  # repro-lint: disable=float-compare
                self._job_power_w += state.current_power_w - old_power
            if state.current_cpu_weighted != old_cpu:
                self._cpu_weighted += state.current_cpu_weighted - old_cpu
            if state.current_gpu_weighted != old_gpu:
                self._gpu_weighted += state.current_gpu_weighted - old_gpu
            if math.isfinite(state.next_change):
                if state.next_change <= now:
                    # Float rounding can leave ``start + t <= now`` while the
                    # elapsed-time indexing (``now - start < t``) has not
                    # crossed the breakpoint yet — re-pushing the same time
                    # would pop it again immediately and spin this loop
                    # forever. Re-arm strictly after ``now`` so the crossing
                    # retries at the next sample; evaluation stays
                    # elapsed-based either way, matching the scan exactly.
                    state.next_change = math.nextafter(now, math.inf)
                heapq.heappush(changes, (state.next_change, job_id))
