"""Power modelling substrate.

Converts per-job utilization (or recorded power traces) into node and system
power, then applies electrical conversion losses (rectification, in-rack
DC/DC conversion, switchgear) to obtain the facility-side IT power that feeds
the cooling model — the RAPS power path of the original ExaDigiT work.
"""

from .node_power import NodePowerModel, system_idle_power_kw
from .losses import ConversionLossModel, LossBreakdown
from .signals import OperatingSignals
from .system_power import (
    RunningSetPowerAggregator,
    SystemPowerModel,
    SystemPowerSample,
    build_power_states,
)

__all__ = [
    "NodePowerModel",
    "system_idle_power_kw",
    "ConversionLossModel",
    "LossBreakdown",
    "OperatingSignals",
    "RunningSetPowerAggregator",
    "SystemPowerModel",
    "SystemPowerSample",
    "build_power_states",
]
