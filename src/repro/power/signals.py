"""Operating signals: piecewise-constant power-cap / price / carbon inputs.

An :class:`OperatingSignals` bundle describes how the *facility environment*
changes over a run: the enforced IT power cap (kW), the electricity price
($/kWh) and the grid carbon intensity (kg CO2/kWh), each as a
zero-order-hold step series ``((t0_s, value), (t1_s, value), ...)`` with
``t0_s == 0.0`` and strictly increasing times. A cap value of ``None``
means "uncapped" in that window, which is how demand-response events —
temporary cap windows inside an otherwise uncapped schedule — are spelled.

The change points of every series are precomputed into one merged,
deduplicated breakpoint array. The engine feeds
:meth:`OperatingSignals.next_change_after` into ``_coalesced_dt`` as an
additional breakpoint stream, so a price, carbon or cap step always bounds
a coalesced interval and the dense-vs-event 1e-9 summary contract extends
to cost/carbon/violation metrics unchanged.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

import numpy as np

from ..exceptions import ConfigurationError

__all__ = ["OperatingSignals"]

#: One step of a cap series: ``(time_s, cap_kw)`` with ``None`` = uncapped.
CapSegment = tuple[float, "float | None"]

#: One step of a price / carbon series: ``(time_s, value)``.
Segment = tuple[float, float]


def _canonical_series(
    name: str,
    segments: "Sequence[Sequence[object]] | None",
    *,
    allow_none_value: bool,
) -> "tuple[tuple[float, float | None], ...] | None":
    """Validate and canonicalise one step series (floats, tuples)."""
    if segments is None:
        return None
    if len(segments) == 0:
        raise ConfigurationError(f"signals.{name} must have at least one segment")
    out: list[tuple[float, float | None]] = []
    for segment in segments:
        if len(segment) != 2:
            raise ConfigurationError(
                f"signals.{name} segments must be (time_s, value) pairs"
            )
        raw_time, raw_value = segment
        time_s = float(raw_time)  # type: ignore[arg-type]
        if not math.isfinite(time_s) or time_s < 0.0:
            raise ConfigurationError(
                f"signals.{name} segment times must be finite and >= 0, "
                f"got {raw_time!r}"
            )
        value: float | None
        if raw_value is None:
            if not allow_none_value:
                raise ConfigurationError(
                    f"signals.{name} values must be numbers, got None"
                )
            value = None
        else:
            value = float(raw_value)  # type: ignore[arg-type]
            if not math.isfinite(value) or value < 0.0:
                raise ConfigurationError(
                    f"signals.{name} values must be finite and >= 0, "
                    f"got {raw_value!r}"
                )
        out.append((time_s, value))
    times = [time_s for time_s, _ in out]
    if times[0] > 0.0:
        raise ConfigurationError(
            f"signals.{name} must start at t=0 (got first segment at {times[0]})"
        )
    if any(b <= a for a, b in zip(times, times[1:])):
        raise ConfigurationError(
            f"signals.{name} segment times must be strictly increasing"
        )
    return tuple(out)


def _series_arrays(
    series: "tuple[tuple[float, float | None], ...] | None",
    *,
    default: float,
    none_value: float,
) -> "tuple[np.ndarray, np.ndarray]":
    """``(times, values)`` lookup arrays; ``None`` values become ``none_value``."""
    if series is None:
        return (
            np.asarray([0.0], dtype=float),
            np.asarray([default], dtype=float),
        )
    times = np.asarray([time_s for time_s, _ in series], dtype=float)
    values = np.asarray(
        [none_value if value is None else value for _, value in series],
        dtype=float,
    )
    return times, values


def _change_times(times: np.ndarray, values: np.ndarray) -> np.ndarray:
    """Times (excluding t=0) where the held value actually changes."""
    if len(times) < 2:
        return np.asarray([], dtype=float)
    changed = np.flatnonzero(values[1:] != values[:-1]) + 1
    return times[changed]


@dataclass(frozen=True)
class OperatingSignals:
    """Piecewise-constant operating inputs for one simulation run.

    Parameters
    ----------
    power_cap_kw:
        IT (compute) power cap step series; ``None`` values mean uncapped.
    price_per_kwh:
        Electricity price step series (currency per kWh of facility energy).
    carbon_kg_per_kwh:
        Grid carbon intensity step series (kg CO2 per kWh of facility
        energy).
    """

    power_cap_kw: "tuple[CapSegment, ...] | None" = None
    price_per_kwh: "tuple[Segment, ...] | None" = None
    carbon_kg_per_kwh: "tuple[Segment, ...] | None" = None

    # Lookup caches built once in __post_init__ (excluded from eq/repr).
    _cap_times: np.ndarray = field(init=False, repr=False, compare=False)
    _cap_values: np.ndarray = field(init=False, repr=False, compare=False)
    _cap_suffix_max: np.ndarray = field(init=False, repr=False, compare=False)
    _price_times: np.ndarray = field(init=False, repr=False, compare=False)
    _price_values: np.ndarray = field(init=False, repr=False, compare=False)
    _carbon_times: np.ndarray = field(init=False, repr=False, compare=False)
    _carbon_values: np.ndarray = field(init=False, repr=False, compare=False)
    _changes: np.ndarray = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        cap = _canonical_series("power_cap_kw", self.power_cap_kw, allow_none_value=True)
        price = _canonical_series(
            "price_per_kwh", self.price_per_kwh, allow_none_value=False
        )
        carbon = _canonical_series(
            "carbon_kg_per_kwh", self.carbon_kg_per_kwh, allow_none_value=False
        )
        if cap is None and price is None and carbon is None:
            raise ConfigurationError(
                "OperatingSignals needs at least one of power_cap_kw, "
                "price_per_kwh, carbon_kg_per_kwh"
            )
        object.__setattr__(self, "power_cap_kw", cap)
        object.__setattr__(self, "price_per_kwh", price)
        object.__setattr__(self, "carbon_kg_per_kwh", carbon)

        cap_times, cap_values = _series_arrays(
            cap, default=math.inf, none_value=math.inf
        )
        price_times, price_values = _series_arrays(price, default=0.0, none_value=0.0)
        carbon_times, carbon_values = _series_arrays(
            carbon, default=0.0, none_value=0.0
        )
        object.__setattr__(self, "_cap_times", cap_times)
        object.__setattr__(self, "_cap_values", cap_values)
        # Suffix maximum of the cap series: the loosest cap at or after each
        # segment, for the "can this job ever fit?" feasibility check.
        object.__setattr__(
            self, "_cap_suffix_max", np.maximum.accumulate(cap_values[::-1])[::-1]
        )
        object.__setattr__(self, "_price_times", price_times)
        object.__setattr__(self, "_price_values", price_values)
        object.__setattr__(self, "_carbon_times", carbon_times)
        object.__setattr__(self, "_carbon_values", carbon_values)
        changes = np.unique(
            np.concatenate(
                [
                    _change_times(cap_times, cap_values),
                    _change_times(price_times, price_values),
                    _change_times(carbon_times, carbon_values),
                ]
            )
        )
        object.__setattr__(self, "_changes", changes)

    # -- construction helpers ------------------------------------------------

    @classmethod
    def constant(
        cls,
        *,
        power_cap_kw: "float | None" = None,
        price_per_kwh: "float | None" = None,
        carbon_kg_per_kwh: "float | None" = None,
    ) -> "OperatingSignals":
        """Signals holding one constant value per provided input."""
        return cls(
            power_cap_kw=None if power_cap_kw is None else ((0.0, power_cap_kw),),
            price_per_kwh=None if price_per_kwh is None else ((0.0, price_per_kwh),),
            carbon_kg_per_kwh=(
                None if carbon_kg_per_kwh is None else ((0.0, carbon_kg_per_kwh),)
            ),
        )

    @classmethod
    def cap_window(
        cls,
        start_s: float,
        end_s: float,
        cap_kw: float,
        *,
        price_per_kwh: "float | None" = None,
        carbon_kg_per_kwh: "float | None" = None,
    ) -> "OperatingSignals":
        """A demand-response event: uncapped except for ``[start_s, end_s)``."""
        start_s = float(start_s)
        end_s = float(end_s)
        if not 0.0 <= start_s < end_s:
            raise ConfigurationError(
                "cap_window needs 0 <= start_s < end_s, "
                f"got [{start_s}, {end_s})"
            )
        segments: list[CapSegment]
        if start_s > 0.0:
            segments = [(0.0, None), (start_s, cap_kw), (end_s, None)]
        else:
            segments = [(0.0, cap_kw), (end_s, None)]
        return cls(
            power_cap_kw=tuple(segments),
            price_per_kwh=None if price_per_kwh is None else ((0.0, price_per_kwh),),
            carbon_kg_per_kwh=(
                None if carbon_kg_per_kwh is None else ((0.0, carbon_kg_per_kwh),)
            ),
        )

    # -- lookups -------------------------------------------------------------

    @staticmethod
    def _zoh(times: np.ndarray, values: np.ndarray, t_s: float) -> float:
        index = int(np.searchsorted(times, t_s, side="right")) - 1
        return float(values[max(index, 0)])

    def cap_at(self, t_s: float) -> float:
        """Active power cap in kW (``inf`` when uncapped)."""
        return self._zoh(self._cap_times, self._cap_values, t_s)

    def price_at(self, t_s: float) -> float:
        """Active electricity price per kWh (0.0 when no price series)."""
        return self._zoh(self._price_times, self._price_values, t_s)

    def carbon_at(self, t_s: float) -> float:
        """Active carbon intensity in kg/kWh (0.0 when no carbon series)."""
        return self._zoh(self._carbon_times, self._carbon_values, t_s)

    def values_at(self, t_s: float) -> "tuple[float, float, float]":
        """``(cap_kw, price_per_kwh, carbon_kg_per_kwh)`` active at ``t_s``."""
        return (self.cap_at(t_s), self.price_at(t_s), self.carbon_at(t_s))

    def max_cap_at_or_after(self, t_s: float) -> float:
        """The loosest cap any present-or-future window offers.

        A job whose projected power exceeds even this can never start; the
        :class:`~repro.engine.scheduler.PowerCapScheduler` dismisses it
        instead of holding it forever.
        """
        index = int(np.searchsorted(self._cap_times, t_s, side="right")) - 1
        return float(self._cap_suffix_max[max(index, 0)])

    def next_change_after(self, t_s: float) -> "float | None":
        """The first signal change strictly after ``t_s`` (``None`` if none).

        This is the breakpoint stream ``_coalesced_dt`` merges with job-end
        and power-profile breakpoints, so every cap/price/carbon step bounds
        a coalesced interval.
        """
        index = int(np.searchsorted(self._changes, t_s, side="right"))
        if index >= len(self._changes):
            return None
        return float(self._changes[index])

    @property
    def has_cap(self) -> bool:
        """Whether any window carries a finite power cap."""
        return bool(np.isfinite(self._cap_values).any())

    @property
    def last_change_s(self) -> float:
        """The latest signal change point (0.0 for constant signals)."""
        if len(self._changes) == 0:
            return 0.0
        return float(self._changes[-1])

    # -- serialisation -------------------------------------------------------

    def to_json_dict(self) -> "dict[str, Any]":
        """JSON-ready payload; absent series are omitted entirely.

        ``None`` cap values (uncapped windows) stay ``null`` — the payload
        must survive ``json.dumps(..., allow_nan=False)`` inside
        :meth:`repro.sweep.RunRequest.to_json`.
        """
        payload: dict[str, Any] = {}
        if self.power_cap_kw is not None:
            payload["power_cap_kw"] = [list(segment) for segment in self.power_cap_kw]
        if self.price_per_kwh is not None:
            payload["price_per_kwh"] = [
                list(segment) for segment in self.price_per_kwh
            ]
        if self.carbon_kg_per_kwh is not None:
            payload["carbon_kg_per_kwh"] = [
                list(segment) for segment in self.carbon_kg_per_kwh
            ]
        return payload

    @classmethod
    def from_json_dict(cls, payload: "Mapping[str, Any]") -> "OperatingSignals":
        """Inverse of :meth:`to_json_dict`; unknown keys are rejected."""
        known = {"power_cap_kw", "price_per_kwh", "carbon_kg_per_kwh"}
        unknown = set(payload) - known
        if unknown:
            raise ConfigurationError(
                f"unknown OperatingSignals keys: {sorted(unknown)}"
            )
        return cls(
            power_cap_kw=payload.get("power_cap_kw"),
            price_per_kwh=payload.get("price_per_kwh"),
            carbon_kg_per_kwh=payload.get("carbon_kg_per_kwh"),
        )
