"""Electrical conversion-loss model.

Follows the structure of the dynamic power-conversion modelling used by RAPS
(Wojda et al.): compute power passes through an in-rack DC/DC stage ("sivoc")
and a rack rectification stage (AC→DC), each with a load-dependent efficiency
curve, plus a small constant switchgear/transformer loss. Efficiency rises
from its idle value to its peak value with load following a saturating curve,
which reproduces the characteristic behaviour that losses are a *larger
fraction* of power at low load — one reason scheduling-induced load smoothing
changes total energy, not just its timing.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import PowerLossConfig
from ..exceptions import ConfigurationError
from ..units import is_zero_kw


@dataclass(frozen=True)
class LossBreakdown:
    """Per-stage loss breakdown for one evaluation (all in kilowatts)."""

    compute_power_kw: float
    sivoc_loss_kw: float
    rectifier_loss_kw: float
    switchgear_loss_kw: float

    @property
    def total_loss_kw(self) -> float:
        """Sum of all conversion losses (kW)."""
        return self.sivoc_loss_kw + self.rectifier_loss_kw + self.switchgear_loss_kw

    @property
    def facility_power_kw(self) -> float:
        """Power drawn from the facility feed (compute + losses, kW)."""
        return self.compute_power_kw + self.total_loss_kw

    @property
    def efficiency(self) -> float:
        """End-to-end electrical efficiency (compute / facility).

        A plant drawing (numerically) no facility power is defined as
        lossless; :func:`repro.units.is_zero_kw` guards the division
        instead of an exact ``== 0.0``, so the branch cannot flip when a
        summation reordering perturbs the last ULP.
        """
        if is_zero_kw(self.facility_power_kw):
            return 1.0
        return self.compute_power_kw / self.facility_power_kw


class ConversionLossModel:
    """Load-dependent conversion losses between facility feed and silicon."""

    def __init__(self, config: PowerLossConfig, *, peak_compute_power_kw: float) -> None:
        if peak_compute_power_kw <= 0:
            raise ConfigurationError("peak_compute_power_kw must be positive")
        self.config = config
        self.peak_compute_power_kw = peak_compute_power_kw

    # -- efficiency curves ------------------------------------------------------

    def _stage_efficiency(
        self, load_fraction: float | np.ndarray, idle_eff: float, peak_eff: float
    ) -> float | np.ndarray:
        """Saturating efficiency curve eta(load) = peak - (peak-idle)*exp(-k*load)."""
        load = np.clip(load_fraction, 0.0, 1.5)
        k = 8.0  # reaches ~99.97 % of peak efficiency at full load
        return peak_eff - (peak_eff - idle_eff) * np.exp(-k * load)

    def sivoc_efficiency(self, load_fraction: float | np.ndarray) -> float | np.ndarray:
        """In-rack DC/DC stage efficiency at the given load fraction."""
        return self._stage_efficiency(
            load_fraction,
            self.config.sivoc_efficiency_idle,
            self.config.sivoc_efficiency_peak,
        )

    def rectifier_efficiency(self, load_fraction: float | np.ndarray) -> float | np.ndarray:
        """Rectifier stage efficiency at the given load fraction."""
        return self._stage_efficiency(
            load_fraction,
            self.config.rectifier_efficiency_idle,
            self.config.rectifier_efficiency_peak,
        )

    # -- evaluation ---------------------------------------------------------------

    def evaluate(self, compute_power_kw: float) -> LossBreakdown:
        """Compute the loss breakdown for a given instantaneous compute power."""
        compute_power_kw = max(0.0, float(compute_power_kw))
        load = compute_power_kw / self.peak_compute_power_kw

        sivoc_eff = float(self.sivoc_efficiency(load))
        sivoc_input = compute_power_kw / sivoc_eff
        sivoc_loss = sivoc_input - compute_power_kw

        rect_eff = float(self.rectifier_efficiency(load))
        rect_input = sivoc_input / rect_eff
        rect_loss = rect_input - sivoc_input

        switchgear_loss = rect_input * self.config.switchgear_loss_fraction

        return LossBreakdown(
            compute_power_kw=compute_power_kw,
            sivoc_loss_kw=sivoc_loss,
            rectifier_loss_kw=rect_loss,
            switchgear_loss_kw=switchgear_loss,
        )

    def facility_power_kw(self, compute_power_kw: float) -> float:
        """Convenience wrapper returning only the facility-side power (kW)."""
        return self.evaluate(compute_power_kw).facility_power_kw
