"""Dataloaders for the systems studied in the paper.

A dataloader's task (Sec. 3.2.2 of the paper) is to load and parse telemetry
data and generate the list of to-be-scheduled jobs, identifying for each job
its submit, start and end time plus the telemetry start and end time of the
dataset, so the engine can replay or reschedule within the recorded window.

Currently the package ships the windowing/prepopulation base class and the
plugin registry; per-system loaders (Frontier, Fugaku, Marconi100, ...)
register themselves through :func:`register_dataloader` as they land. Jobs
from SWF files load through :func:`repro.telemetry.swf.read_swf` and can be
wrapped in a registered loader by users who have real traces at hand.
"""

from .base import (
    DataLoader,
    DatasetWindow,
    available_dataloaders,
    get_dataloader,
    register_dataloader,
)

__all__ = [
    "DataLoader",
    "DatasetWindow",
    "available_dataloaders",
    "get_dataloader",
    "register_dataloader",
]
