"""Dataloaders for the systems studied in the paper.

A dataloader's task (Sec. 3.2.2 of the paper) is to load and parse telemetry
data and generate the list of to-be-scheduled jobs, identifying for each job
its submit, start and end time plus the telemetry start and end time of the
dataset, so the engine can replay or reschedule within the recorded window.

Since the original datasets cannot be downloaded in this offline environment,
every dataloader here *synthesises* a workload that matches the documented
characteristics of its dataset (node count, telemetry granularity, trace vs.
summary data, utilization regime); the interface and the downstream code
paths are identical to loading the real data. Loading jobs from SWF files is
supported through :class:`~repro.dataloaders.swf_loader.SWFDataLoader` for
users who have real traces at hand.
"""

from .base import DataLoader, DatasetWindow, available_dataloaders, get_dataloader, register_dataloader
from .adastra import AdastraDataLoader
from .frontier import FrontierDataLoader
from .fugaku import FugakuDataLoader
from .lassen import LassenDataLoader
from .marconi100 import Marconi100DataLoader
from .swf_loader import SWFDataLoader

__all__ = [
    "DataLoader",
    "DatasetWindow",
    "available_dataloaders",
    "get_dataloader",
    "register_dataloader",
    "AdastraDataLoader",
    "FrontierDataLoader",
    "FugakuDataLoader",
    "LassenDataLoader",
    "Marconi100DataLoader",
    "SWFDataLoader",
]
