"""Dataloader base class, dataset window handling and the plugin registry.

The base class implements the window logic of Fig. 3 of the paper: given the
overall telemetry span and the user-selected simulation window (fast-forward
offset + duration), jobs are classified into

* dismissed — ended before the window starts or submitted after it ends,
* prepopulated — already running at window start (placed at initialization),
* regular — submitted inside the window,

and jobs whose telemetry does not fully cover the window are flagged
(``STARTED_BEFORE_CAPTURE`` / ``ENDED_AFTER_CAPTURE``).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Callable, Sequence

from ..config import SystemConfig, get_system_config
from ..exceptions import DataLoaderError
from ..telemetry.job import Job, TraceFlag


@dataclass(frozen=True)
class DatasetWindow:
    """Telemetry capture window of a dataset (seconds, relative frame)."""

    telemetry_start: float
    telemetry_end: float

    def __post_init__(self) -> None:
        if self.telemetry_end <= self.telemetry_start:
            raise DataLoaderError("telemetry window must have positive length")

    @property
    def duration(self) -> float:
        """Length of the capture window in seconds."""
        return self.telemetry_end - self.telemetry_start


class DataLoader(abc.ABC):
    """Base class for all dataloaders.

    Subclasses implement :meth:`load_all` (return every job of the dataset
    plus the dataset's telemetry window); the base class provides
    :meth:`load`, which applies fast-forward/duration windowing, dismisses
    out-of-window jobs, flags capture-window edge cases and marks
    prepopulation candidates.
    """

    #: Registry name (matches the paper's ``--system`` CLI values).
    name: str = ""

    def __init__(self, *, seed: int = 0) -> None:
        self.seed = seed
        self._system: SystemConfig | None = None

    # -- interface -------------------------------------------------------------

    @property
    def system(self) -> SystemConfig:
        """The system configuration this dataloader targets."""
        if self._system is None:
            self._system = self._load_system()
        return self._system

    def _load_system(self) -> SystemConfig:
        """Resolve the system configuration (default: registry lookup by name)."""
        return get_system_config(self.name)

    @abc.abstractmethod
    def load_all(self) -> tuple[list[Job], DatasetWindow]:
        """Load (or synthesise) every job of the dataset and its window."""

    # -- windowing ---------------------------------------------------------------

    def load(
        self,
        *,
        fast_forward: float = 0.0,
        duration: float | None = None,
    ) -> tuple[list[Job], DatasetWindow]:
        """Load jobs restricted to the selected simulation window.

        Parameters
        ----------
        fast_forward:
            Seconds to skip from the start of the telemetry window (the
            paper's ``-ff`` option).
        duration:
            Length of the simulation window in seconds (``-t``); defaults to
            the remainder of the telemetry window.

        Returns
        -------
        (jobs, window):
            Jobs relevant to the window (dismissed jobs are excluded) with
            their trace flags set, and the *simulation* window expressed in
            the dataset's time frame.
        """
        jobs, telemetry = self.load_all()
        sim_start = telemetry.telemetry_start + fast_forward
        if duration is None:
            sim_end = telemetry.telemetry_end
        else:
            sim_end = sim_start + float(duration)
        if sim_start >= telemetry.telemetry_end:
            raise DataLoaderError(
                f"fast_forward={fast_forward} skips past the end of the "
                f"telemetry window ({telemetry.duration:.0f}s long)"
            )
        window = DatasetWindow(sim_start, sim_end)
        selected = self.select_window(jobs, telemetry, window)
        return selected, window

    @staticmethod
    def select_window(
        jobs: Sequence[Job],
        telemetry: DatasetWindow,
        window: DatasetWindow,
    ) -> list[Job]:
        """Classify jobs against a simulation window (Fig. 3 semantics)."""
        selected: list[Job] = []
        for job in jobs:
            # Dismiss: ended before the window, or submitted after it.
            if job.end_time <= window.telemetry_start:
                continue
            if job.submit_time >= window.telemetry_end:
                continue
            flags = job.trace_flags
            if job.start_time < telemetry.telemetry_start:
                flags |= TraceFlag.STARTED_BEFORE_CAPTURE
            if job.end_time > telemetry.telemetry_end:
                flags |= TraceFlag.ENDED_AFTER_CAPTURE
            if job.start_time < window.telemetry_start < job.end_time:
                flags |= TraceFlag.PREPOPULATED
            job.trace_flags = flags
            selected.append(job)
        selected.sort(key=lambda j: (j.submit_time, j.job_id))
        return selected


# ---------------------------------------------------------------------------
# Plugin registry
# ---------------------------------------------------------------------------

_LOADERS: dict[str, Callable[..., DataLoader]] = {}


def register_dataloader(
    name: str, factory: Callable[..., DataLoader], *, overwrite: bool = False
) -> None:
    """Register a dataloader factory under ``name`` (the ``--system`` value)."""
    key = name.lower()
    if key in _LOADERS and not overwrite:
        raise DataLoaderError(f"dataloader {name!r} already registered")
    _LOADERS[key] = factory


def get_dataloader(name: str, **kwargs: object) -> DataLoader:
    """Instantiate the dataloader registered under ``name``."""
    key = name.lower()
    if key not in _LOADERS:
        known = ", ".join(sorted(_LOADERS))
        raise DataLoaderError(f"unknown dataloader {name!r}; known: {known}")
    return _LOADERS[key](**kwargs)


def available_dataloaders() -> tuple[str, ...]:
    """Names of all registered dataloaders."""
    return tuple(sorted(_LOADERS))
