"""Engine observability: phase tracing, metrics, run events, heartbeats.

The run-introspection substrate of the simulator (the subject of the
source paper is telemetry — the simulator itself should be observable
too). Four independent instruments, bundled by :class:`Observability` and
threaded through :class:`~repro.engine.SimulationEngine` via the ``obs=``
parameter:

:class:`SpanTracer`
    Wall-clock spans of the named engine phases (``schedule``,
    ``coalesce``, ``power``, ``cooling``, ``stats``) plus the ``run``
    lifecycle, exportable as Chrome trace-event JSON
    (``chrome://tracing`` / Perfetto).

:class:`MetricsRegistry`
    Counters, gauges and histograms (steps, coalesced grid ticks,
    end-time-heap pops, journal drains, queue depth, backfill
    reservations, per-phase wall histograms) snapshotting to JSON or CSV.

:class:`EventLog`
    Structured JSON-lines job-lifecycle and milestone events on stdlib
    :mod:`logging` (logger ``repro.run``), so library consumers keep
    handler control.

:class:`ProgressReporter`
    Wall-clock-cadence heartbeats (simulated %, steps/s, ETA) to stderr
    or a callback — the subscription hook for service/sweep front ends.

Everything is off by default: ``SimulationEngine(..., obs=None)`` runs the
uninstrumented hot path (one ``is None`` check per phase), which the
benchmark harness gates.
"""

from .core import Observability
from .events import EventLog, JsonLinesFormatter, RUN_LOGGER_NAME
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .progress import ProgressReporter, ProgressSnapshot
from .tracing import SpanTracer

__all__ = [
    "Observability",
    "SpanTracer",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "EventLog",
    "JsonLinesFormatter",
    "RUN_LOGGER_NAME",
    "ProgressReporter",
    "ProgressSnapshot",
]
