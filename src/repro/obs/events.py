"""Structured run events: JSON-lines on top of stdlib ``logging``.

Job lifecycle (submit / start / finish / dismiss) and engine milestones
(run start / horizon / run end) are emitted as one JSON object per line
through a standard :mod:`logging` logger (``repro.run`` by default), so
*library* consumers keep full control: with no handler configured the
events cost one ``isEnabledFor`` check and vanish; an application can
attach any handler/formatter it likes; and :meth:`EventLog.to_jsonl` is
the one-call setup the CLI's ``--log-json PATH`` uses (a file handler with
:class:`JsonLinesFormatter`, detached again by :meth:`EventLog.close`).

Event schema (every line)::

    {"event": "<type>", "t_s": <simulated time>, ...type-specific fields}

See the README "Observability" section for the per-type field table.
"""

from __future__ import annotations

import json
import logging
import math
from pathlib import Path
from typing import IO

from ..telemetry.job import Job

__all__ = ["EventLog", "JsonLinesFormatter", "RUN_LOGGER_NAME"]

#: Default logger events are emitted through (a child of ``repro``).
RUN_LOGGER_NAME = "repro.run"


def _json_value(value: object) -> object:
    """One field value made strict-JSON safe (non-finite floats → None)."""
    if isinstance(value, float):
        return value if math.isfinite(value) else None
    if isinstance(value, (str, int, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_json_value(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _json_value(item) for key, item in value.items()}
    return str(value)


class JsonLinesFormatter(logging.Formatter):
    """Format one log record as one JSON object per line.

    The record message is the event type; structured fields travel in the
    record's ``fields`` attribute (set via ``extra=``). Records emitted by
    ordinary loggers (no ``fields``) still format cleanly, so the formatter
    can be attached to any ``repro.*`` logger.
    """

    def format(self, record: logging.LogRecord) -> str:
        payload: dict[str, object] = {"event": record.getMessage()}
        fields = getattr(record, "fields", None)
        if isinstance(fields, dict):
            payload.update({key: _json_value(value) for key, value in fields.items()})
        if record.levelno != logging.INFO:
            payload["level"] = record.levelname.lower()
        return json.dumps(payload, allow_nan=False)


class EventLog:
    """Emits structured run events through a stdlib logger.

    Parameters
    ----------
    logger:
        Logger to emit through; defaults to ``repro.run``. With no handler
        and an effective level above INFO every emission is a cheap no-op.
    """

    def __init__(self, logger: logging.Logger | None = None) -> None:
        self._logger = logger if logger is not None else logging.getLogger(RUN_LOGGER_NAME)
        self._owned_handlers: list[logging.Handler] = []
        self._prev_level: int | None = None
        #: Events emitted through this log (published as a metric).
        self.events_emitted = 0

    @classmethod
    def to_jsonl(cls, path: str | Path) -> "EventLog":
        """Event log writing JSON lines to ``path`` (the ``--log-json`` setup).

        Attaches a file handler with :class:`JsonLinesFormatter` to the
        ``repro.run`` logger and lowers the logger's level to INFO so the
        events actually flow; :meth:`close` detaches the handler again.
        """
        log = cls()
        handler = logging.FileHandler(Path(path), mode="w")
        log._attach(handler)
        return log

    @classmethod
    def to_stream(cls, stream: IO[str]) -> "EventLog":
        """Event log writing JSON lines to an open text stream."""
        log = cls()
        log._attach(logging.StreamHandler(stream))
        return log

    def _attach(self, handler: logging.Handler) -> None:
        handler.setFormatter(JsonLinesFormatter())
        handler.setLevel(logging.INFO)
        self._logger.addHandler(handler)
        if self._logger.getEffectiveLevel() > logging.INFO:
            if self._prev_level is None:
                self._prev_level = self._logger.level
            self._logger.setLevel(logging.INFO)
        self._owned_handlers.append(handler)

    def close(self) -> None:
        """Detach (and close) every handler this instance attached.

        Also restores the logger level the attachment lowered, so repeated
        CLI invocations in one process leave the logging tree untouched.
        """
        for handler in self._owned_handlers:
            self._logger.removeHandler(handler)
            handler.close()
        self._owned_handlers.clear()
        if self._prev_level is not None:
            self._logger.setLevel(self._prev_level)
            self._prev_level = None

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- emission --------------------------------------------------------------

    def emit(self, event: str, **fields: object) -> None:
        """Emit one structured event (INFO level, skipped when disabled)."""
        if self._logger.isEnabledFor(logging.INFO):
            self.events_emitted += 1
            self._logger.info(event, extra={"fields": fields})

    def milestone(self, name: str, t_s: float, **fields: object) -> None:
        """Engine milestone (``run_started``, ``horizon_reached``, ...)."""
        self.emit(name, t_s=t_s, **fields)

    def job_submitted(self, job: Job, t_s: float) -> None:
        self.emit(
            "job_submitted",
            t_s=t_s,
            job_id=job.job_id,
            submit_s=job.submit_time,
            nodes=job.nodes_required,
            partition=job.partition,
        )

    def job_started(self, job: Job, t_s: float) -> None:
        self.emit(
            "job_started",
            t_s=t_s,
            job_id=job.job_id,
            start_s=job.sim_start_time,
            wait_s=job.wait_time,
            nodes=job.nodes_required,
            partition=job.partition,
        )

    def job_finished(
        self, job: Job, t_s: float, *, energy_kwh: float | None = None
    ) -> None:
        """Job completion, with node-hour and (optional) energy attribution."""
        duration = job.sim_duration
        self.emit(
            "job_finished",
            t_s=t_s,
            job_id=job.job_id,
            start_s=job.sim_start_time,
            end_s=job.sim_end_time,
            runtime_s=duration,
            wait_s=job.wait_time,
            nodes=job.nodes_required,
            node_hours=(
                job.nodes_required * duration / 3600.0 if duration is not None else None
            ),
            energy_kwh=energy_kwh,
            truncated=bool(job.metadata.get("truncated_by_horizon", False)),
        )

    def job_dismissed(self, job: Job, t_s: float, reason: str | None = None) -> None:
        self.emit(
            "job_dismissed",
            t_s=t_s,
            job_id=job.job_id,
            nodes=job.nodes_required,
            reason=reason if reason is not None else job.metadata.get("dismiss_reason"),
        )
