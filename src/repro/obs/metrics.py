"""A small in-process metrics registry: counters, gauges, histograms.

The registry is the run-introspection substrate the engine publishes into:
step counts, coalesced grid ticks, end-time-heap pops, journal drains,
queue depth, backfill reservations, per-phase wall-time histograms. It is
deliberately dependency-free (no prometheus client) and snapshot-oriented —
:meth:`MetricsRegistry.snapshot` returns one nested dict, exportable as
JSON or CSV — because the consumers in this repo are the CLI's
``--metrics-out``, the benchmark harness and tests, not a scrape endpoint.
The naming follows the prometheus conventions (``*_total`` counters,
unit-suffixed gauges/histograms) so wiring a real exporter later is a
rename-free change.

Hot-path cost discipline mirrors the tracer: components never consult the
registry per step — they keep plain integer attributes and the engine
publishes them once at finalisation. Only explicitly live instruments (the
queue-depth gauge, the per-phase histograms) are updated inside the loop,
and only when observability is enabled.
"""

from __future__ import annotations

import csv
import json
import math
from bisect import bisect_left
from pathlib import Path
from typing import Any, TypeVar

from ..exceptions import ConfigurationError

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ConfigurationError(
                f"counter {self.name!r} cannot decrease (inc {amount})"
            )
        self.value += amount


class Gauge:
    """Last-set value (plus the maximum ever set, for peak tracking)."""

    __slots__ = ("name", "help", "value", "max_value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value = 0.0
        self.max_value = -math.inf

    def set(self, value: float) -> None:
        self.value = value
        if value > self.max_value:
            self.max_value = value


#: Default histogram bucket upper bounds — geometric, wide enough for both
#: microsecond phase timings and second-scale waits.
_DEFAULT_BOUNDS = (
    1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0,
    1_000.0, 2_500.0, 5_000.0, 10_000.0, 25_000.0, 50_000.0, 100_000.0,
)


class Histogram:
    """Cumulative-bucket histogram with count/sum/min/max.

    ``observe`` costs one bisect over a short static bound tuple — cheap
    enough for the per-phase wall histograms the engine feeds per step when
    observability is on.
    """

    __slots__ = ("name", "help", "bounds", "bucket_counts", "count", "total", "min", "max")

    def __init__(
        self, name: str, help: str = "", *, bounds: tuple[float, ...] | None = None
    ) -> None:
        self.name = name
        self.help = help
        self.bounds = tuple(bounds) if bounds is not None else _DEFAULT_BOUNDS
        if any(b2 <= b1 for b1, b2 in zip(self.bounds, self.bounds[1:])):
            raise ConfigurationError(
                f"histogram {name!r} bounds must increase strictly"
            )
        # One overflow bucket past the last bound (the "+Inf" bucket).
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Bucket-resolution quantile estimate (upper bound of the bucket)."""
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        cumulative = 0
        for index, bucket in enumerate(self.bucket_counts):
            cumulative += bucket
            if cumulative >= rank:
                if index < len(self.bounds):
                    return self.bounds[index]
                return self.max
        return self.max  # pragma: no cover - rank <= count always hits above

    def summary(self) -> dict[str, float]:
        return {
            "count": float(self.count),
            "sum": self.total,
            "mean": self.mean,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "p50": self.quantile(0.5),
            "p99": self.quantile(0.99),
        }


_MetricT = TypeVar("_MetricT", Counter, Gauge, Histogram)


class MetricsRegistry:
    """Named instruments with get-or-create semantics and dict snapshots."""

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def _get_or_create(
        self, kind: type[_MetricT], name: str, help: str, **kwargs: Any
    ) -> _MetricT:
        metric = self._metrics.get(name)
        if metric is None:
            metric = kind(name, help, **kwargs)
            self._metrics[name] = metric
        elif type(metric) is not kind:
            raise ConfigurationError(
                f"metric {name!r} already registered as {type(metric).__name__}, "
                f"not {kind.__name__}"
            )
        return metric  # type: ignore[return-value]

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)

    def histogram(
        self, name: str, help: str = "", *, bounds: tuple[float, ...] | None = None
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help, bounds=bounds)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    # -- export ----------------------------------------------------------------

    def snapshot(self) -> dict[str, dict[str, Any]]:
        """All instruments as one nested, JSON-friendly dict.

        Non-finite sentinels (an untouched gauge's ``-inf`` peak) are
        mapped to ``None`` so the snapshot survives strict JSON dumping.
        """

        def finite(value: float) -> float | None:
            return value if math.isfinite(value) else None

        counters: dict[str, float] = {}
        gauges: dict[str, dict[str, float | None]] = {}
        histograms: dict[str, dict[str, float | None]] = {}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if isinstance(metric, Counter):
                counters[name] = metric.value
            elif isinstance(metric, Gauge):
                gauges[name] = {
                    "value": finite(metric.value),
                    "max": finite(metric.max_value),
                }
            else:
                histograms[name] = {
                    key: finite(value) for key, value in metric.summary().items()
                }
        return {"counters": counters, "gauges": gauges, "histograms": histograms}

    def to_json(self, path: str | Path) -> None:
        Path(path).write_text(
            json.dumps(self.snapshot(), indent=2, allow_nan=False) + "\n"
        )

    def to_csv(self, path: str | Path) -> None:
        """Flat ``kind,name,field,value`` rows — trivially greppable/joinable."""
        snapshot = self.snapshot()
        with open(Path(path), "w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(("kind", "name", "field", "value"))
            for name, value in snapshot["counters"].items():
                writer.writerow(("counter", name, "value", value))
            for kind in ("gauges", "histograms"):
                for name, fields in snapshot[kind].items():
                    for field, value in fields.items():
                        writer.writerow((kind[:-1], name, field, value))
