"""The :class:`Observability` bundle the engine is configured with.

One object groups the four independent instruments — span tracer, metrics
registry, structured event log, progress reporter — each individually
optional (``None`` = off). The engine unpacks the bundle once at
construction into plain attributes, so a disabled instrument costs one
``is None`` check on the hot path and nothing else.
"""

from __future__ import annotations

from .events import EventLog
from .metrics import MetricsRegistry
from .progress import ProgressReporter
from .tracing import SpanTracer

__all__ = ["Observability"]


class Observability:
    """Bundle of (individually optional) run instruments.

    Attributes
    ----------
    tracer:
        Times named engine phases; exports Chrome trace-event JSON.
    metrics:
        Counter/gauge/histogram registry, published at run finalisation.
    events:
        Structured JSON-lines job-lifecycle / milestone log.
    progress:
        Wall-clock-cadence heartbeat reporter (stderr or callback).
    """

    __slots__ = ("tracer", "metrics", "events", "progress")

    def __init__(
        self,
        *,
        tracer: SpanTracer | None = None,
        metrics: MetricsRegistry | None = None,
        events: EventLog | None = None,
        progress: ProgressReporter | None = None,
    ) -> None:
        self.tracer = tracer
        self.metrics = metrics
        self.events = events
        self.progress = progress

    @classmethod
    def collecting(cls) -> "Observability":
        """Tracer + metrics collecting in memory (no sinks attached).

        The convenient form for tests and embedding consumers that read
        the instruments back after :meth:`SimulationEngine.run`.
        """
        return cls(tracer=SpanTracer(), metrics=MetricsRegistry())

    @property
    def enabled(self) -> bool:
        """Whether any instrument is active."""
        return (
            self.tracer is not None
            or self.metrics is not None
            or self.events is not None
            or self.progress is not None
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        on = [
            name
            for name in self.__slots__
            if getattr(self, name) is not None
        ]
        return f"Observability({', '.join(on) or 'disabled'})"
