"""Phase-span tracing with Chrome trace-event export.

:class:`SpanTracer` times named engine phases (``schedule``, ``coalesce``,
``power``, ``cooling``, ``stats``) plus run-lifecycle spans. The design
constraint is the *disabled* cost, not the enabled one: the engine holds a
plain attribute that is ``None`` when tracing is off, so an uninstrumented
step pays one identity check per phase and never calls into this module —
the benchmark gate on ``wall_us_per_step`` keeps that honest. When enabled,
each span costs two ``perf_counter_ns`` reads and a couple of dict updates.

Aggregates (per-phase wall total and call count) are always maintained;
individual span events are retained only with ``keep_events=True`` (the
default), capped at :attr:`SpanTracer.max_events` so a frontier-scale run
cannot balloon memory — spans beyond the cap still count into the
aggregates and are tallied in :attr:`SpanTracer.dropped_events`.

:meth:`SpanTracer.to_chrome_trace` writes the retained spans in the Chrome
trace-event JSON format (an object with a ``traceEvents`` list of complete
``"ph": "X"`` events, timestamps/durations in microseconds), loadable in
``chrome://tracing`` or https://ui.perfetto.dev.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from pathlib import Path
from time import perf_counter_ns
from typing import Iterator

__all__ = ["SpanTracer"]


class SpanTracer:
    """Collects named wall-clock spans for one run.

    Parameters
    ----------
    keep_events:
        Retain individual spans for Chrome trace export. ``False`` keeps
        only the per-phase aggregates (cheaper; what the benchmark
        harness's phase-breakdown runs use).
    max_events:
        Retention cap on individual spans; aggregates are unaffected.
    """

    __slots__ = (
        "keep_events",
        "max_events",
        "dropped_events",
        "totals_ns",
        "counts",
        "_names",
        "_starts_ns",
        "_durs_ns",
        "_epoch_ns",
    )

    def __init__(self, *, keep_events: bool = True, max_events: int = 1_000_000) -> None:
        self.keep_events = keep_events
        self.max_events = max_events
        self.dropped_events = 0
        self.totals_ns: dict[str, int] = {}
        self.counts: dict[str, int] = {}
        self._names: list[str] = []
        self._starts_ns: list[int] = []
        self._durs_ns: list[int] = []
        #: All exported timestamps are relative to tracer creation, so the
        #: trace starts near t=0 regardless of the process clock.
        self._epoch_ns = perf_counter_ns()

    # -- recording -------------------------------------------------------------

    @staticmethod
    def now_ns() -> int:
        """Monotonic span clock (``time.perf_counter_ns``)."""
        return perf_counter_ns()

    def add(self, name: str, start_ns: int, end_ns: int | None = None) -> int:
        """Record one completed span and return its end timestamp (ns).

        ``end_ns`` defaults to "now", so the returned value doubles as the
        start of the next back-to-back phase without a second clock read.
        """
        if end_ns is None:
            end_ns = perf_counter_ns()
        dur = end_ns - start_ns
        totals = self.totals_ns
        if name in totals:
            totals[name] += dur
            self.counts[name] += 1
        else:
            totals[name] = dur
            self.counts[name] = 1
        if self.keep_events:
            if len(self._names) < self.max_events:
                self._names.append(name)
                self._starts_ns.append(start_ns)
                self._durs_ns.append(dur)
            else:
                self.dropped_events += 1
        return end_ns

    @contextmanager
    def span(self, name: str) -> Iterator[None]:
        """Context manager form for lifecycle spans (``run``, ``init``)."""
        start = perf_counter_ns()
        try:
            yield
        finally:
            self.add(name, start)

    # -- reporting -------------------------------------------------------------

    def __len__(self) -> int:
        """Number of retained individual spans."""
        return len(self._names)

    def phase_report(self) -> dict[str, dict[str, float]]:
        """Per-phase aggregate: wall seconds, call count, share of the total.

        The share denominator is the sum over *leaf* phases only — spans
        that enclose others (the ``run`` lifecycle span) are excluded so
        shares add up to ~1 instead of ~2.
        """
        leaf = {
            name: total
            for name, total in self.totals_ns.items()
            if name not in _ENCLOSING_SPANS
        }
        denominator = sum(leaf.values()) or 1
        report: dict[str, dict[str, float]] = {}
        for name, total in sorted(self.totals_ns.items(), key=lambda kv: -kv[1]):
            count = self.counts[name]
            row = {
                "wall_s": total / 1e9,
                "calls": float(count),
                "mean_us": total / count / 1e3 if count else 0.0,
            }
            if name in leaf:
                row["share"] = total / denominator
            report[name] = row
        return report

    def trace_events(self) -> list[dict[str, object]]:
        """The retained spans as Chrome trace-event dicts (microseconds)."""
        epoch = self._epoch_ns
        events: list[dict[str, object]] = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": 1,
                "tid": 1,
                "args": {"name": "repro simulation engine"},
            }
        ]
        for name, start, dur in zip(self._names, self._starts_ns, self._durs_ns):
            events.append(
                {
                    "name": name,
                    "cat": "engine",
                    "ph": "X",
                    "ts": (start - epoch) / 1e3,
                    "dur": dur / 1e3,
                    "pid": 1,
                    "tid": 1,
                }
            )
        return events

    def to_chrome_trace(self, path: str | Path) -> None:
        """Write the trace in Chrome trace-event JSON format.

        The file is an object with a ``traceEvents`` list — the variant
        both ``chrome://tracing`` and Perfetto load directly.
        """
        payload = {
            "traceEvents": self.trace_events(),
            "displayTimeUnit": "ms",
            "otherData": {
                "dropped_events": self.dropped_events,
                "phase_report": self.phase_report(),
            },
        }
        Path(path).write_text(json.dumps(payload) + "\n")


#: Span names that enclose other spans and are excluded from share math.
_ENCLOSING_SPANS = frozenset({"run"})
