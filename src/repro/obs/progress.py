"""Progress heartbeats for long simulation runs.

:class:`ProgressReporter` emits a compact status line (or calls back with a
:class:`ProgressSnapshot`) on a *wall-clock* cadence while the engine
loops: simulated time, fraction done, steps/s, ETA, running/queued jobs.
The callback form is the subscription hook the planned
simulation-as-a-service front end and the sweep driver consume — an engine
run becomes observable from outside the process loop without polling the
engine's internals.

Per-step cost when enabled is one ``time.monotonic`` read and a compare
(:meth:`ProgressReporter.due`); snapshots are only built on the cadence.
Disabled runs never see this module (the engine holds ``None``).

The fraction-done estimate uses the best bound available: with a horizon
it is simulated time over the horizon window; without one it is jobs
retired over total jobs (simulated end time is not known in advance). ETA
extrapolates wall time from that fraction and is ``None`` until the
fraction is meaningful.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass
from typing import IO, TYPE_CHECKING, Callable

from ..exceptions import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..engine.engine import SimulationEngine

__all__ = ["ProgressReporter", "ProgressSnapshot"]


@dataclass(frozen=True)
class ProgressSnapshot:
    """One heartbeat's view of a running simulation."""

    #: Wall seconds since the run started.
    wall_s: float
    #: Current simulated time and span simulated so far, seconds.
    sim_time_s: float
    sim_elapsed_s: float
    #: Fraction done in [0, 1], or ``None`` when no bound is available.
    fraction_done: float | None
    #: Engine steps taken and the wall-clock step rate.
    steps: int
    steps_per_s: float
    #: Estimated wall seconds remaining (``None`` until estimable).
    eta_s: float | None
    running_jobs: int
    queued_jobs: int
    jobs_done: int
    jobs_total: int
    #: True only for the snapshot emitted after the run completed.
    final: bool = False
    #: Batch-mode context (``None`` for plain single-run heartbeats): which
    #: replica this snapshot describes and the batch's done/total counts.
    #: The batch engine tags every heartbeat so a batched sweep task still
    #: emits attributable per-run beats.
    replica_index: int | None = None
    replicas_done: int | None = None
    replicas_total: int | None = None

    def format_line(self) -> str:
        """The stderr heartbeat line."""
        percent = (
            f"{100.0 * self.fraction_done:5.1f}%"
            if self.fraction_done is not None
            else "  ???%"
        )
        eta = f" eta {self.eta_s:.0f}s" if self.eta_s is not None else ""
        state = "done " if self.final else ""
        replicas = (
            f"  replicas {self.replicas_done}/{self.replicas_total}"
            if self.replicas_total is not None
            else ""
        )
        return (
            f"[progress] {state}{percent}  sim t={self.sim_time_s:.0f}s  "
            f"steps={self.steps} ({self.steps_per_s:.0f}/s)  "
            f"jobs {self.jobs_done}/{self.jobs_total}  "
            f"running={self.running_jobs} queued={self.queued_jobs}{eta}{replicas}"
        )


class ProgressReporter:
    """Emits heartbeats on a wall-clock cadence.

    Parameters
    ----------
    interval_s:
        Minimum wall seconds between heartbeats (0 reports every step).
    callback:
        Called with each :class:`ProgressSnapshot`. When ``None``, the
        formatted line is written to ``stream`` instead.
    stream:
        Text stream for the line form; defaults to ``sys.stderr``.
    """

    def __init__(
        self,
        interval_s: float = 1.0,
        *,
        callback: Callable[[ProgressSnapshot], None] | None = None,
        stream: IO[str] | None = None,
    ) -> None:
        if interval_s < 0:
            raise ConfigurationError(f"interval_s must be >= 0, got {interval_s}")
        self.interval_s = interval_s
        self.callback = callback
        self.stream = stream
        self.heartbeats = 0
        self._wall_start = 0.0
        self._next_due = 0.0
        self._started = False

    # -- engine hooks ----------------------------------------------------------

    def start(self) -> None:
        """Reset the cadence clock at the top of a run (idempotent)."""
        self._wall_start = time.monotonic()
        self._next_due = self._wall_start + self.interval_s
        self._started = True

    def due(self) -> bool:
        """Whether a heartbeat is due — the only per-step call."""
        return time.monotonic() >= self._next_due

    def report(
        self,
        engine: "SimulationEngine",
        *,
        final: bool = False,
        replica_index: int | None = None,
        replicas_done: int | None = None,
        replicas_total: int | None = None,
    ) -> None:
        """Build and emit one snapshot from the live engine state.

        The replica kwargs are the batch engine's heartbeat context
        (:class:`~repro.engine.batch.BatchSimulationEngine`): which replica
        this reporter watches and how many of the batch's replicas are
        done. Single-run callers leave them ``None``.
        """
        if not self._started:
            self.start()
        now_wall = time.monotonic()
        self._next_due = now_wall + self.interval_s
        self.heartbeats += 1
        snapshot = self._snapshot(
            engine,
            now_wall - self._wall_start,
            final,
            replica_index=replica_index,
            replicas_done=replicas_done,
            replicas_total=replicas_total,
        )
        if self.callback is not None:
            self.callback(snapshot)
        else:
            stream = self.stream if self.stream is not None else sys.stderr
            print(snapshot.format_line(), file=stream)

    # -- snapshot assembly -----------------------------------------------------

    def _snapshot(
        self,
        engine: "SimulationEngine",
        wall_s: float,
        final: bool,
        *,
        replica_index: int | None = None,
        replicas_done: int | None = None,
        replicas_total: int | None = None,
    ) -> ProgressSnapshot:
        stats = engine.stats
        steps = len(stats.ticks)
        jobs_total = len(engine.jobs)
        jobs_done = len(stats.completed_jobs) + len(stats.dismissed_jobs)
        sim_elapsed = engine.now - engine._start_time
        fraction: float | None
        if final:
            fraction = 1.0
        elif engine.horizon_s is not None and engine.horizon_s > 0:
            fraction = min(1.0, sim_elapsed / engine.horizon_s)
        elif jobs_total > 0:
            fraction = jobs_done / jobs_total
        else:
            fraction = None
        eta: float | None = None
        if not final and fraction is not None and 0.0 < fraction < 1.0 and wall_s > 0:
            eta = wall_s * (1.0 - fraction) / fraction
        return ProgressSnapshot(
            wall_s=wall_s,
            sim_time_s=engine.now,
            sim_elapsed_s=sim_elapsed,
            fraction_done=fraction,
            steps=steps,
            steps_per_s=steps / wall_s if wall_s > 0 else 0.0,
            eta_s=eta,
            running_jobs=len(engine.resource_manager.running_by_id),
            queued_jobs=len(engine.queued_jobs),
            jobs_done=jobs_done,
            jobs_total=jobs_total,
            final=final,
            replica_index=replica_index,
            replicas_done=replicas_done,
            replicas_total=replicas_total,
        )
