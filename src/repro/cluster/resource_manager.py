"""The resource manager: node inventory, allocation and release.

The resource manager completes placements decided by the scheduler
(Sec. 3.2.3/3.2.4 of the paper): in replay mode the exact recorded node set
is enforced, in reschedule mode the scheduler requests *n* nodes and the
resource manager selects them. It also resolves the timing corner case the
paper mentions — jobs ending and starting on the same node within the same
time step — because releases are always processed before new allocations in
the engine's step order.
"""

from __future__ import annotations

import heapq
from bisect import insort
from types import MappingProxyType
from typing import Iterator, Mapping, Sequence

import numpy as np

from ..config import SystemConfig
from ..exceptions import AllocationError
from ..devtools import hot_path
from ..telemetry.job import Job, JobState
from .node import Node, NodeState


class ResourceManager:
    """Owns the node inventory of a simulated system.

    Parameters
    ----------
    system:
        The system configuration (node counts, partitions, down fraction).
    seed:
        Seed used only to pick which nodes are marked down when
        ``system.down_node_fraction`` is non-zero.
    """

    def __init__(self, system: SystemConfig, *, seed: int = 0) -> None:
        self.system = system
        self.nodes: list[Node] = [Node(node_id=i) for i in range(system.total_nodes)]
        self._running: dict[int, Job] = {}
        if system.down_node_fraction > 0.0:
            rng = np.random.default_rng(seed)
            n_down = int(round(system.down_node_fraction * system.total_nodes))
            for node_id in rng.choice(system.total_nodes, size=n_down, replace=False):
                self.nodes[int(node_id)].mark_down()

        # Free-node index: per-partition id sets (membership / counts) plus
        # min-heaps (lowest-id-first selection) so placing a job is
        # O(n log N) instead of a full inventory scan. Node state changes
        # must go through allocate/release for the index to stay in sync;
        # heap entries staled by explicit placements are discarded lazily.
        self._partition_of: list[str] = [""] * system.total_nodes
        self._free_sets: dict[str, set[int]] = {}
        self._free_heaps: dict[str, list[int]] = {}
        for partition in system.partitions:
            node_range = system.partition_node_range(partition.name)
            for nid in node_range:
                self._partition_of[nid] = partition.name
            free_ids = [nid for nid in node_range if self.nodes[nid].is_available]
            self._free_sets[partition.name] = set(free_ids)
            self._free_heaps[partition.name] = free_ids  # ascending == valid heap

        # Inventory counters kept in lockstep with allocate/release so the
        # per-step queries are O(1) instead of full inventory scans; the
        # down count is immutable after the seed draw above. The epoch
        # increments on every allocation/release, giving consumers (the
        # incremental power aggregator, scheduler memoization) a cheap
        # "did the running set change?" check.
        self._down_count = sum(1 for node in self.nodes if node.state is NodeState.DOWN)
        self._allocated_count = 0
        self._epoch = 0

        # End-time index: a min-heap of (end time, job id) entries plus the
        # authoritative job-id -> end-time map. Entries are pushed on
        # allocate; a release (early, e.g. horizon truncation) merely drops
        # the map entry, leaving the heap entry stale — stale entries are
        # recognised on access (map disagrees with the entry) and popped
        # exactly once, never to be revisited. complete_finished_jobs and
        # next_job_end are thereby O(k log R) for k due/stale entries
        # instead of a full running-set scan. ``scan_completions`` restores
        # the O(running jobs) scan (identical semantics), kept for the
        # benchmark comparison and as a differential-testing aid.
        self._end_heap: list[tuple[float, int]] = []
        self._end_of: dict[int, float] = {}
        self.scan_completions = False

        # Allocate/release journal: every membership change appends one
        # ``(is_allocation, job_id)`` entry, so a consumer that polls between
        # events (the incremental power aggregator) can apply exactly the
        # changes since its last poll in O(changes) instead of diffing its
        # cached job set against the full running set per epoch change.
        # ``_journal_base`` is the global index of the first retained entry;
        # draining hands out the retained tail and empties the buffer, and a
        # consumer whose cursor predates the retained window (a second
        # consumer, or a capped journal) is told to resync via set diff.
        self._journal: list[tuple[bool, int]] = []
        self._journal_base = 0

        # Expected-release index for the EASY shadow reservation: running
        # jobs ordered by ``(sim_start + requested_runtime, nodes_required)``
        # — the planning view a scheduler has (wall-time limits), distinct
        # from the end-time heap above (actual recorded durations). Kept as
        # an insort-maintained sorted list with lazy deletion so the
        # reservation walk reads occupants in expected-end order with early
        # exit instead of materialising and sorting the running set per call.
        self._expected_sorted: list[tuple[float, int, int]] = []
        self._expected_of: dict[int, float] = {}
        self._expected_stale = 0

        # Observability counters: plain ints bumped on already-per-event
        # paths (never per step), folded into the engine's metrics registry
        # at run finalisation via :meth:`observability_counters`.
        self.end_heap_pops = 0
        self.end_heap_stale_pops = 0
        self.journal_appends = 0
        self.journal_drains = 0
        self.journal_resyncs = 0

    #: Retained-journal cap: without a draining consumer the buffer would
    #: grow by two entries per job for the whole run, so the oldest entries
    #: are dropped beyond this size (late consumers then resync, which is
    #: always correct).
    JOURNAL_CAP = 8192

    # -- inventory queries -----------------------------------------------------

    @property
    def total_nodes(self) -> int:
        """Total node count (including down nodes)."""
        return len(self.nodes)

    @property
    def available_nodes(self) -> int:
        """Number of idle, in-service nodes (from the free-node index)."""
        return self.free_node_count()

    @property
    def allocated_nodes(self) -> int:
        """Number of nodes currently running a job (O(1) counter)."""
        return self._allocated_count

    @property
    def down_nodes(self) -> int:
        """Number of down/drained nodes (immutable after the seed draw)."""
        return self._down_count

    @property
    def epoch(self) -> int:
        """Monotonic counter bumped on every allocation or release.

        Two calls observing the same epoch are guaranteed to see the same
        running set and free-node inventory, which lets consumers cache
        derived state (per-job power contributions, no-op scheduling
        decisions) without re-scanning anything.
        """
        return self._epoch

    @property
    def utilization(self) -> float:
        """Fraction of in-service nodes that are allocated."""
        in_service = self.total_nodes - self.down_nodes
        if in_service == 0:
            return 0.0
        return self.allocated_nodes / in_service

    @property
    def running_jobs(self) -> list[Job]:
        """Jobs currently occupying nodes (stable job-id order)."""
        return [self._running[jid] for jid in sorted(self._running)]

    @property
    def running_by_id(self) -> Mapping[int, Job]:
        """Read-only live view of the running jobs keyed by job id."""
        return MappingProxyType(self._running)

    def job_on_node(self, node_id: int) -> Job | None:
        """Return the job running on ``node_id``, if any."""
        job_id = self.nodes[node_id].job_id
        return self._running.get(job_id) if job_id is not None else None

    def available_node_ids(self, partition: str | None = None) -> list[int]:
        """Ids of idle nodes, optionally restricted to one partition."""
        if partition is None:
            ids: list[int] = []
            for p in self.system.partitions:
                ids.extend(sorted(self._free_sets[p.name]))
            return ids
        self.system.partition_node_range(partition)  # validates the name
        return sorted(self._free_sets[partition])

    def free_node_count(self, partition: str | None = None) -> int:
        """Number of idle in-service nodes, from the O(1) free-node index."""
        if partition is None:
            return sum(len(s) for s in self._free_sets.values())
        return len(self._free_sets.get(partition, ()))

    def can_allocate(self, job: Job) -> bool:
        """Whether the job's node request can currently be satisfied."""
        if job.recorded_nodes and self._replay_placement_possible(job):
            return True
        partition = job.partition if self._partition_exists(job.partition) else None
        return self.free_node_count(partition) >= job.nodes_required

    # -- allocation / release ---------------------------------------------------

    def allocate(
        self,
        job: Job,
        now: float,
        *,
        node_ids: Sequence[int] | None = None,
        exact_placement: bool = False,
    ) -> tuple[int, ...]:
        """Place ``job`` on nodes at time ``now`` and mark it running.

        Parameters
        ----------
        job:
            The job to place. Must be queued (or pending for prepopulation).
        now:
            Current simulation time.
        node_ids:
            Explicit placement (scheduler- or replay-chosen). When omitted,
            the first available nodes of the job's partition are used.
        exact_placement:
            Replay mode — require the job's recorded nodes; if any of them is
            unavailable an :class:`AllocationError` is raised.

        Returns
        -------
        tuple[int, ...]
            The node ids the job was placed on.
        """
        if job.job_id in self._running:
            raise AllocationError(f"job {job.job_id} is already running")
        if exact_placement:
            if not job.recorded_nodes:
                raise AllocationError(
                    f"job {job.job_id}: exact placement requested but the job "
                    "has no recorded nodes"
                )
            chosen = tuple(job.recorded_nodes)
        elif node_ids is not None:
            chosen = tuple(node_ids)
        else:
            partition = job.partition if self._partition_exists(job.partition) else None
            free = self.free_node_count(partition)
            if free < job.nodes_required:
                raise AllocationError(
                    f"job {job.job_id}: requested {job.nodes_required} nodes, "
                    f"only {free} available"
                )
            chosen = tuple(self._pop_free_nodes(job.nodes_required, partition))

        if len(set(chosen)) != len(chosen):
            raise AllocationError(f"job {job.job_id}: duplicate node ids in placement")
        if len(chosen) != job.nodes_required:
            raise AllocationError(
                f"job {job.job_id}: placement of {len(chosen)} nodes does not "
                f"match request of {job.nodes_required}"
            )
        unavailable = [nid for nid in chosen if not self.nodes[nid].is_available]
        if unavailable:
            raise AllocationError(
                f"job {job.job_id}: nodes {unavailable[:8]} are not available"
            )

        for nid in chosen:
            self.nodes[nid].allocate(job.job_id, now)
            self._free_sets[self._partition_of[nid]].discard(nid)
        job.mark_running(now, chosen)
        self._running[job.job_id] = job
        self._allocated_count += len(chosen)
        self._epoch += 1
        end_time = now + job.duration
        self._end_of[job.job_id] = end_time
        heapq.heappush(self._end_heap, (end_time, job.job_id))
        expected_end = now + job.requested_runtime
        self._expected_of[job.job_id] = expected_end
        insort(self._expected_sorted, (expected_end, job.nodes_required, job.job_id))
        self._journal_append(True, job.job_id)
        return chosen

    def release(self, job: Job, now: float) -> None:
        """Free the nodes of a finished job and mark it completed."""
        if job.job_id not in self._running:
            raise AllocationError(f"job {job.job_id} is not running")
        for nid in job.assigned_nodes:
            self.nodes[nid].release(now)
            self._mark_free(nid)
        del self._running[job.job_id]
        # The heap entry goes stale (the map no longer vouches for it) and
        # is discarded lazily the next time it surfaces.
        self._end_of.pop(job.job_id, None)
        self._drop_expected(job.job_id)
        self._allocated_count -= len(job.assigned_nodes)
        self._epoch += 1
        self._journal_append(False, job.job_id)
        if job.state is JobState.RUNNING:
            job.mark_completed(now)

    @hot_path
    def complete_finished_jobs(self, now: float) -> list[Job]:
        """Release every running job whose simulated end time has arrived.

        This is step (1) of the engine loop — clearing completed jobs before
        new submissions and scheduling, which resolves same-timestep
        end/start collisions on a node. A job is due once its indexed end
        time ``sim_start + duration`` — the exact event bound the engine
        coalesces towards — is at or before ``now``. This supersedes the
        historical elapsed-time comparison (``now - sim_start >=
        duration``), which could disagree with the event bound by one ulp
        and leave the engine stepping onto a release tick that then
        released nothing; the two conditions differ only in sub-ulp float
        cases, where the indexed form releases one grid tick earlier and
        drops the spurious extra step.

        The due set comes from the end-time min-heap: ``O(k log R)`` for
        ``k`` due jobs (plus any stale entries surfacing, each discarded
        exactly once) instead of a scan of the running set. Setting
        :attr:`scan_completions` restores the scan; both paths release the
        same jobs in the same (job-id) order at the same end times.
        """
        if self.scan_completions:
            # The O(R) scan is the opt-in differential baseline, not the
            # default path.
            finished = [  # repro-lint: disable=hot-path
                job
                for job in self._running.values()
                if job.sim_start_time is not None
                and self._end_of[job.job_id] <= now
            ]
            finished.sort(key=lambda j: j.job_id)
        else:
            finished = []
            while (entry := self._peek_live_end()) is not None:
                end_time, job_id = entry
                if end_time > now:
                    break
                heapq.heappop(self._end_heap)
                self.end_heap_pops += 1
                finished.append(self._running[job_id])
            finished.sort(key=lambda j: j.job_id)
        for job in finished:
            end_time = self._end_of.pop(job.job_id)
            for nid in job.assigned_nodes:
                self.nodes[nid].release(end_time)
                self._mark_free(nid)
            del self._running[job.job_id]
            self._drop_expected(job.job_id)
            self._allocated_count -= len(job.assigned_nodes)
            self._epoch += 1
            self._journal_append(False, job.job_id)
            job.mark_completed(end_time)
        return finished

    @hot_path
    def next_job_end(self) -> float | None:
        """Earliest indexed end time over the running set, or ``None``.

        Peeks the end-time heap, discarding stale entries as they surface,
        so the amortised cost is ``O(log R)`` — the engine's event-driven
        coalescing uses this as the running-set release bound instead of a
        per-step scan.
        """
        entry = self._peek_live_end()
        return entry[0] if entry is not None else None

    @hot_path
    def _peek_live_end(self) -> tuple[float, int] | None:
        """Top live ``(end time, job id)`` heap entry, or ``None``.

        Encodes the lazy-deletion rule in one place: an entry the map no
        longer vouches for is stale and is popped exactly once, never to
        be revisited.
        """
        heap = self._end_heap
        while heap:
            end_time, job_id = heap[0]
            if self._end_of.get(job_id) != end_time:
                heapq.heappop(heap)
                self.end_heap_pops += 1
                self.end_heap_stale_pops += 1
                continue
            return end_time, job_id
        return None

    # -- change journal / expected-release index ---------------------------------

    @property
    def journal_total(self) -> int:
        """Number of journal entries ever appended (a consumer cursor)."""
        return self._journal_base + len(self._journal)

    def drain_change_journal(
        self, cursor: int
    ) -> tuple[int, list[tuple[bool, int]] | None]:
        """Hand out the ``(is_allocation, job_id)`` entries since ``cursor``.

        Returns ``(new_cursor, entries)``. ``entries`` is ``None`` when the
        journal no longer reaches back to ``cursor`` (the buffer was capped,
        or another consumer drained it first) — the caller must then resync
        by diffing its cached membership against :attr:`running_by_id`,
        which is always correct, just O(running set) instead of O(changes).
        Draining empties the retained buffer, so the journal never grows
        beyond one poll interval for its steady consumer.
        """
        total = self._journal_base + len(self._journal)
        self.journal_drains += 1
        if cursor < self._journal_base:
            entries: list[tuple[bool, int]] | None = None
            self.journal_resyncs += 1
        elif cursor == total:
            entries = []
        else:
            entries = self._journal[cursor - self._journal_base :]
        self._journal.clear()
        self._journal_base = total
        return total, entries

    def _journal_append(self, is_allocation: bool, job_id: int) -> None:
        journal = self._journal
        journal.append((is_allocation, job_id))
        self.journal_appends += 1
        if len(journal) > self.JOURNAL_CAP:
            # Nobody is draining: keep the newest half so a steady consumer
            # that shows up late pays one resync, not unbounded memory.
            drop = len(journal) - self.JOURNAL_CAP // 2
            del journal[:drop]
            self._journal_base += drop

    def expected_release_entries(self) -> Iterator[tuple[float, int, int]]:
        """Running jobs as ``(expected end, nodes_required, job_id)``, ordered.

        Ascending by ``(sim_start + requested_runtime, nodes_required)`` —
        exactly the order the EASY shadow reservation consumes occupants in
        (ties beyond that are indistinguishable to the reservation
        arithmetic). Backed by the insort-maintained index, so a walk that
        exits early (the reservation stops once the head fits) costs
        O(entries consumed + stale skipped), never a sort of the running
        set. Stale entries of released jobs are skipped via the
        authoritative map, mirroring the end-time heap's lazy deletion.
        """
        expected_of = self._expected_of
        for entry in self._expected_sorted:
            if expected_of.get(entry[2]) == entry[0]:
                yield entry

    def _drop_expected(self, job_id: int) -> None:
        """Lazily delete a released job from the expected-release index."""
        if self._expected_of.pop(job_id, None) is None:
            return
        self._expected_stale += 1
        if self._expected_stale > max(64, len(self._expected_of)):
            # More tombstones than live entries: compact so walks stay
            # proportional to the live running set.
            self._expected_sorted = [
                entry
                for entry in self._expected_sorted
                if self._expected_of.get(entry[2]) == entry[0]
            ]
            self._expected_stale = 0

    # -- helpers -----------------------------------------------------------------

    def _mark_free(self, nid: int) -> None:
        """Return a released node to the free-node index."""
        name = self._partition_of[nid]
        self._free_sets[name].add(nid)
        heapq.heappush(self._free_heaps[name], nid)

    def _pop_free_nodes(self, count: int, partition: str | None) -> list[int]:
        """Take the ``count`` lowest-id free nodes (of one partition or all).

        Entries staled by explicit/replay placements or by nodes taken out
        of service are discarded lazily as they surface.
        """
        names = (
            [partition]
            if partition is not None
            else [p.name for p in self.system.partitions]
        )
        chosen: list[int] = []
        for name in names:
            heap = self._free_heaps[name]
            free = self._free_sets[name]
            while heap and len(chosen) < count:
                nid = heapq.heappop(heap)
                if nid in free and self.nodes[nid].is_available:
                    # Remove from the set immediately so a duplicate heap
                    # entry (stale + re-pushed after a release) cannot be
                    # chosen twice within this selection.
                    free.discard(nid)
                    chosen.append(nid)
            if len(chosen) == count:
                break
        return chosen

    def _partition_exists(self, name: str) -> bool:
        return any(p.name == name for p in self.system.partitions)

    def _replay_placement_possible(self, job: Job) -> bool:
        return all(
            0 <= nid < self.total_nodes and self.nodes[nid].is_available
            for nid in job.recorded_nodes
        )

    def observability_counters(self) -> dict[str, int]:
        """Plain-int instrumentation counters (engine metrics publication).

        Keys become ``rm_<key>_total`` counters in the metrics registry.
        """
        return {
            "end_heap_pops": self.end_heap_pops,
            "end_heap_stale_pops": self.end_heap_stale_pops,
            "journal_appends": self.journal_appends,
            "journal_drains": self.journal_drains,
            "journal_resyncs": self.journal_resyncs,
        }

    def snapshot(self) -> dict[str, float]:
        """Small dictionary snapshot of the inventory state (debug/tests)."""
        return {
            "total_nodes": float(self.total_nodes),
            "allocated_nodes": float(self.allocated_nodes),
            "available_nodes": float(self.available_nodes),
            "down_nodes": float(self.down_nodes),
            "utilization": float(self.utilization),
            "running_jobs": float(len(self._running)),
        }
