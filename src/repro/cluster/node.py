"""Compute-node state."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..exceptions import AllocationError


class NodeState(enum.Enum):
    """Allocation state of a compute node."""

    IDLE = "idle"
    ALLOCATED = "allocated"
    #: Down or drained; never considered by the scheduler. The public
    #: datasets do not record this, but the engine supports it for what-if
    #: studies (the paper notes its absence inflates rescheduled utilization).
    DOWN = "down"


@dataclass
class Node:
    """A single compute node.

    Attributes
    ----------
    node_id:
        Zero-based node index; partition membership is derived from the
        system configuration's contiguous node-id assignment.
    state:
        Current allocation state.
    job_id:
        Id of the occupying job while ``ALLOCATED``.
    allocation_count / busy_s:
        Lifetime accounting used by the statistics module.
    """

    node_id: int
    state: NodeState = NodeState.IDLE
    job_id: int | None = None
    allocation_count: int = 0
    busy_s: float = 0.0
    _allocated_at: float | None = field(default=None, repr=False)

    @property
    def is_available(self) -> bool:
        """True when the node can accept a new job."""
        return self.state is NodeState.IDLE

    def allocate(self, job_id: int, now: float) -> None:
        """Assign this node to ``job_id`` at simulation time ``now``."""
        if self.state is NodeState.DOWN:
            raise AllocationError(f"node {self.node_id} is down")
        if self.state is NodeState.ALLOCATED:
            raise AllocationError(
                f"node {self.node_id} already allocated to job {self.job_id}, "
                f"cannot allocate to job {job_id}"
            )
        self.state = NodeState.ALLOCATED
        self.job_id = job_id
        self.allocation_count += 1
        self._allocated_at = now

    def release(self, now: float) -> None:
        """Free the node at simulation time ``now``."""
        if self.state is not NodeState.ALLOCATED:
            raise AllocationError(f"node {self.node_id} is not allocated")
        if self._allocated_at is not None:
            self.busy_s += max(0.0, now - self._allocated_at)
        self.state = NodeState.IDLE
        self.job_id = None
        self._allocated_at = None

    def mark_down(self) -> None:
        """Take the node out of service (must be idle)."""
        if self.state is NodeState.ALLOCATED:
            raise AllocationError(
                f"node {self.node_id} cannot be marked down while allocated"
            )
        self.state = NodeState.DOWN

    def mark_up(self) -> None:
        """Return a down node to service."""
        if self.state is NodeState.ALLOCATED:
            raise AllocationError(f"node {self.node_id} is allocated, not down")
        self.state = NodeState.IDLE
