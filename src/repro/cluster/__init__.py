"""Cluster substrate: nodes and the resource manager.

The resource manager owns the node inventory and is the only component that
mutates node allocation state. The scheduler decides *which* jobs to place
and (in replay mode) *where*; the resource manager validates and carries out
the placement, mirroring the scheduler/resource-manager split that Sec. 3.2.3
of the paper describes as a key refactor of S-RAPS.
"""

from .node import Node, NodeState
from .resource_manager import ResourceManager

__all__ = ["Node", "NodeState", "ResourceManager"]
