"""System configuration for the digital-twin simulation.

A :class:`~repro.config.system_config.SystemConfig` captures everything the
simulator needs to know about the physical machine being twinned: node and
partition inventory, per-component power characteristics, electrical
conversion-loss parameters and cooling-plant parameters. The
:mod:`repro.config.defaults` module ships ready-made configurations for the
five systems used in the paper (Frontier, Marconi100, Fugaku, Lassen,
Adastra) plus a small ``tiny`` system used by the test-suite.
"""

from .system_config import (
    CoolingConfig,
    NodePowerConfig,
    PartitionConfig,
    PowerLossConfig,
    SystemConfig,
)
from .defaults import (
    available_systems,
    get_system_config,
    register_system_config,
)

__all__ = [
    "CoolingConfig",
    "NodePowerConfig",
    "PartitionConfig",
    "PowerLossConfig",
    "SystemConfig",
    "available_systems",
    "get_system_config",
    "register_system_config",
]
