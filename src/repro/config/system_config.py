"""Dataclasses describing a twinned HPC system.

The original RAPS keeps system descriptions in per-system ``config`` plugins;
S-RAPS extends these with scheduler-relevant information (partitions, default
scheduling policy, trace quantum). Here the same information lives in plain,
validated dataclasses so configurations can be constructed programmatically,
loaded from the built-in registry, or defined ad hoc in tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Mapping

from ..exceptions import ConfigurationError


@dataclass(frozen=True)
class NodePowerConfig:
    """Per-node power characteristics used by the power model.

    Power for a node is modelled per component:
    ``idle + cpu_util * (cpu_max - cpu_idle) * n_cpus + gpu_util * (gpu_max -
    gpu_idle) * n_gpus + mem_util * mem_dynamic`` — see
    :mod:`repro.power.node_power` for the exact formulation.

    Attributes
    ----------
    idle_w:
        Node power at zero utilization (fans, NICs, idle silicon).
    cpu_idle_w / cpu_max_w:
        Per-CPU-socket idle and full-load power.
    gpu_idle_w / gpu_max_w:
        Per-GPU idle and full-load power.
    mem_dynamic_w:
        Additional node power at 100 % memory-bandwidth utilization.
    cpus_per_node / gpus_per_node:
        Component counts.
    """

    idle_w: float
    cpu_idle_w: float
    cpu_max_w: float
    gpu_idle_w: float
    gpu_max_w: float
    mem_dynamic_w: float
    cpus_per_node: int
    gpus_per_node: int

    def __post_init__(self) -> None:
        if self.idle_w < 0:
            raise ConfigurationError("idle_w must be non-negative")
        if self.cpu_max_w < self.cpu_idle_w:
            raise ConfigurationError("cpu_max_w must be >= cpu_idle_w")
        if self.gpu_max_w < self.gpu_idle_w:
            raise ConfigurationError("gpu_max_w must be >= gpu_idle_w")
        if self.cpus_per_node < 0 or self.gpus_per_node < 0:
            raise ConfigurationError("component counts must be non-negative")

    @property
    def max_w(self) -> float:
        """Maximum modelled node power (all components at 100 %)."""
        return (
            self.idle_w
            + self.cpus_per_node * self.cpu_max_w
            + self.gpus_per_node * self.gpu_max_w
            + self.mem_dynamic_w
        )

    @property
    def min_w(self) -> float:
        """Idle modelled node power (all components at 0 %)."""
        return (
            self.idle_w
            + self.cpus_per_node * self.cpu_idle_w
            + self.gpus_per_node * self.gpu_idle_w
        )


@dataclass(frozen=True)
class PowerLossConfig:
    """Electrical conversion-loss model parameters.

    Mirrors the rectifier/conversion loss modelling of Wojda et al. used by
    RAPS: the AC→DC rectification stage and the in-rack DC/DC (sivoc) stage
    each have a load-dependent efficiency curve; switchgear adds a small
    constant loss fraction.
    """

    rectifier_efficiency_peak: float = 0.975
    rectifier_efficiency_idle: float = 0.90
    sivoc_efficiency_peak: float = 0.98
    sivoc_efficiency_idle: float = 0.92
    switchgear_loss_fraction: float = 0.005

    def __post_init__(self) -> None:
        for name in (
            "rectifier_efficiency_peak",
            "rectifier_efficiency_idle",
            "sivoc_efficiency_peak",
            "sivoc_efficiency_idle",
        ):
            value = getattr(self, name)
            if not 0.0 < value <= 1.0:
                raise ConfigurationError(f"{name} must be in (0, 1], got {value}")
        if not 0.0 <= self.switchgear_loss_fraction < 0.5:
            raise ConfigurationError("switchgear_loss_fraction must be in [0, 0.5)")


@dataclass(frozen=True)
class CoolingConfig:
    """Cooling-plant parameters for the lumped-parameter thermal model.

    The defaults approximate a warm-water, liquid-cooled plant of the kind
    modelled by the ExaDigiT Modelica cooling package: CDU secondary loops
    feeding cold plates, a facility water loop, and evaporative cooling
    towers whose approach temperature depends on load and ambient wet-bulb.
    """

    supply_temperature_c: float = 21.0
    facility_supply_temperature_c: float = 18.0
    ambient_wet_bulb_c: float = 12.0
    cdu_count: int = 25
    cdu_thermal_mass_j_per_k: float = 4.0e7
    facility_thermal_mass_j_per_k: float = 6.0e8
    secondary_flow_kg_per_s_per_cdu: float = 40.0
    facility_flow_kg_per_s: float = 1200.0
    tower_approach_c: float = 4.0
    tower_range_coefficient: float = 6.0e-7
    pump_power_fraction: float = 0.015
    fan_power_fraction: float = 0.02
    air_cooled_fraction: float = 0.0
    crac_cop: float = 3.5

    def __post_init__(self) -> None:
        # cdu_count == 0 is a valid fully air-cooled plant (all heat goes
        # through the CRAC/facility path) — but only with nothing routed to
        # the then-nonexistent liquid loop.
        if self.cdu_count < 0:
            raise ConfigurationError("cdu_count must be non-negative")
        # Exact comparison on purpose: 1.0 is a user-entered sentinel
        # ("everything air-cooled"), not a computed quantity.
        if (
            self.cdu_count == 0
            and self.air_cooled_fraction != 1.0  # repro-lint: disable=float-compare
        ):
            raise ConfigurationError(
                "cdu_count == 0 (no liquid loop) requires air_cooled_fraction == 1.0"
            )
        if self.secondary_flow_kg_per_s_per_cdu <= 0 or self.facility_flow_kg_per_s <= 0:
            raise ConfigurationError("flow rates must be positive")
        if not 0.0 <= self.air_cooled_fraction <= 1.0:
            raise ConfigurationError("air_cooled_fraction must be in [0, 1]")
        if self.crac_cop <= 0:
            raise ConfigurationError("crac_cop must be positive")


@dataclass(frozen=True)
class PartitionConfig:
    """A named node partition (e.g. Adastra's CPU and GPU partitions)."""

    name: str
    node_count: int
    node_power: NodePowerConfig

    def __post_init__(self) -> None:
        if self.node_count <= 0:
            raise ConfigurationError(f"partition {self.name!r} must have nodes")


@dataclass(frozen=True)
class SystemConfig:
    """Full description of a twinned system.

    Attributes
    ----------
    name:
        Registry key (``"frontier"``, ``"marconi100"``, ...).
    description:
        Human-readable architecture string as in Table 1 of the paper.
    partitions:
        Tuple of :class:`PartitionConfig`. Node ids are assigned contiguously
        in partition order, so partition boundaries can be recovered from
        node indices.
    scheduler_name:
        Production scheduler on the real machine (informational).
    trace_quantum_s:
        Native telemetry sampling interval of the dataset (15 s for Frontier,
        20 s for Marconi100, summaries otherwise).
    timestep_s:
        Simulation timestep used by the engine for this system.
    power_loss:
        Electrical loss model parameters.
    cooling:
        Cooling model parameters, or ``None`` if no cooling model is coupled
        (the paper only couples cooling for Frontier).
    default_policy:
        Scheduling policy used when the caller does not specify one.
    down_node_fraction:
        Fraction of nodes marked down/drained at simulation start; the public
        datasets do not include this, and the paper notes its absence inflates
        rescheduled utilization. Kept configurable for what-if studies.
    """

    name: str
    description: str
    partitions: tuple[PartitionConfig, ...]
    scheduler_name: str = "slurm"
    trace_quantum_s: int = 60
    timestep_s: int = 60
    power_loss: PowerLossConfig = field(default_factory=PowerLossConfig)
    cooling: CoolingConfig | None = None
    default_policy: str = "replay"
    down_node_fraction: float = 0.0
    metadata: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.partitions:
            raise ConfigurationError("a system needs at least one partition")
        if self.timestep_s <= 0 or self.trace_quantum_s <= 0:
            raise ConfigurationError("timestep_s and trace_quantum_s must be positive")
        if not 0.0 <= self.down_node_fraction < 1.0:
            raise ConfigurationError("down_node_fraction must be in [0, 1)")
        names = [p.name for p in self.partitions]
        if len(set(names)) != len(names):
            raise ConfigurationError("partition names must be unique")

    @property
    def total_nodes(self) -> int:
        """Total node count across all partitions."""
        return sum(p.node_count for p in self.partitions)

    @property
    def has_cooling_model(self) -> bool:
        """Whether a cooling model is configured for this system."""
        return self.cooling is not None

    def partition_of_node(self, node_id: int) -> PartitionConfig:
        """Return the partition owning ``node_id`` (contiguous assignment)."""
        if node_id < 0:
            raise ConfigurationError(f"node id must be non-negative, got {node_id}")
        offset = 0
        for partition in self.partitions:
            if node_id < offset + partition.node_count:
                return partition
            offset += partition.node_count
        raise ConfigurationError(
            f"node id {node_id} out of range for system {self.name!r} "
            f"({self.total_nodes} nodes)"
        )

    def partition_node_range(self, partition_name: str) -> range:
        """Return the node-id range of the named partition."""
        offset = 0
        for partition in self.partitions:
            if partition.name == partition_name:
                return range(offset, offset + partition.node_count)
            offset += partition.node_count
        raise ConfigurationError(
            f"unknown partition {partition_name!r} for system {self.name!r}"
        )

    def node_power_config(self, node_id: int) -> NodePowerConfig:
        """Return the power characteristics of ``node_id``'s partition."""
        return self.partition_of_node(node_id).node_power

    @property
    def peak_system_power_kw(self) -> float:
        """Upper bound on modelled IT power in kilowatts."""
        watts = sum(p.node_count * p.node_power.max_w for p in self.partitions)
        return watts / 1000.0

    @property
    def idle_system_power_kw(self) -> float:
        """Idle modelled IT power in kilowatts."""
        watts = sum(p.node_count * p.node_power.min_w for p in self.partitions)
        return watts / 1000.0

    def with_overrides(self, **kwargs: object) -> "SystemConfig":
        """Return a copy with selected fields replaced (what-if studies)."""
        return replace(self, **kwargs)  # type: ignore[arg-type]
