"""Built-in system configurations.

One configuration per system used in the paper (Table 1), plus a small
``tiny`` system used throughout the test-suite where full-scale node counts
would only slow tests down. Component power figures are approximations taken
from public specifications of the respective node architectures; absolute
wattage is not the point of the reproduction — the coupling between
utilization, power, losses and cooling is.

Systems (Table 1 of the paper):

========== =============== ======== ============ ==========
System     Architecture    Nodes    Dataset      Scheduler
========== =============== ======== ============ ==========
Frontier   HPE/Cray EX     9,600    proprietary  Slurm
Marconi100 IBM POWER9      980      PM100        Slurm
Fugaku     Fujitsu A64FX   158,976  F-Data       Fujitsu TCS
Lassen     IBM POWER9      792      LAST         LSF
Adastra    HPE/Cray EX     356      Cirou        Slurm
========== =============== ======== ============ ==========
"""

from __future__ import annotations

from ..exceptions import ConfigurationError
from .system_config import (
    CoolingConfig,
    NodePowerConfig,
    PartitionConfig,
    PowerLossConfig,
    SystemConfig,
)

_REGISTRY: dict[str, SystemConfig] = {}


def register_system_config(config: SystemConfig, *, overwrite: bool = False) -> None:
    """Register a system configuration under ``config.name``.

    Site-specific configurations can be added by downstream users without
    touching the built-in registry, mirroring the plugin mechanism of S-RAPS.
    """
    key = config.name.lower()
    if key in _REGISTRY and not overwrite:
        raise ConfigurationError(f"system {config.name!r} already registered")
    _REGISTRY[key] = config


def get_system_config(name: str) -> SystemConfig:
    """Look up a registered system configuration by (case-insensitive) name."""
    key = name.lower()
    if key not in _REGISTRY:
        known = ", ".join(sorted(_REGISTRY))
        raise ConfigurationError(f"unknown system {name!r}; known systems: {known}")
    return _REGISTRY[key]


def available_systems() -> tuple[str, ...]:
    """Names of all registered systems, sorted alphabetically."""
    return tuple(sorted(_REGISTRY))


# ---------------------------------------------------------------------------
# Node power characteristics
# ---------------------------------------------------------------------------

#: Frontier node: 1x AMD Trento CPU + 4x MI250X GPUs (8 GCDs), liquid cooled.
FRONTIER_NODE = NodePowerConfig(
    idle_w=220.0,
    cpu_idle_w=90.0,
    cpu_max_w=280.0,
    gpu_idle_w=90.0,
    gpu_max_w=560.0,
    mem_dynamic_w=80.0,
    cpus_per_node=1,
    gpus_per_node=4,
)

#: Marconi100 node: 2x POWER9 + 4x V100.
MARCONI100_NODE = NodePowerConfig(
    idle_w=240.0,
    cpu_idle_w=60.0,
    cpu_max_w=190.0,
    gpu_idle_w=40.0,
    gpu_max_w=300.0,
    mem_dynamic_w=60.0,
    cpus_per_node=2,
    gpus_per_node=4,
)

#: Fugaku node: single A64FX socket, no discrete GPU.
FUGAKU_NODE = NodePowerConfig(
    idle_w=60.0,
    cpu_idle_w=40.0,
    cpu_max_w=170.0,
    gpu_idle_w=0.0,
    gpu_max_w=0.0,
    mem_dynamic_w=30.0,
    cpus_per_node=1,
    gpus_per_node=0,
)

#: Lassen node: 2x POWER9 + 4x V100 (similar to Marconi100/Sierra class).
LASSEN_NODE = NodePowerConfig(
    idle_w=250.0,
    cpu_idle_w=60.0,
    cpu_max_w=190.0,
    gpu_idle_w=40.0,
    gpu_max_w=300.0,
    mem_dynamic_w=60.0,
    cpus_per_node=2,
    gpus_per_node=4,
)

#: Adastra MI250X partition node: 1x Trento CPU + 4x MI250X.
ADASTRA_GPU_NODE = NodePowerConfig(
    idle_w=220.0,
    cpu_idle_w=90.0,
    cpu_max_w=280.0,
    gpu_idle_w=90.0,
    gpu_max_w=560.0,
    mem_dynamic_w=80.0,
    cpus_per_node=1,
    gpus_per_node=4,
)

#: Small CPU-only node used by the ``tiny`` test system.
TINY_NODE = NodePowerConfig(
    idle_w=100.0,
    cpu_idle_w=50.0,
    cpu_max_w=200.0,
    gpu_idle_w=25.0,
    gpu_max_w=300.0,
    mem_dynamic_w=40.0,
    cpus_per_node=2,
    gpus_per_node=2,
)


# ---------------------------------------------------------------------------
# System configurations
# ---------------------------------------------------------------------------

FRONTIER = SystemConfig(
    name="frontier",
    description="HPE/Cray EX, AMD MI250X, liquid cooled (OLCF Frontier)",
    partitions=(PartitionConfig("batch", 9600, FRONTIER_NODE),),
    scheduler_name="slurm",
    trace_quantum_s=15,
    timestep_s=60,
    power_loss=PowerLossConfig(),
    cooling=CoolingConfig(
        supply_temperature_c=21.0,
        facility_supply_temperature_c=18.0,
        ambient_wet_bulb_c=12.0,
        cdu_count=25,
        secondary_flow_kg_per_s_per_cdu=45.0,
        facility_flow_kg_per_s=1500.0,
        tower_approach_c=4.0,
        pump_power_fraction=0.015,
        fan_power_fraction=0.02,
    ),
    default_policy="replay",
    metadata={
        "dataset": "proprietary (Frontier excerpt, STREAM telemetry)",
        "job_count": 1238,
        "characteristics": "job traces (15s), CPU/GPU power & temp",
        "priority_scheme": "modified FIFO boosted by node count, penalised on overuse",
    },
)

MARCONI100 = SystemConfig(
    name="marconi100",
    description="IBM POWER9 + V100 (CINECA Marconi100)",
    partitions=(PartitionConfig("batch", 980, MARCONI100_NODE),),
    scheduler_name="slurm",
    trace_quantum_s=20,
    timestep_s=60,
    power_loss=PowerLossConfig(),
    cooling=None,
    default_policy="replay",
    metadata={
        "dataset": "PM100",
        "job_count": 231_238,
        "characteristics": "job traces (20s), CPU/node power",
    },
)

FUGAKU = SystemConfig(
    name="fugaku",
    description="Fujitsu A64FX (RIKEN Fugaku)",
    partitions=(PartitionConfig("batch", 158_976, FUGAKU_NODE),),
    scheduler_name="fujitsu_tcs",
    trace_quantum_s=3600,
    timestep_s=300,
    power_loss=PowerLossConfig(),
    cooling=None,
    default_policy="replay",
    metadata={
        "dataset": "F-Data",
        "job_count": 116_977,
        "characteristics": "job summary, node-level power only",
    },
)

LASSEN = SystemConfig(
    name="lassen",
    description="IBM POWER9 + V100 (LLNL Lassen)",
    partitions=(PartitionConfig("batch", 792, LASSEN_NODE),),
    scheduler_name="lsf",
    trace_quantum_s=3600,
    timestep_s=60,
    power_loss=PowerLossConfig(),
    cooling=None,
    default_policy="replay",
    metadata={
        "dataset": "LAST",
        "job_count": 1_467_746,
        "characteristics": "job summary, includes network tx/rx",
    },
)

ADASTRA = SystemConfig(
    name="adastramei250",
    description="HPE/Cray EX, AMD MI250X (CINES Adastra, MI250 partition)",
    partitions=(PartitionConfig("mi250", 356, ADASTRA_GPU_NODE),),
    scheduler_name="slurm",
    trace_quantum_s=3600,
    timestep_s=60,
    power_loss=PowerLossConfig(),
    cooling=None,
    default_policy="replay",
    metadata={
        "dataset": "Cirou (Adastra jobs MI250 15 days)",
        "job_count": 30_570,
        "characteristics": "job summary, job avg component power",
    },
)

#: Small system for unit tests and quick examples.
TINY = SystemConfig(
    name="tiny",
    description="Small synthetic test system",
    partitions=(PartitionConfig("batch", 32, TINY_NODE),),
    scheduler_name="slurm",
    trace_quantum_s=15,
    timestep_s=15,
    power_loss=PowerLossConfig(),
    cooling=CoolingConfig(
        cdu_count=2,
        secondary_flow_kg_per_s_per_cdu=10.0,
        facility_flow_kg_per_s=40.0,
        cdu_thermal_mass_j_per_k=2.0e6,
        facility_thermal_mass_j_per_k=2.0e7,
    ),
    default_policy="replay",
    metadata={"dataset": "synthetic"},
)


for _config in (FRONTIER, MARCONI100, FUGAKU, LASSEN, ADASTRA, TINY):
    register_system_config(_config)

# Common aliases used by the paper's CLI examples.
register_system_config(ADASTRA.with_overrides(name="adastra"), overwrite=False)
register_system_config(ADASTRA.with_overrides(name="adastrami250"), overwrite=False)
