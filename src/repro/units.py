"""Time-duration and power-unit helpers.

The paper's CLI accepts fast-forward/simulation-time arguments such as
``-ff 4381000`` (plain seconds), ``-t 1h``, ``-ff 35d`` or ``-t 7d``. This
module provides the parsing used throughout the reproduction plus a handful
of small unit-conversion helpers used by the power and cooling substrates.

All simulation time is handled internally as integer seconds relative to the
start of the loaded telemetry window; wall-clock anchoring is the job of the
dataloaders.
"""

from __future__ import annotations

import re
from typing import Union

from .exceptions import ConfigurationError

#: Multipliers for the duration suffixes accepted by :func:`parse_duration`.
_SUFFIX_SECONDS = {
    "s": 1,
    "sec": 1,
    "second": 1,
    "seconds": 1,
    "m": 60,
    "min": 60,
    "minute": 60,
    "minutes": 60,
    "h": 3600,
    "hr": 3600,
    "hour": 3600,
    "hours": 3600,
    "d": 86400,
    "day": 86400,
    "days": 86400,
    "w": 604800,
    "week": 604800,
    "weeks": 604800,
}

_DURATION_RE = re.compile(r"^\s*(?P<value>\d+(?:\.\d+)?)\s*(?P<unit>[a-zA-Z]*)\s*$")

_HMS_RE = re.compile(
    r"^\s*(?:(?P<days>\d+)-)?(?P<hours>\d{1,3}):(?P<minutes>\d{2})(?::(?P<seconds>\d{2}))?\s*$"
)

DurationLike = Union[int, float, str, None]


def parse_duration(value: DurationLike, *, default: int | None = None) -> int:
    """Parse a duration expression into integer seconds.

    Accepted forms:

    * ``None`` — returns ``default`` (which must then be provided),
    * plain numbers (``61000``, ``61000.0``) — interpreted as seconds,
    * suffixed strings (``"15s"``, ``"1h"``, ``"7d"``, ``"35d"``, ``"2w"``),
    * Slurm-style clock strings (``"1:30:00"``, ``"2-12:00:00"``, ``"15:00"``).

    Parameters
    ----------
    value:
        The duration expression.
    default:
        Value returned when ``value`` is ``None``.

    Returns
    -------
    int
        Number of seconds (rounded to the nearest integer).

    Raises
    ------
    ConfigurationError
        If the expression cannot be parsed or is negative.
    """
    if value is None:
        if default is None:
            raise ConfigurationError("duration is required but was None")
        return int(default)
    if isinstance(value, (int, float)):
        if value < 0:
            raise ConfigurationError(f"duration must be non-negative, got {value!r}")
        return int(round(value))

    text = str(value).strip()
    if not text:
        raise ConfigurationError("empty duration string")

    hms = _HMS_RE.match(text)
    if hms is not None:
        days = int(hms.group("days") or 0)
        hours = int(hms.group("hours"))
        minutes = int(hms.group("minutes"))
        seconds = int(hms.group("seconds") or 0)
        # Slurm's "MM:SS" form has no hour field; we follow the common
        # scheduler convention of treating "H:MM" / "H:MM:SS" as hours-first,
        # which matches the strings used in the paper's artifacts.
        total = ((days * 24 + hours) * 60 + minutes) * 60 + seconds
        return total

    match = _DURATION_RE.match(text)
    if match is None:
        raise ConfigurationError(f"cannot parse duration {value!r}")
    number = float(match.group("value"))
    unit = match.group("unit").lower() or "s"
    if unit not in _SUFFIX_SECONDS:
        raise ConfigurationError(f"unknown duration unit {unit!r} in {value!r}")
    seconds = number * _SUFFIX_SECONDS[unit]
    if seconds < 0:
        raise ConfigurationError(f"duration must be non-negative, got {value!r}")
    return int(round(seconds))


def format_duration(seconds: float) -> str:
    """Render seconds as a compact human-readable ``DdHH:MM:SS`` string."""
    seconds = int(round(seconds))
    sign = "-" if seconds < 0 else ""
    seconds = abs(seconds)
    days, rem = divmod(seconds, 86400)
    hours, rem = divmod(rem, 3600)
    minutes, secs = divmod(rem, 60)
    if days:
        return f"{sign}{days}d{hours:02d}:{minutes:02d}:{secs:02d}"
    return f"{sign}{hours:02d}:{minutes:02d}:{secs:02d}"


def watts_to_kilowatts(watts: float) -> float:
    """Convert watts to kilowatts."""
    return watts / 1_000.0


def kilowatts_to_megawatts(kilowatts: float) -> float:
    """Convert kilowatts to megawatts."""
    return kilowatts / 1_000.0


def joules_to_kilowatt_hours(joules: float) -> float:
    """Convert joules to kilowatt-hours."""
    return joules / 3.6e6


def kilowatt_hours_to_joules(kwh: float) -> float:
    """Convert kilowatt-hours to joules."""
    return kwh * 3.6e6


def node_seconds_to_node_hours(node_seconds: float) -> float:
    """Convert node-seconds to node-hours."""
    return node_seconds / 3600.0


def celsius_to_kelvin(celsius: float) -> float:
    """Convert a temperature from Celsius to Kelvin."""
    return celsius + 273.15


def kelvin_to_celsius(kelvin: float) -> float:
    """Convert a temperature from Kelvin to Celsius."""
    return kelvin - 273.15


#: Absolute tolerance (kW) below which a power magnitude counts as zero.
#:
#: Chosen far below anything the simulator produces — the smallest non-zero
#: facility power is a single idle node (tens of watts, i.e. ~1e-2 kW) and
#: real values are either *exactly* ``0.0`` (nothing computed yet) or many
#: orders of magnitude above this threshold — so the guard changes no
#: simulated numbers while absorbing sub-ULP round-off from summation
#: reorderings.
ZERO_POWER_ATOL_KW = 1e-12


def is_zero_kw(power_kw: float, *, atol_kw: float = ZERO_POWER_ATOL_KW) -> bool:
    """Whether a kilowatt magnitude is (numerically) zero.

    The sanctioned replacement for exact ``== 0.0`` guards on power and
    energy quantities, which the ``float-compare`` rule of ``repro-lint``
    rejects: exact comparison silently turns into a different branch when
    an optimisation reorders a floating-point reduction.
    """
    return abs(power_kw) <= atol_kw
