"""Command-line entry point: ``repro-sim`` / ``python -m repro.engine``.

Wires a synthetic (or SWF-loaded) workload through an end-to-end simulation
of a named system and prints the summary metrics; the per-tick time series
and the full record can be exported for plotting.

Examples
--------
Replay a 6-hour synthetic window on the tiny test system::

    repro-sim --system tiny --mode replay --duration 6h --seed 1

Reschedule a day on Frontier with EASY backfill and export the series::

    repro-sim --system frontier --mode backfill --duration 24h \
        --csv frontier.csv --json frontier.json

Feed a Parallel Workloads Archive trace through FCFS::

    repro-sim --system marconi100 --mode fcfs --swf kth_sp2.swf \
        --processors-per-node 4
"""

from __future__ import annotations

import argparse
import logging
import math
import sys
from typing import Sequence

from ..config import available_systems, get_system_config
from ..exceptions import ConfigurationError, SRapsError
from ..obs import EventLog, MetricsRegistry, Observability, ProgressReporter, SpanTracer
from ..power.signals import OperatingSignals
from ..telemetry import read_swf
from ..units import parse_duration as _parse_offset_s
from .engine import parse_duration, run_simulation
from .scheduler import available_policies

__all__ = ["main", "build_parser"]

#: CLI diagnostics logger — a child of ``repro``, so the stderr handler
#: ``main()`` attaches (and only ``main()``; importing this module never
#: touches the logging tree) sees both CLI messages and run events.
_LOG = logging.getLogger("repro.cli")

#: (summary key, label, format, unit) rows of the printed report.
_REPORT_ROWS = (
    ("jobs_completed", "jobs completed", "{:.0f}", ""),
    ("jobs_dismissed", "jobs dismissed", "{:.0f}", ""),
    ("simulated_s", "simulated span", "{:.0f}", "s"),
    ("total_energy_kwh", "total energy", "{:.1f}", "kWh"),
    ("it_energy_kwh", "IT energy", "{:.1f}", "kWh"),
    ("cooling_energy_kwh", "cooling energy", "{:.1f}", "kWh"),
    ("mean_pue", "mean PUE", "{:.4f}", ""),
    ("max_pue", "max PUE", "{:.4f}", ""),
    ("mean_utilization", "mean utilization", "{:.1%}", ""),
    ("node_hours", "node-hours", "{:.1f}", "h"),
    ("mean_wait_s", "mean wait", "{:.0f}", "s"),
    ("max_wait_s", "max wait", "{:.0f}", "s"),
    ("energy_cost", "energy cost", "{:.2f}", ""),
    ("carbon_kg", "carbon", "{:.1f}", "kg"),
    ("cap_violation_kwh", "cap violation", "{:.3f}", "kWh"),
    ("capped_hold_s", "capped hold", "{:.0f}", "job-s"),
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-sim",
        description=(
            "Run the S-RAPS digital-twin simulation: workload -> scheduler -> "
            "resource manager -> power -> cooling -> statistics."
        ),
    )
    parser.add_argument(
        "--system",
        default="tiny",
        help="registered system name (see --list-systems); default: tiny",
    )
    parser.add_argument(
        "--mode",
        "--policy",
        dest="mode",
        default=None,
        choices=(*available_policies(), "easy"),
        metavar="POLICY",
        help=(
            "scheduling policy: "
            + ", ".join((*available_policies(), "easy"))
            + " (default: the system's default policy)"
        ),
    )
    parser.add_argument(
        "--duration",
        default="24h",
        help="synthetic workload window, e.g. 6h, 90m, 86400 (default: 24h)",
    )
    parser.add_argument("--seed", type=int, default=0, help="workload seed (default: 0)")
    parser.add_argument(
        "--swf",
        metavar="PATH",
        default=None,
        help="load the workload from a Standard Workload Format file instead",
    )
    parser.add_argument(
        "--processors-per-node",
        type=int,
        default=1,
        help="SWF processor-to-node conversion divisor (default: 1)",
    )
    parser.add_argument(
        "--horizon",
        default=None,
        help="hard stop for the simulation clock, e.g. 48h (default: run to drain)",
    )
    parser.add_argument(
        "--dense-ticks",
        action="store_true",
        help=(
            "record one sample per timestep instead of coalescing event-free "
            "intervals (exact per-tick time series; summary metrics are "
            "identical either way)"
        ),
    )
    power_group = parser.add_argument_group("power-aware operation")
    power_group.add_argument(
        "--power-cap",
        type=float,
        default=None,
        metavar="KW",
        help=(
            "IT power cap in kW: wraps the policy in a power-capping "
            "scheduler that holds (or dismisses) jobs exceeding the cap"
        ),
    )
    power_group.add_argument(
        "--price-per-kwh",
        type=float,
        default=None,
        metavar="PRICE",
        help="constant electricity price weighting the energy_cost metric",
    )
    power_group.add_argument(
        "--carbon-per-kwh",
        type=float,
        default=None,
        metavar="KG",
        help="constant carbon intensity (kg/kWh) weighting the carbon_kg metric",
    )
    power_group.add_argument(
        "--cap-window",
        nargs=2,
        default=None,
        metavar=("START", "END"),
        help=(
            "demand-response window: apply --power-cap only between the two "
            "offsets (e.g. --cap-window 2h 6h); uncapped outside"
        ),
    )
    parser.add_argument(
        "--csv", metavar="PATH", default=None, help="export per-tick time series as CSV"
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="export summary + time series as JSON",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress the summary report"
    )
    parser.add_argument(
        "--list-systems",
        action="store_true",
        help="list registered system configurations and exit",
    )
    obs_group = parser.add_argument_group("observability")
    obs_group.add_argument(
        "--log-json",
        metavar="PATH",
        default=None,
        help="write structured run events (job lifecycle, milestones) as JSON lines",
    )
    obs_group.add_argument(
        "--trace-out",
        metavar="PATH",
        default=None,
        help=(
            "write per-phase spans as Chrome trace-event JSON "
            "(load in chrome://tracing or ui.perfetto.dev)"
        ),
    )
    obs_group.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help="write the metrics snapshot (.csv extension selects CSV, else JSON)",
    )
    obs_group.add_argument(
        "--progress",
        action="store_true",
        help="print wall-clock-cadence progress heartbeats to stderr",
    )
    obs_group.add_argument(
        "-v",
        "--verbose",
        action="count",
        default=0,
        help="stream run events to stderr (-v), plus debug diagnostics (-vv)",
    )
    return parser


class _ConsoleFormatter(logging.Formatter):
    """Human-readable stderr lines; structured event fields render inline."""

    def format(self, record: logging.LogRecord) -> str:
        message = record.getMessage()
        fields = getattr(record, "fields", None)
        if isinstance(fields, dict) and fields:
            details = " ".join(f"{key}={value}" for key, value in fields.items())
            message = f"{message}  {details}"
        if record.levelno >= logging.WARNING:
            return f"{record.levelname.lower()}: {message}"
        return message


def _print_report(result_policy: str, system_name: str, summary: dict[str, float]) -> None:
    """Print the summary table, tolerating absent keys and idle-run PUEs.

    A summary produced by an older export (or a custom stats collector) may
    lack rows; a run where no job ever drew power reports ``max_pue=inf``.
    Neither should crash the report.
    """
    width = max(len(label) for _, label, _, _ in _REPORT_ROWS)
    print(f"simulation of {system_name!r} under policy {result_policy!r}")
    for key, label, fmt, unit in _REPORT_ROWS:
        raw = summary.get(key)
        if raw is None:
            value = "n/a"
        elif isinstance(raw, float) and not math.isfinite(raw):
            value = "n/a (idle)"
        else:
            value = fmt.format(raw)
        suffix = f" {unit}" if unit else ""
        print(f"  {label:<{width}}  {value}{suffix}")


def _signals_from_args(args: argparse.Namespace) -> OperatingSignals | None:
    """Build the operating signals the power flags describe (or ``None``)."""
    if (
        args.power_cap is None
        and args.price_per_kwh is None
        and args.carbon_per_kwh is None
    ):
        if args.cap_window is not None:
            raise ConfigurationError("--cap-window requires --power-cap")
        return None
    if args.cap_window is not None:
        if args.power_cap is None:
            raise ConfigurationError("--cap-window requires --power-cap")
        start_s = float(_parse_offset_s(args.cap_window[0]))
        end_s = float(_parse_offset_s(args.cap_window[1]))
        return OperatingSignals.cap_window(
            start_s,
            end_s,
            args.power_cap,
            price_per_kwh=args.price_per_kwh,
            carbon_kg_per_kwh=args.carbon_per_kwh,
        )
    return OperatingSignals.constant(
        power_cap_kw=args.power_cap,
        price_per_kwh=args.price_per_kwh,
        carbon_kg_per_kwh=args.carbon_per_kwh,
    )


def _build_obs(args: argparse.Namespace) -> Observability | None:
    """The :class:`Observability` bundle the CLI flags ask for (or ``None``)."""
    tracer = SpanTracer() if args.trace_out else None
    metrics = MetricsRegistry() if args.metrics_out else None
    events = None
    if args.log_json:
        events = EventLog.to_jsonl(args.log_json)
    elif args.verbose:
        # -v without --log-json: events flow through the stderr handler.
        events = EventLog()
    progress = ProgressReporter(stream=sys.stderr) if args.progress else None
    obs = Observability(tracer=tracer, metrics=metrics, events=events, progress=progress)
    return obs if obs.enabled else None


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_systems:
        for name in available_systems():
            config = get_system_config(name)
            print(f"{name:<16} {config.total_nodes:>7} nodes  {config.description}")
        return 0

    # The stderr diagnostics handler exists only for the duration of this
    # call: libraries importing repro never get handlers forced on them, and
    # repeated main() invocations (tests) do not stack handlers.
    root_log = logging.getLogger("repro")
    handler = logging.StreamHandler(sys.stderr)
    handler.setFormatter(_ConsoleFormatter())
    level = (
        logging.WARNING
        if args.verbose == 0
        else logging.INFO if args.verbose == 1 else logging.DEBUG
    )
    handler.setLevel(level)
    prev_level = root_log.level
    root_log.addHandler(handler)
    if root_log.getEffectiveLevel() > level:
        root_log.setLevel(level)

    obs = _build_obs(args)
    try:
        signals = _signals_from_args(args)
        if args.swf is not None:
            # Externally loaded workloads cannot be captured in a
            # serialisable request; they keep the direct path.
            workload = read_swf(args.swf, processors_per_node=args.processors_per_node)
            result = run_simulation(
                system=args.system,
                policy=args.mode,
                duration=parse_duration(args.duration),
                seed=args.seed,
                workload=workload,
                horizon=args.horizon,
                dense_ticks=args.dense_ticks,
                signals=signals,
                obs=obs,
            )
        else:
            # Same execution path as the sweep driver's pool workers.
            # Imported lazily: repro.sweep imports repro.engine at package
            # init, so a top-level import here would be a cycle.
            from ..sweep.request import RunRequest, run_request

            request = RunRequest(
                system=args.system,
                policy=args.mode,
                duration_s=parse_duration(args.duration),
                seed=args.seed,
                horizon_s=(
                    parse_duration(args.horizon) if args.horizon is not None else None
                ),
                dense_ticks=args.dense_ticks,
                signals=signals,
            )
            result = run_request(request, obs=obs)
    except (SRapsError, OSError) as exc:
        _LOG.error("%s", exc)
        return 1
    finally:
        if obs is not None and obs.events is not None:
            obs.events.close()
        root_log.removeHandler(handler)
        root_log.setLevel(prev_level)
        handler.close()

    if obs is not None:
        # _build_obs creates the tracer/registry exactly when the matching
        # output flag is set, so these narrowings never actually skip.
        if args.trace_out and obs.tracer is not None:
            obs.tracer.to_chrome_trace(args.trace_out)
        if args.metrics_out and obs.metrics is not None:
            if str(args.metrics_out).endswith(".csv"):
                obs.metrics.to_csv(args.metrics_out)
            else:
                obs.metrics.to_json(args.metrics_out)

    if args.csv:
        result.stats.to_csv(args.csv)
    if args.json:
        result.stats.to_json(args.json)
    if not args.quiet:
        _print_report(result.policy, result.system.name, result.summary())
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
