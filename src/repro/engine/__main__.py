"""Allow ``python -m repro.engine`` as an alias for ``repro-sim``."""

from .cli import main

if __name__ == "__main__":
    raise SystemExit(main())
