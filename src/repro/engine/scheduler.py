"""Pluggable scheduling policies.

The scheduler decides *which* queued jobs start *when* (and, in replay mode,
*where*); the resource manager validates and carries out the placement. Each
policy returns a list of :class:`SchedulingDecision` for the current tick and
never mutates job or node state itself — the engine executes decisions in
order, so a policy must account for the nodes its own earlier decisions of
the same tick will consume (all policies here track a local free-node count
for exactly that reason).

Three policies cover the paper's experiments:

``replay``
    Enforce the recorded schedule: every job starts at its recorded start
    time, on its recorded node set when the telemetry includes one. This is
    the validation mode of Sec. 3.2.3 — the simulated power/cooling series
    can be compared against the observed ones.

``fcfs``
    Strict first-come-first-served: jobs start in submission order and the
    queue blocks on the first job that does not fit.

``backfill``
    EASY backfill (Lifka): FCFS with a reservation for the queue head; later
    jobs may jump ahead if, judged by their wall-time limit, they cannot
    delay the head's reservation.
"""

from __future__ import annotations

import abc
import heapq
from bisect import bisect_right
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Sequence

from ..cluster import NodeState, ResourceManager
from ..devtools import hot_path
from ..exceptions import SchedulingError
from ..power.signals import OperatingSignals
from ..telemetry.job import Job
from ..units import watts_to_kilowatts

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from ..power.system_power import SystemPowerModel

__all__ = [
    "SchedulingDecision",
    "Scheduler",
    "ReplayScheduler",
    "FCFSScheduler",
    "BackfillScheduler",
    "PowerCapScheduler",
    "available_policies",
    "get_scheduler",
]


@dataclass(frozen=True)
class SchedulingDecision:
    """One job start decided by a policy for the current tick.

    Attributes
    ----------
    job:
        The queued job to start.
    node_ids:
        Explicit placement. ``None`` lets the resource manager pick the
        first available nodes of the job's partition.
    exact_placement:
        Replay mode — require the job's recorded node set.
    start_time:
        Simulated start time to record. Replay backdates this to the
        recorded start time (which may fall between ticks); ``None`` means
        "now".
    """

    job: Job
    node_ids: tuple[int, ...] | None = None
    exact_placement: bool = False
    start_time: float | None = None


class Scheduler(abc.ABC):
    """Base class for scheduling policies.

    Subclasses implement :meth:`schedule`; they are stateful per simulation
    run (e.g. replay tracks which jobs missed their recorded start) and are
    reset by the engine via :meth:`reset` before a run.
    """

    #: Registry/CLI name of the policy.
    name: str = "abstract"

    #: Use the vectorised/indexed hot paths (memoized queue orderings, the
    #: resource manager's expected-release index). The engine sets this from
    #: ``SimulationEngine(vectorized=...)``; ``False`` restores the
    #: historical per-call scans as a differential benchmark baseline —
    #: decisions are identical either way.
    vectorized: bool = True

    @abc.abstractmethod
    def schedule(
        self, queue: Sequence[Job], resource_manager: ResourceManager, now: float
    ) -> list[SchedulingDecision]:
        """Return the start decisions for the current tick.

        Parameters
        ----------
        queue:
            Queued jobs in submission order (submit time, then job id).
            The engine passes its live queue without copying: policies
            must treat it as read-only — never mutate, reorder or retain
            it past the call (take a sorted/filtered copy instead, as
            :class:`ReplayScheduler` does).
        resource_manager:
            Read-only view of the node inventory. Policies must not call
            its mutating methods.
        now:
            Current simulation time (tick boundary).
        """

    def reset(self) -> None:
        """Clear per-run state. The default implementation is a no-op."""

    def observability_counters(self) -> dict[str, int]:
        """Plain-int instrumentation counters for the metrics registry.

        Keys become ``sched_<key>_total`` counters when the engine
        publishes metrics at run finalisation; the default policy exposes
        none. Counters are per run (cleared by :meth:`reset`).
        """
        return {}

    def drain_dismissals(self) -> list[tuple[Job, str]]:
        """Jobs the policy decided to reject outright, each with a reason.

        The engine polls this once per tick after executing the decisions
        and marks the returned jobs dismissed, removing them from the
        queue. Draining transfers ownership: the policy must forget the
        jobs it returns. The default policy never dismisses.
        """
        return []

    def held_jobs(self) -> int:
        """Queued jobs the policy deliberately held back this tick.

        Power-capped policies hold jobs that fit the free nodes but not
        the active power budget; the engine feeds the count to the stats
        collector's ``capped_hold_s`` integral. The default holds none.
        """
        return 0

    @hot_path
    def next_event_hint(self, queue: Sequence[Job], now: float) -> float | None:
        """Earliest future time this policy might start a job spontaneously.

        The engine uses this for event-driven time advancement: between
        ``now`` and the earliest of (next submission, next running-job end,
        this hint, the horizon) the simulation state cannot change, so the
        engine may coalesce the intervening no-op ticks into one sample.

        Return ``None`` when the policy only ever acts in response to a
        submission or a release (both of which the engine tracks as events
        of their own); return a time ``<= now`` to veto coalescing
        entirely. The engine calls this *after* :meth:`schedule` within a
        tick, so the queue contains only jobs the policy just declined to
        start. As with :meth:`schedule`, the queue is the engine's live
        list and must be treated as read-only.

        The default is conservative: a non-empty queue vetoes coalescing,
        an empty queue allows it freely.
        """
        return now if queue else None

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{type(self).__name__}(name={self.name!r})"


class ReplayScheduler(Scheduler):
    """Start every job at its recorded start time, where it actually ran.

    Jobs whose recorded placement is momentarily infeasible (busy nodes, a
    prepopulation edge case) are retried each tick and started as soon as
    possible at the *current* time, tagged ``metadata['replay_delayed'] =
    True`` so downstream analysis can exclude them from validation plots.
    Jobs whose recorded placement can *never* be satisfied (out-of-range
    node ids or down nodes — inconsistent telemetry) fall back to free-node
    placement and are tagged ``metadata['replay_relocated'] = True``.
    """

    name = "replay"

    def __init__(self) -> None:
        self._delayed: set[int] = set()
        #: (now, job ids expected in the queue after the engine executes
        #: the returned decisions, earliest future recorded start) stashed
        #: by :meth:`schedule` so the engine's same-tick
        #: :meth:`next_event_hint` call skips the sort and the per-job due
        #: checks. Jobs the engine starts between the two calls are all
        #: *due* (recorded start <= now), so removing them from the queue
        #: can never change the future-start minimum; the exact id match
        #: guards direct callers that drop the decisions on the floor or
        #: present a different queue.
        self._hint_stash: tuple[float, frozenset[int], float | None] | None = None
        #: Memoized queue ordering: ((resource-manager epoch, queue length),
        #: member job ids, the sorted list). Within the engine, the queue's
        #: composition can only change through a submission (length changes)
        #: or a start (allocation bumps the epoch), so an (epoch, length)
        #: match plus the id check — O(queue) but far cheaper than the
        #: O(queue log queue) sort with its per-job key tuples — proves the
        #: cached ordering is current. The sort keys (recorded start, job
        #: id) are immutable, so a membership match is an ordering match.
        self._order_memo: (
            tuple[tuple[int, int], frozenset[int], list[Job]] | None
        ) = None
        #: Observability counters (published as ``sched_*_total`` metrics).
        self.order_memo_hits = 0
        self.hint_stash_hits = 0

    def reset(self) -> None:
        self._delayed.clear()
        self._hint_stash = None
        self._order_memo = None
        self.order_memo_hits = 0
        self.hint_stash_hits = 0

    def observability_counters(self) -> dict[str, int]:
        return {
            "replay_order_memo_hits": self.order_memo_hits,
            "replay_hint_stash_hits": self.hint_stash_hits,
        }

    def _ordered_queue(
        self, queue: Sequence[Job], resource_manager: ResourceManager
    ) -> list[Job]:
        """The queue sorted by (recorded start, job id), memoized."""
        key = (resource_manager.epoch, len(queue))
        memo = self._order_memo
        if (
            self.vectorized
            and memo is not None
            and memo[0] == key
            and all(job.job_id in memo[1] for job in queue)
        ):
            self.order_memo_hits += 1
            return memo[2]
        ordered = sorted(queue, key=lambda j: (j.start_time, j.job_id))
        self._order_memo = (
            key, frozenset(job.job_id for job in ordered), ordered
        )
        return ordered

    def schedule(
        self, queue: Sequence[Job], resource_manager: ResourceManager, now: float
    ) -> list[SchedulingDecision]:
        ordered = self._ordered_queue(queue, resource_manager)
        # ``ordered`` ascends by recorded start, so the due jobs are exactly
        # the prefix with start_time <= now.
        cut = bisect_right(ordered, now, key=lambda j: j.start_time)
        due = ordered[:cut]
        future_min = ordered[cut].start_time if cut < len(ordered) else None
        if not due:
            self._hint_stash = (
                now, frozenset(job.job_id for job in ordered), future_min
            )
            return []
        exact_jobs: list[Job] = []
        flex_jobs: list[Job] = []
        for job in due:
            if job.recorded_nodes and all(
                0 <= nid < resource_manager.total_nodes
                and resource_manager.nodes[nid].state is not NodeState.DOWN
                for nid in job.recorded_nodes
            ):
                exact_jobs.append(job)
            else:
                if job.recorded_nodes:
                    job.metadata["replay_relocated"] = True
                flex_jobs.append(job)

        # Recorded placements claim their nodes first, so a free-node
        # placement in the same tick can never steal them.
        decisions: list[SchedulingDecision] = []
        claimed: set[int] = set()
        for job in exact_jobs:
            feasible = not (claimed & set(job.recorded_nodes)) and all(
                resource_manager.nodes[nid].is_available for nid in job.recorded_nodes
            )
            if not feasible:
                self._delayed.add(job.job_id)
                continue
            claimed.update(job.recorded_nodes)
            decisions.append(
                SchedulingDecision(
                    job,
                    exact_placement=True,
                    start_time=self._start_time(job, now),
                )
            )
        # With no recorded placements to protect this tick, a count ledger
        # suffices and the resource manager picks the nodes (cheap on large
        # systems); otherwise select explicit free nodes around the claims.
        free_counts = _FreeNodeCounts(resource_manager)
        for job in flex_jobs:
            if not claimed:
                if not free_counts.fits(job):
                    self._delayed.add(job.job_id)
                    continue
                free_counts.consume(job)
                decisions.append(
                    SchedulingDecision(job, start_time=self._start_time(job, now))
                )
                continue
            partition = free_counts.partition_key(job)
            free = [
                nid
                for nid in resource_manager.available_node_ids(partition)
                if nid not in claimed
            ]
            if len(free) < job.nodes_required:
                self._delayed.add(job.job_id)
                continue
            chosen = tuple(free[: job.nodes_required])
            claimed.update(chosen)
            decisions.append(
                SchedulingDecision(
                    job, node_ids=chosen, start_time=self._start_time(job, now)
                )
            )
        started_ids = {decision.job.job_id for decision in decisions}
        self._hint_stash = (
            now,
            frozenset(
                job.job_id for job in ordered if job.job_id not in started_ids
            ),
            future_min,
        )
        return decisions

    def _start_time(self, job: Job, now: float) -> float:
        """Recorded start when on time; the current tick when delayed."""
        if job.job_id in self._delayed:
            job.metadata["replay_delayed"] = True
            return now
        return job.start_time

    @hot_path
    def next_event_hint(self, queue: Sequence[Job], now: float) -> float | None:
        """The earliest backdated (recorded) start still ahead of ``now``.

        Queued jobs whose recorded start lies in the future are pure timer
        events; jobs already due can only have been left in the queue
        because their placement failed this tick (they are in
        ``_delayed``), and a failed placement can only succeed after a
        release — which the engine tracks as an event of its own. A due
        job that has *not* been attempted yet (``schedule`` not called)
        vetoes coalescing.

        When :meth:`schedule` already ran at this ``now`` on this exact
        residual queue (the engine's calling order), its stashed
        future-start minimum answers without re-sorting or re-checking
        dueness; any job it started since was due, so the stash cannot
        have gone stale. Any other caller — schedule skipped, its
        decisions dropped, a different queue — fails the id match and
        falls back to the O(queue) scan.
        """
        if not queue:
            return None
        if self._hint_stash is not None:
            stash_now, expected_ids, future_min = self._hint_stash
            if (
                stash_now == now
                and len(queue) == len(expected_ids)
                # Id-set membership test, O(queue) by construction: the
                # stash is only valid for this exact residual queue.
                and all(job.job_id in expected_ids for job in queue)  # repro-lint: disable=hot-path
            ):
                # Every due job was either started (left the queue) or
                # recorded in _delayed by the schedule() call that filled
                # the stash, so the veto case cannot arise here.
                self.hint_stash_hits += 1
                return future_min
        hint: float | None = None
        # Stash miss: the O(queue) fallback scan the stash exists to avoid.
        for job in queue:  # repro-lint: disable=hot-path
            if job.start_time > now:
                hint = job.start_time if hint is None else min(hint, job.start_time)
            elif job.job_id not in self._delayed:
                return now
        return hint


class FCFSScheduler(Scheduler):
    """Strict first-come-first-served.

    Jobs start in submission order; the first job that does not fit blocks
    everything behind it (no backfilling). This is the baseline rescheduling
    policy of the paper's Sec. 4.2 comparison.
    """

    name = "fcfs"

    def schedule(
        self, queue: Sequence[Job], resource_manager: ResourceManager, now: float
    ) -> list[SchedulingDecision]:
        decisions: list[SchedulingDecision] = []
        free_counts = _FreeNodeCounts(resource_manager)
        for job in queue:
            if not free_counts.fits(job):
                break
            free_counts.consume(job)
            decisions.append(SchedulingDecision(job))
        return decisions

    @hot_path
    def next_event_hint(self, queue: Sequence[Job], now: float) -> float | None:
        """FCFS never acts spontaneously.

        Whether the queue head fits depends only on the free-node counts,
        which change exclusively on releases (and the queue itself only on
        submissions) — both tracked by the engine as events. Blocked now
        means blocked until the next event, so coalescing is always safe.
        """
        return None


class BackfillScheduler(Scheduler):
    """EASY backfill against wall-time limits.

    FCFS until the queue head does not fit; then a *shadow time* is computed
    — the earliest time the head can start, assuming running jobs end at
    ``sim_start + requested_runtime`` — and later queued jobs are started out
    of order iff they fit now and either (a) are expected to finish before
    the shadow time, or (b) use only nodes that are spare even once the
    head's reservation is carved out at the shadow time. Expected runtimes
    come from :attr:`Job.requested_runtime` (the wall-time limit when the
    dataset has one), so an overrun-prone limit distribution degrades
    backfill quality exactly as it does on a real system.
    """

    name = "backfill"

    def __init__(self) -> None:
        #: Memoized "nothing startable" key: (resource-manager epoch, queue
        #: job ids). The full EASY pass is O(queue × occupants); with
        #: breakpoint-bounded coalescing the engine steps on every profile
        #: breakpoint, and re-running that pass each power-only step would
        #: dominate busy traces. A no-op decision is a pure function of the
        #: free-node inventory (changes only with the epoch) and the queue
        #: composition: the only ``now``-dependent test,
        #: ``now + requested_runtime <= shadow_time``, can flip true→false
        #: but never false→true as ``now`` advances, so a declined queue
        #: stays declined until the next allocation, release or submission.
        self._noop_key: tuple[int, tuple[int, ...]] | None = None
        #: Observability counters (published as ``sched_*_total`` metrics).
        self.reservations_computed = 0
        self.reservations_indexed = 0
        self.noop_memo_hits = 0

    def reset(self) -> None:
        self._noop_key = None
        self.reservations_computed = 0
        self.reservations_indexed = 0
        self.noop_memo_hits = 0

    def observability_counters(self) -> dict[str, int]:
        return {
            "backfill_reservations": self.reservations_computed,
            "backfill_reservations_indexed": self.reservations_indexed,
            "backfill_noop_memo_hits": self.noop_memo_hits,
        }

    def schedule(
        self, queue: Sequence[Job], resource_manager: ResourceManager, now: float
    ) -> list[SchedulingDecision]:
        key = (resource_manager.epoch, tuple(job.job_id for job in queue))
        if key == self._noop_key:
            self.noop_memo_hits += 1
            return []
        decisions = self._schedule(queue, resource_manager, now)
        self._noop_key = None if decisions else key
        return decisions

    def _schedule(
        self, queue: Sequence[Job], resource_manager: ResourceManager, now: float
    ) -> list[SchedulingDecision]:
        decisions: list[SchedulingDecision] = []
        free_counts = _FreeNodeCounts(resource_manager)
        #: (expected end, job, registered partition) of jobs started this tick.
        started: list[tuple[float, Job, str | None]] = []

        # Phase 1 — plain FCFS prefix. An index cursor over the engine's
        # live queue: no per-call list copy, no O(queue) pop(0) shuffles.
        index = 0
        count = len(queue)
        while index < count:
            job = queue[index]
            if not free_counts.fits(job):
                break
            index += 1
            free_counts.consume(job)
            started.append((now + job.requested_runtime, job, free_counts.partition_key(job)))
            decisions.append(SchedulingDecision(job))

        if index == count:
            return decisions

        # Phase 2 — reservation for the blocked head, against the node pool
        # the head actually draws from (its partition, when registered).
        head = queue[index]
        index += 1
        head_key = free_counts.partition_key(head)
        shadow_time, spare_nodes = self._reserve(
            head, head_key, free_counts, resource_manager, started, now
        )

        # Phase 3 — backfill behind the reservation.
        for position in range(index, count):
            job = queue[position]
            if not free_counts.fits(job):
                continue
            job_key = free_counts.partition_key(job)
            # A job confined to a different registered partition can never
            # occupy the head's reserved nodes, so it backfills freely.
            independent = (
                head_key is not None and job_key is not None and job_key != head_key
            )
            ends_before_shadow = now + job.requested_runtime <= shadow_time
            constrained = not independent and not ends_before_shadow
            if constrained and job.nodes_required > spare_nodes:
                continue
            free_counts.consume(job)
            if constrained:
                spare_nodes -= job.nodes_required
            decisions.append(SchedulingDecision(job))
        return decisions

    @hot_path
    def next_event_hint(self, queue: Sequence[Job], now: float) -> float | None:
        """EASY backfill never acts spontaneously between events.

        With the running set and the queue frozen, the free-node counts and
        the reservation's ``spare_nodes`` are constant; the only
        now-dependent quantity is the shadow time ``max(now, end_k)``, and
        the backfill condition ``now + requested_runtime <= shadow_time``
        can only flip from true to false as ``now`` advances (or stays
        constant in the overrun case ``shadow == now``). A job declined
        this tick therefore stays declined until the next submission or
        release, so coalescing is always safe.
        """
        return None

    def _reserve(
        self,
        head: Job,
        head_key: str | None,
        free_counts: "_FreeNodeCounts",
        resource_manager: ResourceManager,
        started: list[tuple[float, Job, str | None]],
        now: float,
    ) -> tuple[float, int]:
        """Shadow reservation for the blocked head: ``(shadow_time, spare)``.

        When the head draws from the whole node pool (no registered
        partition, or a partition spanning every node — every single-
        partition system), each occupant's overlap with the head's pool is
        simply its full node count, so the walk can consume the resource
        manager's expected-release index directly: occupants arrive in
        ``(expected end, nodes)`` order — the exact order the historical
        ``sorted(occupants)`` produced (ties beyond that are
        indistinguishable to the arithmetic) — merged with this tick's own
        starts, and the walk stops as soon as the head fits. That replaces
        the per-call O(running set) occupant scan with its per-node overlap
        loop and the O(R log R) sort. Heads confined to a proper partition
        (and the ``vectorized=False`` baseline) take the historical scan,
        which computes identical reservations.
        """
        self.reservations_computed += 1
        free_now = free_counts.free_in(head_key)
        whole_pool = head_key is None
        if not whole_pool:
            node_range = resource_manager.system.partition_node_range(head_key)
            whole_pool = (
                node_range.start == 0
                and node_range.stop == resource_manager.total_nodes
            )
        if self.vectorized and whole_pool:
            self.reservations_indexed += 1
            started_entries = sorted(
                (end, job.nodes_required, job.job_id) for end, job, _ in started
            )
            available = free_now
            for end, nodes, _ in heapq.merge(
                resource_manager.expected_release_entries(), started_entries
            ):
                available += nodes
                if available >= head.nodes_required:
                    # Overrun convention as in _reservation: a stale
                    # expected end never shadows before the current tick.
                    return max(now, end), available - head.nodes_required
            return float("inf"), 0
        occupants = self._occupants(resource_manager, started, head_key, now)
        return self._reservation(head, free_now, occupants, now)

    @staticmethod
    def _occupants(
        resource_manager: ResourceManager,
        started: list[tuple[float, Job, str | None]],
        head_key: str | None,
        now: float,
    ) -> list[tuple[float, int]]:
        """(expected end, nodes relevant to the head's pool) of occupying jobs.

        Running jobs contribute their actual node overlap with the head's
        partition; jobs decided earlier this tick (no placement yet)
        contribute their full request when they draw from the head's pool.
        """
        if head_key is None:
            node_range = None
        else:
            node_range = resource_manager.system.partition_node_range(head_key)
        occupants: list[tuple[float, int]] = []
        for job in resource_manager.running_jobs:
            start = job.sim_start_time if job.sim_start_time is not None else now
            if node_range is None:
                overlap = job.nodes_required
            else:
                overlap = sum(
                    1
                    for nid in job.assigned_nodes
                    if node_range.start <= nid < node_range.stop
                )
            if overlap:
                occupants.append((start + job.requested_runtime, overlap))
        for end, job, job_key in started:
            if head_key is None or job_key is None or job_key == head_key:
                occupants.append((end, job.nodes_required))
        return occupants

    @staticmethod
    def _reservation(
        head: Job,
        free_now: int,
        occupants: list[tuple[float, int]],
        now: float,
    ) -> tuple[float, int]:
        """Return ``(shadow_time, spare_nodes)`` for the blocked head job.

        ``shadow_time`` is when enough nodes have been freed (by expected
        end times) for the head to start; ``spare_nodes`` is how many nodes
        remain free at that moment beyond the head's reservation — the
        budget available to backfill jobs that outlive the shadow time.
        """
        available = free_now
        for end, nodes in sorted(occupants):
            available += nodes
            if available >= head.nodes_required:
                # A job that overran its wall-time limit has an expected end
                # in the past; assume it ends imminently (the usual EASY
                # convention), never before the current tick.
                return max(now, end), available - head.nodes_required
        # Head can never fit by this estimate (should have been dismissed
        # at submission); reserve nothing rather than crash.
        return float("inf"), 0


class _FreeNodeCounts:
    """Per-partition free-node ledger a policy debits as it decides.

    The resource manager's availability only changes when the engine
    executes decisions, so a policy emitting several decisions in one tick
    must do its own bookkeeping to avoid overcommitting. Jobs naming an
    unregistered partition are placed from the whole node pool, so their
    consumption is debited against *every* named ledger (conservative: a
    later same-tick decision may be deferred to the next tick, but can
    never overcommit).
    """

    def __init__(self, resource_manager: ResourceManager) -> None:
        self._rm = resource_manager
        self._free: dict[str | None, int] = {None: resource_manager.free_node_count()}
        #: Nodes consumed pool-wide (unregistered-partition jobs); already
        #: materialized named ledgers are debited directly, ones
        #: materialized later subtract this debt from the fresh RM count.
        self._pool_debt = 0

    @property
    def total_free(self) -> int:
        return self._free[None]

    def partition_key(self, job: Job) -> str | None:
        """The job's partition if registered, else ``None`` (whole pool)."""
        if any(p.name == job.partition for p in self._rm.system.partitions):
            return job.partition
        return None

    def free_in(self, key: str | None) -> int:
        """Free nodes remaining in one partition (or the whole pool)."""
        if key not in self._free:
            fresh = self._rm.free_node_count(key)
            self._free[key] = max(0, fresh - self._pool_debt)
        return self._free[key]

    def fits(self, job: Job) -> bool:
        if job.nodes_required > self._free[None]:
            return False
        key = self.partition_key(job)
        return key is None or job.nodes_required <= self.free_in(key)

    def consume(self, job: Job) -> None:
        """Debit the ledger for one decision."""
        n = job.nodes_required
        key = self.partition_key(job)
        self._free[None] -= n
        if key is not None:
            self._free[key] = self.free_in(key) - n
        else:
            self._pool_debt += n
            for ledger_key in self._free:
                if ledger_key is not None:
                    self._free[ledger_key] = max(0, self._free[ledger_key] - n)


class PowerCapScheduler(Scheduler):
    """Power-capping wrapper: admit a base policy's starts under a cap.

    Composes over any base policy (replay/FCFS/backfill): the base proposes
    start decisions as usual and the wrapper greedily admits them, in
    order, while the *projected* IT power stays under the active
    ``power_cap_kw`` from :class:`~repro.power.signals.OperatingSignals`.
    Projected power is the system's idle floor (every node's minimum draw)
    plus, per admitted job, its peak incremental draw over the idle
    baseline of the nodes it occupies. The per-job peak is conservative,
    so a run under a *constant* cap can never record compute power above
    the cap (``cap_violation_kwh`` stays zero). Demand-response windows
    that drop the cap below already-committed load — or below the idle
    floor itself — can still record violations: capping holds *future*
    starts, it does not checkpoint running jobs.

    Jobs whose incremental draw can never fit under any present-or-future
    cap are dismissed with a reason (``dismiss_infeasible=True``, the
    default) instead of deadlocking an FCFS queue head forever; held jobs
    simply stay queued and are re-proposed by the base policy next tick.
    """

    def __init__(
        self,
        base: Scheduler,
        signals: OperatingSignals,
        *,
        dismiss_infeasible: bool = True,
    ) -> None:
        self.base = base
        self.signals = signals
        self.dismiss_infeasible = dismiss_infeasible
        self.name = f"power_cap({base.name})"
        self._power_model: SystemPowerModel | None = None
        self._idle_floor_kw = 0.0
        #: Peak incremental draw per job id (jobs are immutable, so the
        #: grid evaluation in job_peak_power_w runs once per job).
        self._incr_kw_cache: dict[int, float] = {}
        #: Incremental draw committed per admitted job still running,
        #: purged against the resource manager's running set on each
        #: allocation epoch change.
        self._committed_kw: dict[int, float] = {}
        self._committed_total_kw = 0.0
        self._epoch = -1
        self._held = 0
        #: Dismissals produced by the *latest* pass (not yet superseded by
        #: another pass). A dismissal mutates the queue after the base
        #: policy ran, so the base must be re-consulted on the very next
        #: grid tick — see :meth:`next_event_hint`.
        self._dismissed_pass = 0
        self._dismissals: list[tuple[Job, str]] = []
        #: Observability counters (published as ``sched_*_total`` metrics).
        self._holds_total = 0
        self._dismissed_total = 0

    def bind_power_model(self, model: SystemPowerModel) -> None:
        """Attach the run's power model (the engine calls this once)."""
        self._power_model = model
        self._idle_floor_kw = model.idle_floor_kw()

    def reset(self) -> None:
        self.base.reset()
        self._incr_kw_cache.clear()
        self._committed_kw.clear()
        self._committed_total_kw = 0.0
        self._epoch = -1
        self._held = 0
        self._dismissed_pass = 0
        self._dismissals.clear()
        self._holds_total = 0
        self._dismissed_total = 0

    def observability_counters(self) -> dict[str, int]:
        counters = dict(self.base.observability_counters())
        counters["cap_hold_events"] = self._holds_total
        counters["cap_dismissed_jobs"] = self._dismissed_total
        return counters

    def _incr_kw(self, job: Job) -> float:
        """Peak incremental draw of one job over its nodes' idle baseline."""
        cached = self._incr_kw_cache.get(job.job_id)
        if cached is not None:
            return cached
        model = self._power_model
        if model is None:  # pragma: no cover - the engine always binds
            raise SchedulingError(
                "PowerCapScheduler.schedule() called before bind_power_model()"
            )
        peak_w = model.job_peak_power_w(job)
        idle_w = model.node_idle_power_w(job.partition) * job.nodes_required
        incr = max(0.0, watts_to_kilowatts(peak_w - idle_w))
        self._incr_kw_cache[job.job_id] = incr
        return incr

    def schedule(
        self, queue: Sequence[Job], resource_manager: ResourceManager, now: float
    ) -> list[SchedulingDecision]:
        self.base.vectorized = self.vectorized
        self._held = 0
        self._dismissed_pass = 0
        if resource_manager.epoch != self._epoch:
            # Releases only happen across epoch changes, so the committed
            # ledger needs purging exactly then. Recomputing the total from
            # the surviving entries keeps float error from accumulating.
            self._epoch = resource_manager.epoch
            running = resource_manager.running_by_id
            for job_id in [j for j in self._committed_kw if j not in running]:
                del self._committed_kw[job_id]
            self._committed_total_kw = sum(self._committed_kw.values())
        proposals = self.base.schedule(queue, resource_manager, now)
        if not proposals:
            return proposals
        cap_kw = self.signals.cap_at(now)
        budget_kw = cap_kw - self._idle_floor_kw - self._committed_total_kw
        admitted: list[SchedulingDecision] = []
        for decision in proposals:
            job = decision.job
            incr_kw = self._incr_kw(job)
            if incr_kw <= budget_kw:
                admitted.append(decision)
                budget_kw -= incr_kw
                self._committed_kw[job.job_id] = incr_kw
                self._committed_total_kw += incr_kw
                continue
            headroom_kw = self.signals.max_cap_at_or_after(now) - self._idle_floor_kw
            if self.dismiss_infeasible and incr_kw > headroom_kw:
                self._dismissals.append(
                    (
                        job,
                        "power cap infeasible: needs "
                        f"{incr_kw:.3f} kW over the idle floor, best "
                        f"present-or-future headroom {headroom_kw:.3f} kW",
                    )
                )
                self._dismissed_total += 1
                self._dismissed_pass += 1
                continue
            self._held += 1
            self._holds_total += 1
        return admitted

    def drain_dismissals(self) -> list[tuple[Job, str]]:
        drained = self._dismissals
        self._dismissals = []
        return drained

    def held_jobs(self) -> int:
        return self._held

    @hot_path
    def next_event_hint(self, queue: Sequence[Job], now: float) -> float | None:
        """Veto coalescing while any job is held back by the cap.

        A held job's admissibility depends on the active cap *and* on the
        base policy's proposal set, which (for backfill) can change with
        ``now`` alone mid-interval as the shadow-time test ages; dense
        stepping while holding keeps the dense and event-driven schedules
        identical. A pass that *dismissed* jobs vetoes once too: the
        dismissal removes queue entries after the base policy ran, so the
        base's no-op contract (queue and running set frozen between events)
        no longer holds — dismissing a blocked FCFS/backfill head unblocks
        the jobs behind it on the very next grid tick, which a dense run
        acts on immediately. With nothing held and nothing just dismissed,
        the admitted set equals the base's proposals, so the base policy's
        own coalescing contract applies unchanged. Cap *changes* bound
        coalescing globally through the engine's signal breakpoint stream,
        not through this hint.
        """
        if self._held or (self._dismissed_pass and queue):
            return now
        return self.base.next_event_hint(queue, now)


_POLICIES: dict[str, Callable[[], Scheduler]] = {
    ReplayScheduler.name: ReplayScheduler,
    FCFSScheduler.name: FCFSScheduler,
    BackfillScheduler.name: BackfillScheduler,
}


def available_policies() -> tuple[str, ...]:
    """Names of all registered scheduling policies, sorted."""
    return tuple(sorted(_POLICIES))


def get_scheduler(name: str) -> Scheduler:
    """Instantiate a scheduling policy by (case-insensitive) name."""
    key = name.lower()
    if key == "easy":  # common alias for EASY backfill
        key = "backfill"
    if key not in _POLICIES:
        known = ", ".join(available_policies())
        raise SchedulingError(f"unknown scheduling policy {name!r}; known: {known}")
    return _POLICIES[key]()
