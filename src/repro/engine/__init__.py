"""Discrete-time simulation engine.

This package is the piece every component docstring defers to: the loop that
replays or reschedules a telemetry window against the twinned system. It
composes the cluster substrate (:mod:`repro.cluster`), the power path
(:mod:`repro.power`) and the cooling plant (:mod:`repro.cooling`) behind a
pluggable scheduling policy (:mod:`repro.engine.scheduler`) and records the
quantities the paper reports (:mod:`repro.engine.stats`).

The engine advances on a ``SystemConfig.timestep_s`` tick grid; each step it

1. releases jobs whose simulated runtime has elapsed,
2. submits newly-arrived jobs into the scheduler queue,
3. asks the scheduling policy for placement decisions and executes them
   through the resource manager,
4. evaluates the system power model on the running set, steps the cooling
   plant on the resulting heat load, and
5. appends a sample to the statistics collector.

Time advancement is event-driven by default: grid ticks on which provably
nothing can happen (no submission, release, backdated replay start, policy
action or horizon crossing, and constant power) are coalesced into a single
interval-aware sample, which makes idle-heavy multi-week replays run orders
of magnitude faster while leaving every summary metric bit-compatible up to
floating-point associativity. Pass ``dense_ticks=True`` / ``--dense-ticks``
for an exact one-sample-per-tick time series.

Run a simulation from Python with :func:`run_simulation`, or from the shell
with ``repro-sim`` / ``python -m repro.engine``.
"""

from .batch import BatchSimulationEngine, PrebuiltPowerStateAggregator, run_batch
from .engine import SimulationEngine, SimulationResult, parse_duration, run_simulation
from .scheduler import (
    BackfillScheduler,
    FCFSScheduler,
    PowerCapScheduler,
    ReplayScheduler,
    Scheduler,
    SchedulingDecision,
    available_policies,
    get_scheduler,
)
from .stats import StatsCollector, TickSample

__all__ = [
    "BatchSimulationEngine",
    "PrebuiltPowerStateAggregator",
    "run_batch",
    "SimulationEngine",
    "SimulationResult",
    "run_simulation",
    "parse_duration",
    "Scheduler",
    "SchedulingDecision",
    "ReplayScheduler",
    "FCFSScheduler",
    "BackfillScheduler",
    "PowerCapScheduler",
    "available_policies",
    "get_scheduler",
    "StatsCollector",
    "TickSample",
]
