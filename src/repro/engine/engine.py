"""The discrete-time simulation engine.

:class:`SimulationEngine` advances a copy of the workload through the coupled
scheduler → resource-manager → power → cooling pipeline on a fixed
``SystemConfig.timestep_s`` tick grid. Releases are processed before
submissions and scheduling within a tick, which resolves the paper's
same-timestep end/start collision on a node; replay decisions may backdate a
job's start to its recorded (possibly off-grid) start time so the simulated
schedule matches the telemetry exactly.

Time advancement is *event-driven* by default: when nothing can change
before the next event — no pending submission, no running-job end, no
backdated replay start, no horizon, no profile breakpoint on the running
set, and a scheduling policy that declares itself quiescent via
:meth:`Scheduler.next_event_hint` — the engine jumps straight to the grid
tick that first processes the next event, recording one aggregated
:class:`~repro.engine.stats.TickSample` whose ``dt_s`` spans the coalesced
interval. A running job with a piecewise-constant profile does not force
dense ticking: it merely bounds the interval by its next profile *value
change* (:meth:`Job.next_power_change_after`; repeated equal samples are
not breakpoints), so busy telemetry-replay traces coalesce almost as well
as idle ones. Because power and cooling overhead are constant over such an
interval (the cooling loops relax exponentially towards a constant target,
which composes exactly across substeps), every summary metric is identical
to a dense tick-by-tick run up to floating-point associativity. Pass
``dense_ticks=True`` (CLI: ``--dense-ticks``) to force one sample per grid
tick when an exact per-tick time series is needed.

:func:`run_simulation` is the one-call entry point used by the CLI, the
benchmark harness and the quick-start example: it resolves the system
configuration, synthesises (or accepts) a workload, picks a policy and runs
the engine to completion.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from time import perf_counter_ns

from ..cluster import NodeState, ResourceManager
from ..config import SystemConfig, get_system_config
from ..cooling import CoolingPlant
from ..devtools import hot_path
from ..exceptions import AllocationError, SchedulingError, SimulationError
from ..obs import Observability
from ..obs.metrics import Histogram
from ..power import RunningSetPowerAggregator, SystemPowerModel
from ..power.signals import OperatingSignals
from ..telemetry.job import Job, JobState
from ..units import parse_duration as _parse_duration_s
from ..workloads import SyntheticWorkloadGenerator, WorkloadSpec, default_workload_spec
from .scheduler import BackfillScheduler, PowerCapScheduler, Scheduler, get_scheduler
from .stats import StatsCollector

#: Engine phases the span tracer times (one span per phase per step).
ENGINE_PHASES = ("schedule", "coalesce", "power", "cooling", "stats")

__all__ = [
    "SimulationEngine",
    "SimulationResult",
    "resolve_policy_name",
    "run_simulation",
    "parse_duration",
]


def parse_duration(value: str | float | int) -> float:
    """Parse a duration to positive seconds.

    Delegates to :func:`repro.units.parse_duration` (plain numbers, suffixed
    strings such as ``"90m"``/``"24h"``, Slurm clock strings such as
    ``"1:30:00"``) and additionally rejects non-positive values, which make
    no sense as a simulation window or horizon.
    """
    seconds = float(_parse_duration_s(value))
    if seconds <= 0:
        raise SimulationError(f"duration must be positive, got {value!r}")
    return seconds


@dataclass
class SimulationResult:
    """Everything a finished run produced."""

    system: SystemConfig
    policy: str
    stats: StatsCollector
    jobs: list[Job] = field(repr=False)
    start_time_s: float = 0.0
    end_time_s: float = 0.0
    seed: int = 0

    def summary(self) -> dict[str, float]:
        """Shortcut for ``result.stats.summary()``."""
        return self.stats.summary()

    @property
    def completed_jobs(self) -> list[Job]:
        return [j for j in self.jobs if j.state is JobState.COMPLETED]

    @property
    def dismissed_jobs(self) -> list[Job]:
        return [j for j in self.jobs if j.state is JobState.DISMISSED]


class SimulationEngine:
    """Discrete-time engine coupling scheduling, power and cooling.

    Parameters
    ----------
    system:
        The system configuration (also fixes the tick length).
    jobs:
        The workload. Each job is copied via :meth:`Job.copy_for_simulation`
        so the caller's list is never mutated and the same workload can
        drive several runs.
    scheduler:
        Policy instance or registry name; defaults to the system's
        ``default_policy``.
    seed:
        Seed forwarded to the resource manager's down-node draw.
    horizon_s:
        Optional hard stop (relative to the first tick). Jobs still pending
        or queued at the horizon are dismissed; jobs still on nodes are
        truncated at exactly ``start + horizon_s`` (not the next tick
        boundary), so no runtime or energy past the horizon is credited.
    dense_ticks:
        Force one statistics sample per ``timestep_s`` grid tick instead of
        coalescing event-free intervals. Summary metrics are identical
        either way; dense mode exists for consumers of the exact per-tick
        time series.
    event_index:
        When true (the default) the per-step release check and the
        coalescing event bound come from heaps — the resource manager's
        lazy-deletion end-time heap and the power aggregator's breakpoint
        heap — making an event-free step ``O(log R)`` in the running-set
        size ``R``. ``False`` restores the ``O(R)`` scans (identical
        results, job by job and tick by tick); the flag exists for the
        frontier-scale benchmark's scan-vs-heap comparison and as a
        differential-testing aid.
    vectorized:
        When true (the default) the per-*event* hot paths are batched and
        indexed: jobs starting in the same power refresh get their cached
        power states built in one vectorised pass (one node-power-model
        evaluation per refresh, not per job), running-set membership
        changes are consumed from the resource manager's allocate/release
        journal in O(changes), EASY backfill reads its shadow reservation
        from the expected-release index, and replay memoizes its queue
        ordering. ``False`` restores the per-job construction and per-call
        scans (summaries identical up to float association, gated at 1e-9
        in CI); the flag exists for the batched-vs-per-job benchmark
        comparison and as a differential-testing aid, exactly like
        ``event_index``.
    obs:
        Optional :class:`~repro.obs.Observability` bundle — phase-span
        tracer, metrics registry, structured event log and/or progress
        reporter (each individually optional). With the default ``None``
        the engine runs the uninstrumented hot path: one ``is None``
        attribute check per phase per step, gated by the benchmark
        harness's wall-time record. See :mod:`repro.obs`.
    power_model:
        Optional pre-built :class:`~repro.power.SystemPowerModel` to use
        instead of constructing one. The model is stateless over a run, so
        the batch engine (:mod:`repro.engine.batch`) shares one instance —
        node models, loss model and all — across every replica of a Monte
        Carlo batch.
    """

    def __init__(
        self,
        system: SystemConfig,
        jobs: list[Job],
        scheduler: Scheduler | str | None = None,
        *,
        seed: int = 0,
        horizon_s: float | None = None,
        dense_ticks: bool = False,
        event_index: bool = True,
        vectorized: bool = True,
        signals: OperatingSignals | None = None,
        obs: Observability | None = None,
        power_model: SystemPowerModel | None = None,
    ) -> None:
        self.system = system
        self.signals = signals
        if isinstance(scheduler, Scheduler):
            self.scheduler = scheduler
        else:
            self.scheduler = get_scheduler(scheduler or system.default_policy)
        if (
            signals is not None
            and signals.has_cap
            and not isinstance(self.scheduler, PowerCapScheduler)
        ):
            # A finite cap anywhere in the signals means power-aware
            # operation: wrap the chosen policy so its starts are admitted
            # against the active cap. Price/carbon-only signals leave the
            # policy untouched — they only weight the stats integrals.
            self.scheduler = PowerCapScheduler(self.scheduler, signals)
        self.scheduler.reset()
        self.scheduler.vectorized = vectorized
        self.resource_manager = ResourceManager(system, seed=seed)
        # The power model is stateless over a run, so batched Monte Carlo
        # replicas of the same system inject one shared instance (sharing
        # the node models and loss model); ``None`` builds a private one.
        self.power_model = (
            power_model if power_model is not None else SystemPowerModel(system)
        )
        #: Incremental system-power evaluation over the running set: per-job
        #: contributions are pre-evaluated on each profile's change-point
        #: grid at job start — batched across every job starting in the same
        #: refresh (one NodePowerModel evaluation per refresh, not per job)
        #: — and refreshed only on membership changes (consumed from the
        #: resource manager's allocate/release journal, O(changes)) and
        #: breakpoint crossings — never rescanned per step.
        self.power_aggregator = RunningSetPowerAggregator(
            self.power_model, self.resource_manager, batch_states=vectorized
        )
        if isinstance(self.scheduler, PowerCapScheduler):
            self.scheduler.bind_power_model(self.power_model)
        self.cooling_plant = (
            CoolingPlant(system.cooling) if system.cooling is not None else None
        )
        self.stats = StatsCollector()
        self.seed = seed
        self.horizon_s = horizon_s
        self.dense_ticks = dense_ticks
        self.event_index = event_index
        self.vectorized = vectorized
        self.resource_manager.scan_completions = not event_index

        # Observability: unpack the bundle into per-instrument attributes so
        # the disabled path is a single ``is None`` check per phase. The
        # per-phase wall histograms exist only when both tracer and metrics
        # are on (the tracer is the timing source).
        self.obs = obs
        self._tracer = obs.tracer if obs is not None else None
        self._metrics = obs.metrics if obs is not None else None
        self._events = obs.events if obs is not None else None
        self._progress = obs.progress if obs is not None else None
        self._metrics_published = False
        self._queue_gauge = (
            self._metrics.gauge(
                "engine_queue_depth", "jobs waiting in the scheduler queue"
            )
            if self._metrics is not None
            else None
        )
        self._phase_hists: dict[str, Histogram] | None = None
        if self._tracer is not None and self._metrics is not None:
            self._phase_hists = {
                name: self._metrics.histogram(
                    f"engine_phase_{name}_us", f"wall time of the {name} phase, µs"
                )
                for name in ENGINE_PHASES
            }

        self.jobs = [job.copy_for_simulation() for job in jobs]
        self._pending: deque[Job] = deque(
            sorted(self.jobs, key=lambda j: (j.submit_time, j.job_id))
        )
        self._queue: list[Job] = []
        # Capacity is fixed after the down-node draw; precompute it so the
        # per-submission feasibility check is O(1) instead of an inventory scan.
        rm = self.resource_manager
        self._in_service_nodes = rm.total_nodes - rm.down_nodes
        self._partition_capacity = {
            partition.name: sum(
                1
                for nid in system.partition_node_range(partition.name)
                if rm.nodes[nid].state is not NodeState.DOWN
            )
            for partition in system.partitions
        }

        timestep = float(system.timestep_s)
        if self._pending:
            first_submit = self._pending[0].submit_time
            self.now = timestep * (first_submit // timestep)
        else:
            self.now = 0.0
        self._start_time = self.now
        # Loop guard: even a fully serialised (one-job-at-a-time) schedule
        # fits inside the sum of runtimes after the last job has become
        # startable. "Startable" must use the recorded start times, not just
        # submit times — replay legitimately idles until each recorded start.
        # Jobs run for their recorded duration even past the wall-time limit
        # (SWF traces routinely contain run_time > requested_time), hence
        # the max() over the two runtime notions.
        latest_due = max(
            (max(j.submit_time, j.start_time) for j in self.jobs), default=0.0
        )
        worst_case_s = (
            (latest_due - self.now)
            + sum(max(j.requested_runtime, j.duration) for j in self.jobs)
            + timestep
        )
        if signals is not None:
            # A demand-response window can hold every queued job until the
            # cap lifts, pushing the serialised schedule past the job-only
            # worst case by at most the span of the signal definition.
            worst_case_s += signals.last_change_s
        self._max_ticks = int(worst_case_s / timestep) + 1000

    # -- state queries ---------------------------------------------------------

    @property
    def queued_jobs(self) -> list[Job]:
        """The current scheduler queue (submission order)."""
        return list(self._queue)

    @property
    def finished(self) -> bool:
        """True once every job has completed or been dismissed."""
        return not self._pending and not self._queue and not self.resource_manager.running_jobs

    # -- engine loop -----------------------------------------------------------

    def step(self) -> None:
        """Advance one step: release, submit, schedule, power, cooling, stats.

        A step normally covers one ``timestep_s`` tick; in event-driven mode
        (the default) it may cover many grid ticks at once when nothing can
        change before the next event — see :meth:`_coalesced_dt`.

        When a span tracer is configured the step is carved into the
        :data:`ENGINE_PHASES` spans — ``schedule`` (releases, submissions
        and policy decisions), ``coalesce``, ``power``, ``cooling`` and
        ``stats``; with no tracer the only instrumentation residue is one
        ``is None`` check per phase.
        """
        now = self.now
        timestep = float(self.system.timestep_s)
        tracer = self._tracer
        events = self._events
        t0 = perf_counter_ns() if tracer is not None else 0

        # (1) Release jobs whose simulated runtime has elapsed.
        for job in self.resource_manager.complete_finished_jobs(now):
            self.stats.record_job(job)
            if events is not None:
                events.job_finished(job, now, energy_kwh=self._job_energy_kwh(job))

        # (2) Submit newly-arrived jobs (at their recorded submit times).
        while self._pending and self._pending[0].submit_time <= now:
            job = self._pending.popleft()
            if self._impossible(job):
                job.mark_dismissed()
                job.metadata["dismiss_reason"] = "request exceeds system capacity"
                self.stats.record_job(job)
                if events is not None:
                    events.job_dismissed(job, now)
                continue
            job.mark_queued(job.submit_time)
            self._queue.append(job)
            if events is not None:
                events.job_submitted(job, now)

        # (3) Scheduling decisions, executed through the resource manager.
        # The queue is handed over as-is (policies treat it read-only);
        # copying it into a tuple per step would cost O(queue) even on
        # steps where the policy is memoized to a no-op.
        if self._queue:
            decisions = self.scheduler.schedule(
                self._queue, self.resource_manager, now
            )
            started: set[int] = set()
            for decision in decisions:
                job = decision.job
                if job.state is not JobState.QUEUED or job.job_id in started:
                    raise SchedulingError(
                        f"policy {self.scheduler.name!r} scheduled job "
                        f"{job.job_id} which is not queued"
                    )
                start = decision.start_time if decision.start_time is not None else now
                try:
                    self.resource_manager.allocate(
                        job,
                        start,
                        node_ids=decision.node_ids,
                        exact_placement=decision.exact_placement,
                    )
                except AllocationError as exc:
                    raise SchedulingError(
                        f"policy {self.scheduler.name!r} produced an invalid "
                        f"placement at t={now:.0f}: {exc}"
                    ) from exc
                started.add(job.job_id)
                if events is not None:
                    events.job_started(job, now)
            # Jobs a power-capped policy rejected outright (they can never
            # fit under any present-or-future cap) leave the queue here,
            # exactly like capacity-infeasible submissions.
            dismissed = self.scheduler.drain_dismissals()
            for job, reason in dismissed:
                job.mark_dismissed()
                job.metadata["dismiss_reason"] = reason
                self.stats.record_job(job)
                if events is not None:
                    events.job_dismissed(job, now, reason)
            if started or dismissed:
                removed = started | {job.job_id for job, _ in dismissed}
                self._queue = [j for j in self._queue if j.job_id not in removed]
        if tracer is not None:
            t0 = self._mark("schedule", t0)

        # (3b) Event-driven coalescing: how much simulated time this sample
        # stands for. Stays one tick in dense mode or whenever anything can
        # change before the next event. Only the running-set *size* is
        # needed from here on — materialising (and sorting) the job list
        # every step would reintroduce an O(R log R) pass.
        running_count = len(self.resource_manager.running_by_id)
        if self.dense_ticks:
            dt_s = timestep
        else:
            dt_s = self._coalesced_dt(now, timestep)
        # A sample never extends past the horizon: the run is cut there, so
        # integrating energy (or stepping the cooling plant) over the rest
        # of the tick would credit time the window never contained. Applies
        # identically in dense and event-driven mode, keeping them equal.
        if self.horizon_s is not None:
            horizon_end = self._start_time + self.horizon_s
            if now < horizon_end < now + dt_s:
                dt_s = horizon_end - now
        if tracer is not None:
            t0 = self._mark("coalesce", t0)

        # (4) Power on the running set, (5) cooling on the resulting heat.
        # Node counts come from the resource manager's O(1) counters and the
        # (immutable after the seed draw) down count; the power aggregator
        # reuses cached per-job contributions, so the power evaluation of an
        # event-free step is O(1) — profile lookups and model evaluations
        # never rescan the running set. With the default event index the
        # release check and event bounds are heap-backed too, so an
        # event-free step is O(log R) end to end.
        allocated = self.resource_manager.allocated_nodes
        down = self.resource_manager.down_nodes
        power = self.power_aggregator.sample(
            now, allocated_nodes=allocated, down_nodes=down
        )
        if tracer is not None:
            t0 = self._mark("power", t0)
        cooling = None
        if self.cooling_plant is not None:
            cooling = self.cooling_plant.step(
                now, power.compute_power_kw, power.loss_kw, dt_s
            )
            if tracer is not None:
                t0 = self._mark("cooling", t0)

        # (6) Statistics. Operating-signal values are piecewise constant and
        # every coalesced interval is bounded by the signals' change points
        # (see _coalesced_dt), so sampling them at ``now`` is exact over dt_s.
        if self.signals is not None:
            power_cap_kw, price_per_kwh, carbon_kg_per_kwh = self.signals.values_at(now)
        else:
            power_cap_kw, price_per_kwh, carbon_kg_per_kwh = math.inf, 0.0, 0.0
        self.stats.record_tick(
            now,
            dt_s,
            power,
            cooling,
            utilization=(
                allocated / self._in_service_nodes if self._in_service_nodes else 0.0
            ),
            running_jobs=running_count,
            queued_jobs=len(self._queue),
            price_per_kwh=price_per_kwh,
            carbon_kg_per_kwh=carbon_kg_per_kwh,
            power_cap_kw=power_cap_kw,
            cap_held_jobs=self.scheduler.held_jobs() if self._queue else 0,
        )
        if tracer is not None:
            self._mark("stats", t0)
        if self._queue_gauge is not None:
            self._queue_gauge.set(float(len(self._queue)))
        self.now = now + dt_s

    def run(self) -> SimulationResult:
        """Run to completion (all jobs finished, or the horizon reached)."""
        events = self._events
        progress = self._progress
        run_t0 = perf_counter_ns() if self._tracer is not None else 0
        if events is not None:
            events.milestone(
                "run_started",
                self._start_time,
                system=self.system.name,
                policy=self.scheduler.name,
                jobs=len(self.jobs),
                seed=self.seed,
                horizon_s=self.horizon_s,
            )
        if progress is not None:
            progress.start()
        ticks = 0
        while not self.finished:
            if self.horizon_s is not None and self.now - self._start_time >= self.horizon_s:
                if events is not None:
                    events.milestone("horizon_reached", self.now)
                self._dismiss_remaining("simulation horizon reached")
                # Jobs still on nodes are truncated at the horizon so every
                # job ends the run completed or dismissed (their partial
                # node-hours and waits stay in the statistics). The release
                # time is the horizon itself, not ``self.now``: the clock
                # sits on the first tick boundary at or past the horizon,
                # which for a non-grid-aligned horizon would credit runtime
                # and node-hours the window never contained. A job whose
                # natural end falls inside that final partial tick ends at
                # its own end time and is not flagged as truncated.
                horizon_end = self._start_time + self.horizon_s
                for job in self.resource_manager.running_jobs:
                    start = (
                        job.sim_start_time if job.sim_start_time is not None else self.now
                    )
                    natural_end = start + job.duration
                    end = min(self.now, horizon_end, natural_end)
                    if end < natural_end:
                        job.metadata["truncated_by_horizon"] = True
                    self.resource_manager.release(job, end)
                    self.stats.record_job(job)
                    if events is not None:
                        events.job_finished(
                            job, end, energy_kwh=self._job_energy_kwh(job)
                        )
                break
            if ticks >= self._max_ticks:
                raise SimulationError(
                    f"engine exceeded {self._max_ticks} ticks without draining "
                    f"the workload (policy {self.scheduler.name!r} stuck?)"
                )
            self.step()
            ticks += 1
            if progress is not None and progress.due():
                progress.report(self)
        result = SimulationResult(
            system=self.system,
            policy=self.scheduler.name,
            stats=self.stats,
            jobs=self.jobs,
            start_time_s=self._start_time,
            end_time_s=self.now,
            seed=self.seed,
        )
        if self.obs is not None:
            self._finalize_obs(result, run_t0)
        return result

    # -- event-driven time advancement -----------------------------------------

    @hot_path
    def _coalesced_dt(self, now: float, timestep: float) -> float:
        """Simulated time the current sample may stand for (a tick multiple).

        The engine may jump over grid ticks on which a dense run would
        provably do nothing: no release (all running ends lie at or past the
        next event), no submission (first pending submit likewise), no
        policy action (the scheduler's :meth:`~Scheduler.next_event_hint`
        either vetoes, names a future time, or declares itself quiescent)
        and no horizon crossing. A running job with a time-varying profile
        does not veto coalescing — it bounds the interval by its next
        profile *value change* (repeated equal samples are not
        breakpoints), since every skipped grid tick up to that point
        provably samples the same power as the recorded one.

        The running-set bounds are O(log R): the earliest job end comes from
        the resource manager's end-time heap
        (:meth:`~repro.cluster.ResourceManager.next_job_end`) and the
        earliest profile breakpoint from the power aggregator's change heap
        (:meth:`~repro.power.RunningSetPowerAggregator.next_breakpoint_after`)
        — both maintain the exact per-job times the per-job scan used to
        re-derive, so the chosen interval is float-identical. With
        ``event_index=False`` the historical O(R) scan computes the same
        bounds job by job (the benchmark's comparison baseline).

        Returns ``k * timestep`` where ``now + k * timestep`` is the first
        grid tick that processes the next event — exactly the tick a dense
        run would next act on (including the tick that first sees a profile
        breakpoint, which may itself lie off-grid for replay-backdated
        starts).
        """
        hint = self.scheduler.next_event_hint(self._queue, now)
        if hint is not None and hint <= now:
            return timestep
        events: list[float] = []
        if hint is not None:
            events.append(hint)
        if self.signals is not None:
            # Signal steps are breakpoints of their own: the cap gates
            # admission and the price/carbon/cap values weight the stats
            # integrals, so a sample must never straddle a change point.
            signal_change = self.signals.next_change_after(now)
            if signal_change is not None:
                events.append(signal_change)
        if self._pending:
            events.append(self._pending[0].submit_time)
        if self.event_index:
            next_end = self.resource_manager.next_job_end()
            if next_end is not None:
                events.append(next_end)
            next_change = self.power_aggregator.next_breakpoint_after(now)
            if next_change is not None:
                events.append(next_change)
        else:
            # event_index=False: the historical O(R) per-job scan, kept
            # as the equivalence-gate baseline.
            for job in self.resource_manager.running_by_id.values():  # repro-lint: disable=hot-path
                start = job.sim_start_time if job.sim_start_time is not None else now
                events.append(start + job.duration)
                next_change = job.next_power_change_after(now)
                if next_change is not None:
                    events.append(next_change)
        if not events:
            # Nothing queued, pending or running: this is the final sample
            # and the run ends at the next tick — jumping to a far-away
            # horizon here would pad the record with idle time a dense run
            # never integrates.
            return timestep
        if self.horizon_s is not None:
            events.append(self._start_time + self.horizon_s)
        t_next = min(events)
        k = int(math.ceil((t_next - now) / timestep))
        # Guard against float overshoot: every skipped grid tick must fall
        # strictly before the next event, or a dense run would have acted
        # on it first. (Undershoot is harmless — it merely records an extra
        # identical sample.)
        while k > 1 and now + (k - 1) * timestep >= t_next:
            k -= 1
        return max(1, k) * timestep

    # -- helpers ---------------------------------------------------------------

    def _impossible(self, job: Job) -> bool:
        """Whether the job's request can never be satisfied on this system."""
        if job.nodes_required > self._in_service_nodes:
            return True
        partition_capacity = self._partition_capacity.get(job.partition)
        return partition_capacity is not None and job.nodes_required > partition_capacity

    def _dismiss_remaining(self, reason: str) -> None:
        """Dismiss everything not yet running when the run is cut short."""
        events = self._events
        for job in list(self._pending) + self._queue:
            job.mark_dismissed()
            job.metadata["dismiss_reason"] = reason
            self.stats.record_job(job)
            if events is not None:
                events.job_dismissed(job, self.now, reason)
        self._pending.clear()
        self._queue.clear()

    # -- observability ---------------------------------------------------------

    def _mark(self, name: str, t0_ns: int) -> int:
        """Close one phase span (and feed its wall histogram when kept)."""
        assert self._tracer is not None  # callers gate every phase on the tracer
        end_ns = self._tracer.add(name, t0_ns)
        hists = self._phase_hists
        if hists is not None:
            hists[name].observe((end_ns - t0_ns) / 1e3)
        return end_ns

    def _job_energy_kwh(self, job: Job) -> float:
        """Energy attribution for one finished job's event record, kWh.

        Integrates the job's recorded power trace (or the component model
        over its utilization profiles) across its *recorded* duration —
        for horizon-truncated jobs this is the recorded-schedule estimate,
        not the truncated-sim share.
        """
        return self.power_model.job_energy_j(job) / 3.6e6

    def _finalize_obs(self, result: SimulationResult, run_t0_ns: int) -> None:
        """Close the run span, publish metrics, emit the final events."""
        if self._tracer is not None:
            self._tracer.add("run", run_t0_ns)
        if self._metrics is not None and not self._metrics_published:
            self._metrics_published = True
            self._publish_metrics()
        if self._events is not None:
            summary = result.summary()
            self._events.milestone(
                "run_finished",
                self.now,
                jobs_completed=int(summary["jobs_completed"]),
                jobs_dismissed=int(summary["jobs_dismissed"]),
                steps=int(summary["ticks"]),
                simulated_s=summary["simulated_s"],
                total_energy_kwh=summary["total_energy_kwh"],
                mean_pue=summary["mean_pue"],
            )
        if self._progress is not None:
            self._progress.report(self, final=True)

    def _publish_metrics(self) -> None:
        """Publish the components' plain-int counters into the registry.

        Components (resource manager, power aggregator, scheduler, stats
        collector) never touch the registry on the hot path — they keep
        cheap integer attributes which are folded in here, once per run.
        """
        metrics = self._metrics
        assert metrics is not None  # _finalize_obs gates on self._metrics
        stats = self.stats
        steps = len(stats.ticks)
        timestep = float(self.system.timestep_s)
        metrics.counter(
            "engine_steps_total", "engine steps (recorded samples)"
        ).inc(steps)
        grid_ticks = int(round(stats.elapsed_s / timestep)) if timestep else 0
        metrics.counter(
            "engine_grid_ticks_coalesced_total",
            "grid ticks skipped by event-driven coalescing",
        ).inc(max(0, grid_ticks - steps))
        metrics.counter(
            "engine_jobs_completed_total", "jobs that ran to completion"
        ).inc(len(stats.completed_jobs))
        metrics.counter(
            "engine_jobs_dismissed_total", "jobs dismissed (infeasible/horizon)"
        ).inc(len(stats.dismissed_jobs))
        metrics.gauge("engine_sim_time_s", "simulated span covered").set(
            self.now - self._start_time
        )
        if steps:
            metrics.gauge(
                "engine_running_jobs_peak", "maximum concurrently running jobs"
            ).set(float(stats.column("running_jobs").max()))
        for name, value in self.resource_manager.observability_counters().items():
            metrics.counter(f"rm_{name}_total").inc(value)
        for name, value in self.power_aggregator.observability_counters().items():
            metrics.counter(f"power_{name}_total").inc(value)
        for name, value in self.scheduler.observability_counters().items():
            metrics.counter(f"sched_{name}_total").inc(value)
        metrics.counter(
            "stats_column_growths_total", "columnar store reallocations"
        ).inc(stats.column_growths)
        if self._events is not None:
            metrics.counter(
                "events_emitted_total", "structured run events emitted"
            ).inc(self._events.events_emitted)


def resolve_policy_name(
    policy: str | Scheduler, backfill: str | None
) -> str | Scheduler:
    """Apply the ``backfill=`` convenience switch to a policy selection.

    ``"easy"`` (and friends) upgrades an ``fcfs``/``backfill`` name to EASY
    backfill; anything else is rejected. Shared by :func:`run_simulation`
    and :func:`repro.sweep.run_request` so the shim and the serialisable
    path can never drift in what they accept.
    """
    if backfill is None:
        return policy
    if str(backfill).lower() not in ("easy", "on", "true", "1"):
        raise SchedulingError(f"unknown backfill mode {backfill!r}; use 'easy'")
    if isinstance(policy, Scheduler):
        if not isinstance(policy, BackfillScheduler):
            raise SchedulingError(
                f"backfill={backfill!r} is incompatible with the "
                f"{policy.name!r} scheduler instance"
            )
        return policy
    if policy in ("fcfs", "backfill"):
        return "backfill"
    raise SchedulingError(
        f"backfill={backfill!r} is incompatible with policy {policy!r}"
    )


def run_simulation(
    system: SystemConfig | str = "tiny",
    *,
    policy: str | Scheduler | None = None,
    backfill: str | None = None,
    duration: str | float = "24h",
    seed: int = 0,
    workload: list[Job] | None = None,
    spec: WorkloadSpec | None = None,
    horizon: str | float | None = None,
    dense_ticks: bool = False,
    signals: OperatingSignals | None = None,
    obs: Observability | None = None,
) -> SimulationResult:
    """Run one end-to-end simulation and return its result.

    Back-compat shim: a call whose arguments are fully serialisable —
    ``system`` given as a registry name, ``policy`` as a name (or absent)
    and no explicit ``workload`` list — is packed into a
    :class:`~repro.sweep.RunRequest` and executed through
    :func:`~repro.sweep.run_request`, the single path sweep workers and
    the CLI also use. Calls holding live objects (an ad-hoc
    :class:`SystemConfig`, a :class:`Scheduler` instance, a job list) keep
    the historical direct path below — they cannot cross a process
    boundary.

    Parameters
    ----------
    system:
        Registered system name (``"tiny"``, ``"frontier"``, ...) or a
        :class:`SystemConfig`.
    policy:
        Scheduling policy name (``replay`` / ``fcfs`` / ``backfill``) or a
        :class:`Scheduler` instance; defaults to the system's default.
    backfill:
        Convenience switch: ``"easy"`` upgrades an ``fcfs`` (or default)
        policy to EASY backfill.
    duration:
        Length of the synthesised workload window (``"6h"``, ``"24h"``,
        seconds). Ignored when ``workload`` is given.
    seed:
        Workload-generation and down-node seed; fixes the whole run.
    workload:
        Explicit job list (e.g. from :func:`repro.telemetry.read_swf`);
        bypasses the synthetic generator.
    spec:
        Workload specification for the synthetic generator.
    horizon:
        Optional hard stop for the engine (same formats as ``duration``).
    dense_ticks:
        Force one statistics sample per grid tick instead of event-driven
        coalescing. Summary metrics are identical either way.
    signals:
        Optional :class:`~repro.power.signals.OperatingSignals` — power
        cap, electricity price and carbon intensity step series. A finite
        cap wraps the policy in a
        :class:`~repro.engine.scheduler.PowerCapScheduler`.
    obs:
        Optional :class:`~repro.obs.Observability` bundle (tracer,
        metrics, event log, progress reporter); ``None`` (the default)
        runs fully uninstrumented.
    """
    if (
        workload is None
        and isinstance(system, str)
        and (policy is None or isinstance(policy, str))
    ):
        # Serialisable call: route through the one RunRequest execution
        # path. Imported lazily — repro.sweep imports this module, so a
        # top-level import here would be a cycle.
        from ..sweep.request import RunRequest, run_request

        return run_request(
            RunRequest(
                system=system,
                policy=policy,
                backfill=backfill,
                duration_s=parse_duration(duration),
                seed=seed,
                spec=spec,
                horizon_s=parse_duration(horizon) if horizon is not None else None,
                dense_ticks=dense_ticks,
                signals=signals,
            ),
            obs=obs,
        )
    config = system if isinstance(system, SystemConfig) else get_system_config(system)
    if workload is None:
        if spec is None:
            spec = default_workload_spec(config)
        generator = SyntheticWorkloadGenerator(config, spec, seed=seed)
        workload = generator.generate(parse_duration(duration))
    policy_name = resolve_policy_name(
        policy if policy is not None else config.default_policy, backfill
    )
    engine = SimulationEngine(
        config,
        workload,
        policy_name,
        seed=seed,
        horizon_s=parse_duration(horizon) if horizon is not None else None,
        dense_ticks=dense_ticks,
        signals=signals,
        obs=obs,
    )
    return engine.run()
