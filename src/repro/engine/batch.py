"""Batch-of-simulations Monte Carlo kernel: vectorise across runs.

A Monte Carlo study runs the *same* system under N seed (or variant)
replicas of a workload. Run serially, every replica re-derives state that
is identical across the batch — the :class:`~repro.config.SystemConfig`,
the :class:`~repro.power.SystemPowerModel` (node models + loss model), the
workload generator's post-processing — and then pays the fully general
per-step code (dataclass samples, ``np``-scalar loss curves, cooling-state
objects) for bookkeeping whose *outputs* are three floats per tick.

:class:`BatchSimulationEngine` executes N replicas in one process:

- **one shared instance pool** — one ``SystemConfig`` and one
  ``SystemPowerModel`` serve every replica (the model is stateless over a
  run; see the ``power_model`` kwarg of
  :class:`~repro.engine.engine.SimulationEngine`);
- **batched workload generation** —
  :meth:`~repro.workloads.SyntheticWorkloadGenerator.generate_batch`
  produces all replicas' job lists with shared rng-free post-processing,
  bit-identical to per-seed :meth:`generate` calls;
- **one rank-space power-state pass** — the piecewise-constant power grids
  of *every replica's* jobs are prebuilt in a single
  :func:`~repro.power.system_power.build_power_states` call (one union
  grid, one node-power-model evaluation for the whole batch);
  :class:`PrebuiltPowerStateAggregator` then serves each replica's job
  starts from that pool;
- **a shared event loop** — replicas advance through one min-heap over
  their next event times; a replica with no event at ``now`` costs a heap
  pop/push, nothing else;
- **columnar per-replica stats** — each replica records through
  :meth:`~repro.engine.stats.StatsCollector.record_tick_scalars` into its
  own columnar arena, keeping the O(1) summaries of the serial path.

Per-replica semantics are strictly isolated: every replica owns its
scheduler, resource manager, queue, stats and cooling state, and the lean
step mirrors :meth:`SimulationEngine.step` operation for operation —
including float association order — so batched and serial summaries agree
within 1e-9 for every policy, with and without operating-signal caps (the
CI bench gate and the hypothesis property suite enforce exactly that).
The only numeric daylight is the loss-curve exponential (``math.exp`` vs
``np.exp``, ≤ 1 ulp): losses are pure outputs — scheduler and power-cap
decisions never read a sampled loss — so the difference cannot flip a
discrete decision, and the summary drift stays ~1e-15 relative.

:func:`run_batch` is the :func:`~repro.sweep.run_request`-shaped entry
point the sweep driver's ``batch_size`` fast path and the benchmark
harness use: one :class:`~repro.sweep.RunRequest` plus a seed list, one
:class:`~repro.engine.SimulationResult` per seed.
"""

from __future__ import annotations

import heapq
import math
from typing import TYPE_CHECKING, Sequence

import numpy as np

from ..cluster import ResourceManager
from ..config import SystemConfig, get_system_config
from ..cooling import CoolingPlant
from ..cooling.cdu import WATER_CP
from ..exceptions import AllocationError, SchedulingError, SimulationError
from ..obs.progress import ProgressReporter
from ..power import RunningSetPowerAggregator, SystemPowerModel
from ..power.losses import ConversionLossModel
from ..power.signals import OperatingSignals
from ..power.system_power import _JobPowerState, build_power_states
from ..telemetry.job import Job, JobState
from ..workloads import default_workload_spec
from ..workloads.synthetic import SyntheticWorkloadGenerator
from .engine import SimulationEngine, SimulationResult, resolve_policy_name

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sweep.request import RunRequest

__all__ = [
    "BatchSimulationEngine",
    "PrebuiltPowerStateAggregator",
    "run_batch",
]

#: Grid arrays of one prebuilt job power state:
#: (times, power_w, cpu_weighted, gpu_weighted).
_GridPool = dict[int, tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]]


class PrebuiltPowerStateAggregator(RunningSetPowerAggregator):
    """A running-set power aggregator fed from a prebuilt grid pool.

    The batch engine evaluates every replica's job power grids in one
    rank-space :func:`~repro.power.system_power.build_power_states` pass up
    front (grids depend only on the job's profiles and node count, not on
    when it starts). This subclass overrides the
    :meth:`~repro.power.RunningSetPowerAggregator._build_states` seam to
    serve job starts from that pool: constructing a
    :class:`~repro.power.system_power._JobPowerState` from pooled arrays
    runs ``__init__`` — which derives ``start`` from the job's (now known)
    ``sim_start_time`` and positions the cursor via ``advance_to`` — so the
    resulting state is bit-identical to one built at start time. Jobs
    absent from the pool (never for batch-generated workloads; a safety
    valve for exotic callers) fall back to the superclass builder for the
    whole group, preserving the accumulation order of the totals.
    """

    def __init__(
        self,
        model: SystemPowerModel,
        resource_manager: ResourceManager,
        pool: _GridPool,
    ) -> None:
        super().__init__(model, resource_manager, batch_states=True)
        self._pool = pool
        #: Job starts served from the prebuilt pool (plain int, folded into
        #: the metrics registry at run finalisation like the other counters).
        self.prebuilt_hits = 0

    def _build_states(
        self, started_jobs: list[Job], now: float
    ) -> list[_JobPowerState]:
        pool = self._pool
        states: list[_JobPowerState] = []
        for job in started_jobs:
            grids = pool.get(job.job_id)
            if grids is None:
                # All-or-nothing fallback keeps the totals' accumulation
                # order identical to a serial run (states in start order).
                return super()._build_states(started_jobs, now)
            states.append(
                _JobPowerState(job, grids[0], grids[1], grids[2], grids[3], now)
            )
        self.prebuilt_hits += len(states)
        return states

    def observability_counters(self) -> dict[str, int]:
        counters = super().observability_counters()
        return {
            **counters,
            "prebuilt_state_hits": self.prebuilt_hits,
        }


class _LeanLosses:
    """Scalar fast path of :class:`~repro.power.losses.ConversionLossModel`.

    Same IEEE operations as :meth:`ConversionLossModel.evaluate` — the load
    clamp, the two saturating efficiency stages, the per-stage input
    back-calculation and the left-associated loss total — but on plain
    floats with ``math.exp`` instead of ``np`` scalars and a
    :class:`LossBreakdown` allocation per step. ``math.exp`` and ``np.exp``
    agree to ≤ 1 ulp; losses are pure outputs (no scheduling decision reads
    them), so the batched-vs-serial drift from this substitution stays far
    below the 1e-9 gates.
    """

    __slots__ = (
        "peak_compute_power_kw",
        "sivoc_idle",
        "sivoc_peak",
        "rect_idle",
        "rect_peak",
        "switchgear_fraction",
    )

    def __init__(self, model: ConversionLossModel) -> None:
        config = model.config
        self.peak_compute_power_kw = model.peak_compute_power_kw
        self.sivoc_idle = config.sivoc_efficiency_idle
        self.sivoc_peak = config.sivoc_efficiency_peak
        self.rect_idle = config.rectifier_efficiency_idle
        self.rect_peak = config.rectifier_efficiency_peak
        self.switchgear_fraction = config.switchgear_loss_fraction

    def total_loss_kw(self, compute_power_kw: float) -> float:
        """``evaluate(compute_power_kw).total_loss_kw`` without the boxing."""
        if compute_power_kw < 0.0:
            compute_power_kw = 0.0
        load = compute_power_kw / self.peak_compute_power_kw
        if load > 1.5:  # np.clip(load, 0.0, 1.5); load >= 0 already
            load = 1.5
        decay = math.exp(-8.0 * load)
        sivoc_eff = self.sivoc_peak - (self.sivoc_peak - self.sivoc_idle) * decay
        sivoc_input = compute_power_kw / sivoc_eff
        rect_eff = self.rect_peak - (self.rect_peak - self.rect_idle) * decay
        rect_input = sivoc_input / rect_eff
        return (
            (sivoc_input - compute_power_kw) + (rect_input - sivoc_input)
        ) + rect_input * self.switchgear_fraction


class _LeanCooling:
    """Scalar fast path of :meth:`~repro.cooling.CoolingPlant.step`.

    Advances the *same* CDU / tower objects of one replica's plant with the
    exact arithmetic of the object-based path — the sequential per-CDU heat
    accumulation, the ``pow(2.718281828459045, ...)`` first-order lags, the
    ``(pump + fan) + crac`` cooling total and the PUE branches — but
    returns the two floats the stats need instead of building
    ``CDUState``/``CoolingTowerState``/``CoolingPlantState`` objects each
    step. The plant's ``last_state`` convenience cache is not maintained on
    this path (it feeds no statistic); temperatures still evolve on the
    plant's own objects, so inspecting a replica's plant after a batch run
    matches a serial run.
    """

    __slots__ = (
        "cdus",
        "tower",
        "air_cooled_fraction",
        "crac_cop",
        "pump_fraction",
        "fan_fraction",
        "cdu_supply_c",
        "cdu_flow_heat_capacity",
        "cdu_tau_s",
        "cdu_effectiveness",
        "facility_supply_c",
        "ambient_wet_bulb_c",
        "tower_approach_c",
        "tower_range_coefficient",
        "tower_flow_heat_capacity",
        "tower_tau_s",
    )

    def __init__(self, plant: CoolingPlant) -> None:
        config = plant.config
        self.cdus = plant.cdus
        self.tower = plant.tower
        self.air_cooled_fraction = config.air_cooled_fraction
        self.crac_cop = config.crac_cop
        self.pump_fraction = config.pump_power_fraction
        self.fan_fraction = config.fan_power_fraction
        self.facility_supply_c = config.facility_supply_temperature_c
        self.ambient_wet_bulb_c = config.ambient_wet_bulb_c
        self.tower_approach_c = config.tower_approach_c
        self.tower_range_coefficient = config.tower_range_coefficient
        if self.cdus:
            # CoolingPlant builds homogeneous CDUs (same config, same
            # effectiveness), so the steady-state target and lag constant
            # are hoisted out of the per-CDU loop.
            cdu = self.cdus[0]
            self.cdu_supply_c = config.supply_temperature_c
            self.cdu_flow_heat_capacity = cdu.flow_kg_per_s * WATER_CP
            self.cdu_tau_s = cdu.thermal_mass_j_per_k / self.cdu_flow_heat_capacity
            self.cdu_effectiveness = cdu.effectiveness
        tower = self.tower
        self.tower_flow_heat_capacity = tower.flow_kg_per_s * WATER_CP
        self.tower_tau_s = tower.thermal_mass_j_per_k / self.tower_flow_heat_capacity

    def step(
        self, it_power_kw: float, loss_power_kw: float, dt_s: float
    ) -> tuple[float, float]:
        """One plant step; returns ``(cooling_power_kw, pue)``."""
        if it_power_kw < 0.0:
            it_power_kw = 0.0
        if loss_power_kw < 0.0:
            loss_power_kw = 0.0
        total_heat_kw = it_power_kw + loss_power_kw
        liquid_heat_kw = total_heat_kw * (1.0 - self.air_cooled_fraction)
        air_heat_kw = total_heat_kw * self.air_cooled_fraction

        heat_to_facility_kw = 0.0
        cdus = self.cdus
        if cdus:
            per_cdu_heat_kw = liquid_heat_kw / len(cdus)
            if per_cdu_heat_kw < 0.0:
                per_cdu_heat_kw = 0.0
            target_c = self.cdu_supply_c + (per_cdu_heat_kw * 1000.0) / (
                self.cdu_flow_heat_capacity
            )
            tau_s = self.cdu_tau_s
            alpha = 1.0 - pow(2.718281828459045, -dt_s / tau_s) if tau_s > 0 else 1.0
            transfer_kw = self.cdu_effectiveness * per_cdu_heat_kw
            for cdu in cdus:
                cdu._return_temperature_c += alpha * (
                    target_c - cdu._return_temperature_c
                )
                cdu._heat_load_kw = per_cdu_heat_kw
                heat_to_facility_kw += transfer_kw

        crac_power_kw = air_heat_kw / self.crac_cop if air_heat_kw > 0 else 0.0
        facility_heat_kw = heat_to_facility_kw + air_heat_kw + crac_power_kw

        if facility_heat_kw < 0.0:
            facility_heat_kw = 0.0
        supply_target_c = max(
            self.facility_supply_c,
            self.ambient_wet_bulb_c
            + (
                self.tower_approach_c
                + self.tower_range_coefficient * facility_heat_kw * 1000.0
            ),
        )
        tau_s = self.tower_tau_s
        alpha = 1.0 - pow(2.718281828459045, -dt_s / tau_s) if tau_s > 0 else 1.0
        return_target_c = supply_target_c + (facility_heat_kw * 1000.0) / (
            self.tower_flow_heat_capacity
        )
        tower = self.tower
        tower._supply_temperature_c += alpha * (
            supply_target_c - tower._supply_temperature_c
        )
        tower._return_temperature_c += alpha * (
            return_target_c - tower._return_temperature_c
        )
        tower._heat_rejected_kw = facility_heat_kw
        fan_power_kw = self.fan_fraction * facility_heat_kw
        tower._fan_power_kw = fan_power_kw

        pump_power_kw = self.pump_fraction * total_heat_kw
        cooling_power_kw = pump_power_kw + fan_power_kw + crac_power_kw
        overhead_kw = loss_power_kw + cooling_power_kw
        if it_power_kw > 0:
            pue = (it_power_kw + overhead_kw) / it_power_kw
        elif overhead_kw > 0:
            pue = math.inf
        else:
            pue = 1.0
        return cooling_power_kw, pue


class _ReplicaContext:
    """Per-replica constants the lean step reads without attribute chains."""

    __slots__ = (
        "timestep_s",
        "partitions",
        "total_nodes",
        "down_nodes",
        "in_service_nodes",
        "losses",
        "cooling",
    )

    def __init__(self, engine: SimulationEngine, losses: _LeanLosses) -> None:
        system = engine.system
        self.timestep_s = float(system.timestep_s)
        self.partitions = tuple(
            (partition.node_count, partition.node_power.min_w)
            for partition in system.partitions
        )
        self.total_nodes = system.total_nodes
        # Down nodes are fixed after the resource manager's seed draw.
        self.down_nodes = engine.resource_manager.down_nodes
        self.in_service_nodes = engine._in_service_nodes
        self.losses = losses
        self.cooling = (
            _LeanCooling(engine.cooling_plant)
            if engine.cooling_plant is not None
            else None
        )


def _lean_step(engine: SimulationEngine, ctx: _ReplicaContext) -> None:
    """One engine step without instrumentation residue or sample boxing.

    Operation-for-operation mirror of :meth:`SimulationEngine.step` with
    ``obs=None``: identical release/submit/schedule phases (same scheduler,
    resource manager and queue code — *decisions* run the very same
    bytecode as a serial run), then phases 4–6 composed from scalars — the
    aggregator's running totals, :class:`_LeanLosses`,
    :class:`_LeanCooling` and
    :meth:`~repro.engine.stats.StatsCollector.record_tick_scalars` — with
    the serial path's exact float association at every reduction.
    """
    now = engine.now
    rm = engine.resource_manager
    stats = engine.stats

    # (1) Release jobs whose simulated runtime has elapsed.
    for job in rm.complete_finished_jobs(now):
        stats.record_job(job)

    # (2) Submit newly-arrived jobs.
    pending = engine._pending
    while pending and pending[0].submit_time <= now:
        job = pending.popleft()
        if engine._impossible(job):
            job.mark_dismissed()
            job.metadata["dismiss_reason"] = "request exceeds system capacity"
            stats.record_job(job)
            continue
        job.mark_queued(job.submit_time)
        engine._queue.append(job)

    # (3) Scheduling decisions, executed through the resource manager.
    if engine._queue:
        scheduler = engine.scheduler
        decisions = scheduler.schedule(engine._queue, rm, now)
        started: set[int] = set()
        for decision in decisions:
            job = decision.job
            if job.state is not JobState.QUEUED or job.job_id in started:
                raise SchedulingError(
                    f"policy {scheduler.name!r} scheduled job "
                    f"{job.job_id} which is not queued"
                )
            start = decision.start_time if decision.start_time is not None else now
            try:
                rm.allocate(
                    job,
                    start,
                    node_ids=decision.node_ids,
                    exact_placement=decision.exact_placement,
                )
            except AllocationError as exc:
                raise SchedulingError(
                    f"policy {scheduler.name!r} produced an invalid "
                    f"placement at t={now:.0f}: {exc}"
                ) from exc
            started.add(job.job_id)
        dismissed = scheduler.drain_dismissals()
        for job, reason in dismissed:
            job.mark_dismissed()
            job.metadata["dismiss_reason"] = reason
            stats.record_job(job)
        if started or dismissed:
            removed = started | {job.job_id for job, _ in dismissed}
            engine._queue = [j for j in engine._queue if j.job_id not in removed]

    # (3b) Event-driven coalescing (shared with the serial path: the
    # interval choice must be float-identical).
    running_count = len(rm.running_by_id)
    timestep_s = ctx.timestep_s
    if engine.dense_ticks:
        dt_s = timestep_s
    else:
        dt_s = engine._coalesced_dt(now, timestep_s)
    if engine.horizon_s is not None:
        horizon_end = engine._start_time + engine.horizon_s
        if now < horizon_end < now + dt_s:
            dt_s = horizon_end - now

    # (4) Power: refresh the aggregator's cached totals, then compose the
    # sample inline — including compose_sample's two distinct associations:
    # losses are evaluated on (job_w + idle_w) / 1000.0 while the recorded
    # compute power is job_w / 1000.0 + idle_w / 1000.0 (the property sum).
    aggregator = engine.power_aggregator
    aggregator._refresh(now)
    allocated = rm.allocated_nodes
    idle_nodes = ctx.total_nodes - allocated - ctx.down_nodes
    if idle_nodes < 0:
        idle_nodes = 0
    idle_power_w = 0.0
    remaining_idle = idle_nodes
    busy_remaining = allocated
    for node_count, min_w in ctx.partitions:
        busy_here = min(busy_remaining, node_count)
        busy_remaining -= busy_here
        idle_here = min(remaining_idle, node_count - busy_here)
        remaining_idle -= idle_here
        idle_power_w += idle_here * min_w
    job_power_w = aggregator._job_power_w
    loss_kw = ctx.losses.total_loss_kw((job_power_w + idle_power_w) / 1000.0)
    compute_power_kw = job_power_w / 1000.0 + idle_power_w / 1000.0
    nodes_busy = aggregator._nodes_busy
    if nodes_busy:
        mean_cpu_util = aggregator._cpu_weighted / nodes_busy
        mean_gpu_util = aggregator._gpu_weighted / nodes_busy
    else:
        mean_cpu_util = 0.0
        mean_gpu_util = 0.0

    # (5) Cooling on the resulting heat (PUE branches mirror record_tick's).
    cooling = ctx.cooling
    if cooling is not None:
        cooling_kw, pue = cooling.step(compute_power_kw, loss_kw, dt_s)
    else:
        cooling_kw = 0.0
        facility_kw = (compute_power_kw + loss_kw) + cooling_kw
        if compute_power_kw > 0:
            pue = facility_kw / compute_power_kw
        elif facility_kw > 0:
            pue = math.inf
        else:
            pue = 1.0

    # (6) Statistics on the signal values at ``now`` (piecewise constant
    # over the coalesced interval by construction).
    if engine.signals is not None:
        power_cap_kw, price_per_kwh, carbon_kg_per_kwh = engine.signals.values_at(now)
    else:
        power_cap_kw, price_per_kwh, carbon_kg_per_kwh = math.inf, 0.0, 0.0
    stats.record_tick_scalars(
        now,
        dt_s,
        compute_power_kw=compute_power_kw,
        loss_kw=loss_kw,
        cooling_kw=cooling_kw,
        pue=pue,
        allocated_nodes=allocated,
        utilization=(
            allocated / ctx.in_service_nodes if ctx.in_service_nodes else 0.0
        ),
        running_jobs=running_count,
        queued_jobs=len(engine._queue),
        mean_cpu_util=mean_cpu_util,
        mean_gpu_util=mean_gpu_util,
        price_per_kwh=price_per_kwh,
        carbon_kg_per_kwh=carbon_kg_per_kwh,
        power_cap_kw=power_cap_kw,
        cap_held_jobs=engine.scheduler.held_jobs() if engine._queue else 0,
    )
    engine.now = now + dt_s


def _finish_at_horizon(engine: SimulationEngine) -> None:
    """Dismiss pending/queued jobs and truncate running ones at the horizon.

    Mirror of the horizon block in :meth:`SimulationEngine.run` (the
    truncation-time reasoning lives there).
    """
    engine._dismiss_remaining("simulation horizon reached")
    assert engine.horizon_s is not None
    horizon_end = engine._start_time + engine.horizon_s
    for job in engine.resource_manager.running_jobs:
        start = job.sim_start_time if job.sim_start_time is not None else engine.now
        natural_end = start + job.duration
        end = min(engine.now, horizon_end, natural_end)
        if end < natural_end:
            job.metadata["truncated_by_horizon"] = True
        engine.resource_manager.release(job, end)
        engine.stats.record_job(job)


def _result_of(engine: SimulationEngine) -> SimulationResult:
    return SimulationResult(
        system=engine.system,
        policy=engine.scheduler.name,
        stats=engine.stats,
        jobs=engine.jobs,
        start_time_s=engine._start_time,
        end_time_s=engine.now,
        seed=engine.seed,
    )


class BatchSimulationEngine:
    """Run N replicas of one system in a single process on a shared loop.

    Parameters
    ----------
    system:
        The shared system configuration (one instance for every replica).
    workloads:
        One job list per replica — typically
        :meth:`~repro.workloads.SyntheticWorkloadGenerator.generate_batch`
        output. Each engine copies its jobs, so lists may be reused.
    scheduler:
        Policy *name* (or ``None`` for the system default). Instances are
        rejected: schedulers are stateful, so each replica constructs its
        own from the registry — sharing one object across replicas would
        break per-replica isolation.
    seeds:
        Per-replica seeds (resource-manager down-node draw and the
        ``seed`` field of each result); defaults to ``range(N)``.
    horizon_s / dense_ticks / event_index / vectorized / signals:
        Forwarded to every replica's engine unchanged. ``signals`` is
        stateless over a run and safely shared.
    power_model:
        Optional pre-built shared model; defaults to one
        :class:`~repro.power.SystemPowerModel` for the whole batch.

    Replica isolation is semantic, not just structural: the batched run of
    replica *i* must produce (within 1e-9 per summary metric; typically
    ~1e-15) the result of a serial
    :class:`~repro.engine.SimulationEngine` run with the same inputs.
    """

    def __init__(
        self,
        system: SystemConfig,
        workloads: Sequence[list[Job]],
        scheduler: str | None = None,
        *,
        seeds: Sequence[int] | None = None,
        horizon_s: float | None = None,
        dense_ticks: bool = False,
        event_index: bool = True,
        vectorized: bool = True,
        signals: OperatingSignals | None = None,
        power_model: SystemPowerModel | None = None,
    ) -> None:
        if scheduler is not None and not isinstance(scheduler, str):
            raise SimulationError(
                "BatchSimulationEngine requires a policy name (schedulers are "
                "stateful; each replica builds its own instance)"
            )
        if seeds is None:
            seeds = range(len(workloads))
        seeds = [int(seed) for seed in seeds]
        if len(seeds) != len(workloads):
            raise SimulationError(
                f"got {len(workloads)} workloads but {len(seeds)} seeds"
            )
        self.system = system
        self.power_model = (
            power_model if power_model is not None else SystemPowerModel(system)
        )
        self.engines = [
            SimulationEngine(
                system,
                workload,
                scheduler,
                seed=seed,
                horizon_s=horizon_s,
                dense_ticks=dense_ticks,
                event_index=event_index,
                vectorized=vectorized,
                signals=signals,
                power_model=self.power_model,
            )
            for workload, seed in zip(workloads, seeds)
        ]

        # One rank-space pass builds the power-state grids of *all*
        # replicas' jobs (grids depend only on profiles and node counts,
        # not start times; the shared model means one model group, hence
        # one vectorised node-power evaluation for the whole batch).
        jobs_models = [
            (job, self.power_model.node_model(job.partition))
            for engine in self.engines
            for job in engine.jobs
        ]
        pool: _GridPool = {
            state.job.job_id: (
                state.times,
                state.power_w,
                state.cpu_weighted,
                state.gpu_weighted,
            )
            for state in build_power_states(jobs_models, 0.0)
        }
        self.shared_state_builds = 1 if jobs_models else 0
        for engine in self.engines:
            engine.power_aggregator = PrebuiltPowerStateAggregator(
                self.power_model, engine.resource_manager, pool
            )

        losses = _LeanLosses(self.power_model.loss_model)
        self._contexts = [_ReplicaContext(engine, losses) for engine in self.engines]
        self.replicas_total = len(self.engines)
        self.replicas_done = 0

    def observability_counters(self) -> dict[str, int]:
        """Batch-level counters (documented in the README metrics glossary)."""
        return {
            "engine_batch_replicas_total": self.replicas_total,
            "engine_batch_prebuilt_state_hits_total": sum(
                engine.power_aggregator.prebuilt_hits  # type: ignore[attr-defined]
                for engine in self.engines
            ),
            "engine_batch_shared_builds_total": self.shared_state_builds,
        }

    def run(
        self, *, progress: Sequence[ProgressReporter | None] | None = None
    ) -> list[SimulationResult]:
        """Run every replica to completion; results in replica order.

        ``progress`` optionally supplies one
        :class:`~repro.obs.ProgressReporter` per replica; each emits its
        replica's heartbeats (tagged with the batch's done/total counts),
        so a batched sweep task still produces per-run beats.

        The shared loop is a min-heap over per-replica clocks: each
        iteration pops the earliest replica, advances it one (possibly
        coalesced) step and pushes it back — a replica with no event at the
        popped time costs one heap round-trip. Heap order never affects
        results (replicas share no mutable state), it only interleaves
        their progress fairly.
        """
        if progress is not None and len(progress) != len(self.engines):
            raise SimulationError(
                f"got {len(self.engines)} replicas but {len(progress)} "
                "progress reporters"
            )
        engines = self.engines
        contexts = self._contexts
        results: list[SimulationResult | None] = [None] * len(engines)
        ticks = [0] * len(engines)
        if progress is not None:
            for reporter in progress:
                if reporter is not None:
                    reporter.start()
        heap = [(engine.now, index) for index, engine in enumerate(engines)]
        heapq.heapify(heap)
        while heap:
            _, index = heapq.heappop(heap)
            engine = engines[index]
            rm = engine.resource_manager
            # finished? (running_by_id check: `engine.finished` sorts the
            # running set, which would cost O(R log R) per visit)
            if not engine._pending and not engine._queue and not rm.running_by_id:
                results[index] = self._finalize(engine, index, progress)
                continue
            if (
                engine.horizon_s is not None
                and engine.now - engine._start_time >= engine.horizon_s
            ):
                _finish_at_horizon(engine)
                results[index] = self._finalize(engine, index, progress)
                continue
            if ticks[index] >= engine._max_ticks:
                raise SimulationError(
                    f"engine exceeded {engine._max_ticks} ticks without "
                    f"draining the workload (policy {engine.scheduler.name!r} "
                    "stuck?)"
                )
            _lean_step(engine, contexts[index])
            ticks[index] += 1
            if progress is not None:
                reporter = progress[index]
                if reporter is not None and reporter.due():
                    reporter.report(
                        engine,
                        replica_index=index,
                        replicas_done=self.replicas_done,
                        replicas_total=self.replicas_total,
                    )
            heapq.heappush(heap, (engine.now, index))
        return [result for result in results if result is not None]

    def _finalize(
        self,
        engine: SimulationEngine,
        index: int,
        progress: Sequence[ProgressReporter | None] | None,
    ) -> SimulationResult:
        self.replicas_done += 1
        if progress is not None:
            reporter = progress[index]
            if reporter is not None:
                reporter.report(
                    engine,
                    final=True,
                    replica_index=index,
                    replicas_done=self.replicas_done,
                    replicas_total=self.replicas_total,
                )
        return _result_of(engine)


def run_batch(
    request: "RunRequest",
    seeds: Sequence[int],
    *,
    progress: Sequence[ProgressReporter | None] | None = None,
) -> list[SimulationResult]:
    """Execute one :class:`~repro.sweep.RunRequest` under N seeds, batched.

    The in-process fast path for Monte Carlo replicas: resolves the system,
    policy and workload spec exactly like :func:`~repro.sweep.run_request`,
    generates every seed's workload in one batched pass and runs all
    replicas on a :class:`BatchSimulationEngine`. ``request.seed`` is
    ignored — each entry of ``seeds`` plays that role for its replica — so
    ``run_batch(request, [a, b])[0]`` must match (within 1e-9 per summary
    metric) ``run_request(replace(request, seed=a))``.
    """
    config = get_system_config(request.system)
    policy = resolve_policy_name(
        request.policy if request.policy is not None else config.default_policy,
        request.backfill,
    )
    if not isinstance(policy, str):  # pragma: no cover - names resolve to names
        raise SimulationError("run_batch requires a policy name")
    spec = request.spec if request.spec is not None else default_workload_spec(config)
    seeds = [int(seed) for seed in seeds]
    generator = SyntheticWorkloadGenerator(
        config, spec, seed=seeds[0] if seeds else 0
    )
    workloads = generator.generate_batch(seeds, request.duration_s)
    engine = BatchSimulationEngine(
        config,
        workloads,
        policy,
        seeds=seeds,
        horizon_s=request.horizon_s,
        dense_ticks=request.dense_ticks,
        event_index=request.event_index,
        vectorized=request.vectorized,
        signals=request.signals,
    )
    return engine.run(progress=progress)
