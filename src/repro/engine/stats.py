"""Simulation statistics: per-tick time series and summary metrics.

The collector is fed once per engine step with the power sample, the cooling
plant state (when the system couples one) and the engine's cluster counters,
plus once per job completion. From these it derives the quantities the paper
reports: total facility energy, mean/maximum PUE, node-hours delivered, mean
queue wait and system utilization. Time series export to CSV and the whole
record (summary + series) to JSON.

Samples are *interval-aware*: each :class:`TickSample` carries the length
``dt_s`` of the interval it stands for, so the event-driven engine can
coalesce an event-free stretch into one sample without changing any energy
or time-weighted metric. The engine guarantees every coalesced sample spans
a stretch over which the sampled state is constant on the tick grid —
coalescing is bounded by profile breakpoints as well as events — so the
constant-over-interval assumption below is exact, not approximate. All
summary invariants hold regardless of how time was discretised:
``total_energy_kwh == Σ facility_power_kw · dt_s / 3600``,
``mean_pue == total_energy_kwh / it_energy_kwh``, ``elapsed_s == Σ dt_s``.

Storage is *columnar*: one preallocated, amortised-doubling array per
:class:`TickSample` field, written row by row — a dense frontier-scale run
holds a handful of numpy arrays instead of millions of Python sample
objects (13 float64/int64 columns ≈ 100 bytes/tick vs. ~1 kB/tick for a
boxed dataclass). The public API is unchanged: :attr:`StatsCollector.ticks`
is a lazy sequence view that materialises a :class:`TickSample` per access,
and every summary metric is maintained incrementally in
:meth:`~StatsCollector.record_tick` / :meth:`~StatsCollector.record_job`,
so ``summary()`` is O(1) rather than a rescan of all ticks and jobs.

PUE at zero IT power is reported as ``float("inf")`` (overhead power with
nothing to attribute it to), never as the flattering 1.0 floor; such ticks
are excluded from :attr:`StatsCollector.max_pue`.
"""

from __future__ import annotations

import csv
import json
import math
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator, Sequence, overload

import numpy as np

from ..cooling.plant import CoolingPlantState
from ..devtools import hot_path
from ..power.system_power import SystemPowerSample
from ..telemetry.job import Job, JobState

__all__ = ["TickSample", "StatsCollector", "json_safe"]


@dataclass(frozen=True)
class TickSample:
    """Flattened record of the coupled models over one sampled interval.

    The sample stands for the half-open interval ``[time_s, time_s + dt_s)``
    with every quantity held constant over it. A dense-tick run has
    ``dt_s == timestep_s`` throughout; the event-driven engine records
    aggregated samples with ``dt_s`` a multiple of the timestep.
    """

    time_s: float
    dt_s: float
    compute_power_kw: float
    loss_power_kw: float
    cooling_power_kw: float
    facility_power_kw: float
    pue: float
    allocated_nodes: int
    utilization: float
    running_jobs: int
    queued_jobs: int
    mean_cpu_util: float
    mean_gpu_util: float

    #: CSV column order (kept in one place for header/row agreement).
    FIELDS = (
        "time_s",
        "dt_s",
        "compute_power_kw",
        "loss_power_kw",
        "cooling_power_kw",
        "facility_power_kw",
        "pue",
        "allocated_nodes",
        "utilization",
        "running_jobs",
        "queued_jobs",
        "mean_cpu_util",
        "mean_gpu_util",
    )

    def row(self) -> list[float]:
        return [getattr(self, name) for name in self.FIELDS]


#: Columns stored as int64 (node/job counts); everything else is float64.
_INT_FIELDS = frozenset({"allocated_nodes", "running_jobs", "queued_jobs"})

#: Initial per-column capacity; growth doubles, so appends are amortised O(1).
_INITIAL_CAPACITY = 512


class _TickSeries(Sequence[TickSample]):
    """Read-only sequence view over the collector's tick columns.

    Materialises a :class:`TickSample` per indexed access or iteration step,
    so consumers keep the historical object API while the storage stays
    columnar. Live view: it always reflects the collector's current length.
    """

    def __init__(self, stats: "StatsCollector") -> None:
        self._stats = stats

    def __len__(self) -> int:
        return self._stats._tick_count

    @overload
    def __getitem__(self, index: int) -> TickSample: ...

    @overload
    def __getitem__(self, index: slice) -> list[TickSample]: ...

    def __getitem__(self, index: int | slice) -> TickSample | list[TickSample]:
        n = self._stats._tick_count
        if isinstance(index, slice):
            return [self._stats._tick_at(i) for i in range(*index.indices(n))]
        if index < 0:
            index += n
        if not 0 <= index < n:
            raise IndexError("tick index out of range")
        return self._stats._tick_at(index)

    def __iter__(self) -> Iterator[TickSample]:
        for index in range(self._stats._tick_count):
            yield self._stats._tick_at(index)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"_TickSeries(n={len(self)})"


class StatsCollector:
    """Accumulates per-tick samples and per-job outcomes for one run."""

    def __init__(self) -> None:
        self.completed_jobs: list[Job] = []
        self.dismissed_jobs: list[Job] = []
        self._columns: dict[str, np.ndarray] = {
            name: np.empty(
                _INITIAL_CAPACITY,
                dtype=np.int64 if name in _INT_FIELDS else np.float64,
            )
            for name in TickSample.FIELDS
        }
        self._tick_count = 0
        self._energy_kwh = 0.0
        self._it_energy_kwh = 0.0
        self._cooling_energy_kwh = 0.0
        self._utilization_weight = 0.0
        self._cpu_util_weight = 0.0
        self._gpu_util_weight = 0.0
        self._time_weight_s = 0.0
        # Power-aware operation metrics: integrals of the operating signals
        # (price / carbon / cap) against the power series, plus job-seconds
        # of cap-induced queue holding. All stay 0.0 on signal-free runs.
        self._energy_cost = 0.0
        self._carbon_kg = 0.0
        self._cap_violation_kwh = 0.0
        self._capped_hold_s = 0.0
        # Incrementally maintained summary metrics (historically recomputed
        # by scanning all ticks/jobs on every property access).
        self._max_pue = 1.0
        self._node_h = 0.0
        self._wait_sum_s = 0.0
        self._wait_count = 0
        self._max_wait_s = 0.0
        self._first_sim_start: float | None = None
        self._last_sim_end: float | None = None
        #: Observability counter: number of column doublings (published as
        #: ``stats_column_growths_total``).
        self.column_growths = 0

    # -- recording ------------------------------------------------------------

    @property
    def ticks(self) -> _TickSeries:
        """The recorded samples as a lazy, read-only sequence view."""
        return _TickSeries(self)

    def _tick_at(self, index: int) -> TickSample:
        columns = self._columns
        return TickSample(
            *(
                int(columns[name][index])
                if name in _INT_FIELDS
                else float(columns[name][index])
                for name in TickSample.FIELDS
            )
        )

    def _grow(self) -> None:
        self.column_growths += 1
        capacity = max(_INITIAL_CAPACITY, 2 * self._tick_count)
        for name, column in self._columns.items():
            grown = np.empty(capacity, dtype=column.dtype)
            grown[: self._tick_count] = column[: self._tick_count]
            self._columns[name] = grown

    @hot_path
    def record_tick(
        self,
        now: float,
        dt_s: float,
        power: SystemPowerSample,
        cooling: CoolingPlantState | None,
        *,
        utilization: float,
        running_jobs: int,
        queued_jobs: int,
        price_per_kwh: float = 0.0,
        carbon_kg_per_kwh: float = 0.0,
        power_cap_kw: float = math.inf,
        cap_held_jobs: int = 0,
    ) -> TickSample:
        """Append one tick worth of coupled-model output.

        ``dt_s`` is the length of the interval the sample stands for; energy
        integrals treat each sample as constant over its interval (left
        Riemann sum on the tick grid). The operating-signal inputs (price,
        carbon intensity, active power cap, jobs held by the capping
        policy) default to the signal-free values, so callers without an
        :class:`~repro.power.OperatingSignals` input are unaffected; the
        engine guarantees every signal value is constant over the interval
        (signal change points bound coalescing), so the cost/carbon/
        violation integrals below are exact, like every other integral
        here.
        """
        cooling_kw = cooling.cooling_power_kw if cooling is not None else 0.0
        facility_kw = power.facility_power_kw + cooling_kw
        if cooling is not None:
            pue = cooling.pue
        elif power.compute_power_kw > 0:
            # No cooling model coupled: PUE floor from conversion losses only.
            pue = facility_kw / power.compute_power_kw
        elif facility_kw > 0:
            # Overhead power with zero IT power: PUE is unbounded, and
            # reporting the 1.0 floor would understate idle overhead.
            pue = float("inf")
        else:
            pue = 1.0
        index = self._tick_count
        columns = self._columns
        if index == len(columns["time_s"]):
            self._grow()
            columns = self._columns
        columns["time_s"][index] = now
        columns["dt_s"][index] = dt_s
        columns["compute_power_kw"][index] = power.compute_power_kw
        columns["loss_power_kw"][index] = power.loss_kw
        columns["cooling_power_kw"][index] = cooling_kw
        columns["facility_power_kw"][index] = facility_kw
        columns["pue"][index] = pue
        columns["allocated_nodes"][index] = power.allocated_nodes
        columns["utilization"][index] = utilization
        columns["running_jobs"][index] = running_jobs
        columns["queued_jobs"][index] = queued_jobs
        columns["mean_cpu_util"][index] = power.mean_cpu_util
        columns["mean_gpu_util"][index] = power.mean_gpu_util
        self._tick_count = index + 1
        hours = dt_s / 3600.0
        self._energy_kwh += facility_kw * hours
        self._it_energy_kwh += power.compute_power_kw * hours
        self._cooling_energy_kwh += cooling_kw * hours
        self._utilization_weight += utilization * dt_s
        # dt-weighted like mean_utilization above: under coalescing a
        # step-weighted average over the per-tick columns would overweight
        # short samples.
        self._cpu_util_weight += power.mean_cpu_util * dt_s
        self._gpu_util_weight += power.mean_gpu_util * dt_s
        self._time_weight_s += dt_s
        self._energy_cost += facility_kw * hours * price_per_kwh
        self._carbon_kg += facility_kw * hours * carbon_kg_per_kwh
        if power.compute_power_kw > power_cap_kw:
            self._cap_violation_kwh += (power.compute_power_kw - power_cap_kw) * hours
        if cap_held_jobs:
            self._capped_hold_s += cap_held_jobs * dt_s
        if power.compute_power_kw > 0 and math.isfinite(pue) and pue > self._max_pue:
            self._max_pue = pue
        # Returned sample built straight from the locals — no column
        # re-reads or per-field dtype dispatch on the engine's hot path.
        return TickSample(
            time_s=now,
            dt_s=dt_s,
            compute_power_kw=power.compute_power_kw,
            loss_power_kw=power.loss_kw,
            cooling_power_kw=cooling_kw,
            facility_power_kw=facility_kw,
            pue=pue,
            allocated_nodes=power.allocated_nodes,
            utilization=utilization,
            running_jobs=running_jobs,
            queued_jobs=queued_jobs,
            mean_cpu_util=power.mean_cpu_util,
            mean_gpu_util=power.mean_gpu_util,
        )

    @hot_path
    def record_tick_scalars(
        self,
        now: float,
        dt_s: float,
        *,
        compute_power_kw: float,
        loss_kw: float,
        cooling_kw: float,
        pue: float,
        allocated_nodes: int,
        utilization: float,
        running_jobs: int,
        queued_jobs: int,
        mean_cpu_util: float,
        mean_gpu_util: float,
        price_per_kwh: float = 0.0,
        carbon_kg_per_kwh: float = 0.0,
        power_cap_kw: float = math.inf,
        cap_held_jobs: int = 0,
    ) -> None:
        """:meth:`record_tick` on pre-composed scalars (batch-engine path).

        Byte-for-byte the same column writes and accumulator updates as
        :meth:`record_tick` — ``facility_kw`` is derived here with the exact
        association ``(compute + loss) + cooling`` the sample-based path
        uses — but without requiring the caller to box its scalars into a
        :class:`SystemPowerSample`/:class:`CoolingPlantState` pair first.
        The batch engine's lean step keeps everything scalar; equality of
        the two recorders is enforced by the batched-vs-serial 1e-9 gates.
        """
        facility_kw = (compute_power_kw + loss_kw) + cooling_kw
        index = self._tick_count
        columns = self._columns
        if index == len(columns["time_s"]):
            self._grow()
            columns = self._columns
        columns["time_s"][index] = now
        columns["dt_s"][index] = dt_s
        columns["compute_power_kw"][index] = compute_power_kw
        columns["loss_power_kw"][index] = loss_kw
        columns["cooling_power_kw"][index] = cooling_kw
        columns["facility_power_kw"][index] = facility_kw
        columns["pue"][index] = pue
        columns["allocated_nodes"][index] = allocated_nodes
        columns["utilization"][index] = utilization
        columns["running_jobs"][index] = running_jobs
        columns["queued_jobs"][index] = queued_jobs
        columns["mean_cpu_util"][index] = mean_cpu_util
        columns["mean_gpu_util"][index] = mean_gpu_util
        self._tick_count = index + 1
        hours = dt_s / 3600.0
        self._energy_kwh += facility_kw * hours
        self._it_energy_kwh += compute_power_kw * hours
        self._cooling_energy_kwh += cooling_kw * hours
        self._utilization_weight += utilization * dt_s
        self._cpu_util_weight += mean_cpu_util * dt_s
        self._gpu_util_weight += mean_gpu_util * dt_s
        self._time_weight_s += dt_s
        self._energy_cost += facility_kw * hours * price_per_kwh
        self._carbon_kg += facility_kw * hours * carbon_kg_per_kwh
        if compute_power_kw > power_cap_kw:
            self._cap_violation_kwh += (compute_power_kw - power_cap_kw) * hours
        if cap_held_jobs:
            self._capped_hold_s += cap_held_jobs * dt_s
        if compute_power_kw > 0 and math.isfinite(pue) and pue > self._max_pue:
            self._max_pue = pue

    def record_job(self, job: Job) -> None:
        """Record a job leaving the system (completed or dismissed)."""
        if job.state is not JobState.COMPLETED:
            self.dismissed_jobs.append(job)
            return
        self.completed_jobs.append(job)
        duration = job.sim_duration
        if duration is not None:
            self._node_h += job.nodes_required * duration / 3600.0
        wait = job.wait_time
        if wait is not None:
            self._wait_sum_s += wait
            self._wait_count += 1
            if wait > self._max_wait_s:
                self._max_wait_s = wait
        start = job.sim_start_time
        if start is not None and (
            self._first_sim_start is None or start < self._first_sim_start
        ):
            self._first_sim_start = start
        end = job.sim_end_time
        if end is not None and (
            self._last_sim_end is None or end > self._last_sim_end
        ):
            self._last_sim_end = end

    # -- derived metrics -------------------------------------------------------

    @property
    def total_energy_kwh(self) -> float:
        """Facility energy over the run (IT + losses + cooling), kWh."""
        return self._energy_kwh

    @property
    def it_energy_kwh(self) -> float:
        """IT (compute) energy over the run, kWh."""
        return self._it_energy_kwh

    @property
    def elapsed_s(self) -> float:
        """Simulated span covered by the recorded samples (``Σ dt_s``).

        Interval-aware: counts the width of every sample including the
        last, so dense and event-driven runs of the same window agree.
        """
        return self._time_weight_s

    @property
    def mean_pue(self) -> float:
        """Energy-weighted mean PUE (total facility energy / IT energy).

        ``inf`` when overhead energy was drawn with zero IT energy (the
        degenerate all-idle case); 1.0 only for a truly empty record.
        """
        if self._it_energy_kwh <= 0:
            return float("inf") if self._energy_kwh > 0 else 1.0
        return self._energy_kwh / self._it_energy_kwh

    @property
    def max_pue(self) -> float:
        """Worst finite per-sample PUE over ticks that drew IT power.

        Zero-IT ticks report PUE = inf by convention (see module docstring)
        and are excluded here rather than letting the sentinel swamp the
        maximum of the meaningful samples. Maintained incrementally in
        :meth:`record_tick` — O(1), no rescan of the tick columns.
        """
        return self._max_pue

    @property
    def mean_utilization(self) -> float:
        """Time-weighted mean node utilization."""
        if self._time_weight_s <= 0:
            return 0.0
        return self._utilization_weight / self._time_weight_s

    @property
    def mean_cpu_util(self) -> float:
        """Time-weighted mean CPU utilization across allocated nodes.

        dt-weighted like :attr:`mean_utilization`; a plain average over the
        per-tick ``mean_cpu_util`` column would be step-weighted and drift
        between dense and coalesced runs.
        """
        if self._time_weight_s <= 0:
            return 0.0
        return self._cpu_util_weight / self._time_weight_s

    @property
    def mean_gpu_util(self) -> float:
        """Time-weighted mean GPU utilization across allocated nodes."""
        if self._time_weight_s <= 0:
            return 0.0
        return self._gpu_util_weight / self._time_weight_s

    @property
    def energy_cost(self) -> float:
        """Electricity cost of the facility energy (``Σ kWh · price``)."""
        return self._energy_cost

    @property
    def carbon_kg(self) -> float:
        """Carbon emitted by the facility energy (``Σ kWh · kg/kWh``)."""
        return self._carbon_kg

    @property
    def cap_violation_kwh(self) -> float:
        """IT energy drawn above the active power cap (0 when capped runs
        are enforced by the :class:`~repro.engine.PowerCapScheduler`)."""
        return self._cap_violation_kwh

    @property
    def capped_hold_s(self) -> float:
        """Job-seconds of cap-induced queue holding (``Σ held_jobs · dt``)."""
        return self._capped_hold_s

    @property
    def node_h(self) -> float:
        """Node-hours delivered to completed jobs (maintained incrementally)."""
        return self._node_h

    @property
    def mean_wait_s(self) -> float:
        """Mean queue wait of completed jobs, seconds."""
        if self._wait_count == 0:
            return 0.0
        return self._wait_sum_s / self._wait_count

    @property
    def max_wait_s(self) -> float:
        return self._max_wait_s

    @property
    def makespan_s(self) -> float:
        """Span from first simulated start to last simulated end."""
        if self._first_sim_start is None or self._last_sim_end is None:
            return 0.0
        return self._last_sim_end - self._first_sim_start

    def summary(self) -> dict[str, float]:
        """Summary metrics of the run (the numbers ``repro-sim`` prints).

        Every entry is an incrementally maintained scalar, so the call is
        O(1) regardless of how many ticks and jobs were recorded.
        """
        return {
            "total_energy_kwh": self.total_energy_kwh,
            "it_energy_kwh": self.it_energy_kwh,
            "cooling_energy_kwh": self._cooling_energy_kwh,
            "mean_pue": self.mean_pue,
            "max_pue": self.max_pue,
            "mean_utilization": self.mean_utilization,
            "node_hours": self.node_h,
            "mean_wait_s": self.mean_wait_s,
            "max_wait_s": self.max_wait_s,
            "makespan_s": self.makespan_s,
            "jobs_completed": float(len(self.completed_jobs)),
            "jobs_dismissed": float(len(self.dismissed_jobs)),
            "ticks": float(self._tick_count),
            "simulated_s": self.elapsed_s,
            "mean_cpu_util": self.mean_cpu_util,
            "mean_gpu_util": self.mean_gpu_util,
            "energy_cost": self.energy_cost,
            "carbon_kg": self.carbon_kg,
            "cap_violation_kwh": self.cap_violation_kwh,
            "capped_hold_s": self.capped_hold_s,
        }

    def column(self, name: str) -> np.ndarray:
        """One tick column as a numpy array slice (no per-tick boxing).

        The cheap way to scan a single field of a huge run — e.g.
        ``stats.column("running_jobs").max()`` — without materialising a
        :class:`TickSample` per row through the :attr:`ticks` view.
        """
        if name not in self._columns:
            # Mapping semantics: callers key on column names like a dict,
            # so KeyError is the contract here, not SRapsError.
            raise KeyError(f"unknown tick column {name!r}")  # repro-lint: disable=public-exceptions
        view = self._columns[name][: self._tick_count]
        # Read-only: the slice aliases the live buffer, and a caller
        # mutating it would silently corrupt the recorded history (same
        # convention as Profile's exposed arrays).
        view.setflags(write=False)
        return view

    def timeseries(self) -> dict[str, list[float]]:
        """Column-oriented view of the per-tick samples.

        One ``tolist()`` per column (C-level conversion to Python scalars),
        never a per-tick Python object round-trip.
        """
        n = self._tick_count
        return {name: self._columns[name][:n].tolist() for name in TickSample.FIELDS}

    # -- export ----------------------------------------------------------------

    def to_csv(self, path: str | Path) -> None:
        """Write the per-tick time series as CSV (one ``writerows`` call)."""
        n = self._tick_count
        columns = [self._columns[name][:n].tolist() for name in TickSample.FIELDS]
        with open(Path(path), "w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(TickSample.FIELDS)
            writer.writerows(zip(*columns))

    def to_json(self, path: str | Path, *, include_timeseries: bool = True) -> None:
        """Write summary (and optionally the time series) as JSON.

        Non-finite values (the PUE ``inf`` sentinel of zero-IT samples) are
        exported as ``null``: RFC 8259 has no ``Infinity`` token, and
        emitting one would make the file unreadable for strict parsers.
        The time series streams column by column through the array-aware
        :func:`json_safe` — a vectorised finiteness pass per column, not a
        per-element recursion over the whole record.
        """
        payload: dict[str, object] = {"summary": json_safe(self.summary())}
        if include_timeseries:
            n = self._tick_count
            payload["timeseries"] = {
                name: json_safe(self._columns[name][:n])
                for name in TickSample.FIELDS
            }
        Path(path).write_text(
            json.dumps(payload, indent=2, allow_nan=False) + "\n"
        )


def _json_scalar(value: object) -> object:
    """One leaf of :func:`json_safe`: numpy-aware, non-finite floats → None."""
    if isinstance(value, float):
        return value if math.isfinite(value) else None
    if isinstance(value, np.ndarray):
        if value.dtype.kind == "f":
            finite = np.isfinite(value)
            if finite.all():
                return value.tolist()
            boxed = value.astype(object)
            boxed[~finite] = None
            return boxed.tolist()
        return value.tolist()
    if isinstance(value, np.floating):
        scalar = float(value)
        return scalar if math.isfinite(scalar) else None
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.bool_):
        return bool(value)
    return value


def json_safe(value: object) -> object:
    """Make ``value`` strict-JSON-serialisable, iteratively and array-aware.

    Non-finite floats become ``None``: RFC 8259 has no ``Infinity``/``NaN``
    token, so any record that may carry the PUE ``inf`` sentinel (or other
    non-finite metrics) must pass through this before
    ``json.dumps(..., allow_nan=False)``. Numpy scalars convert to their
    Python equivalents and numpy arrays to (nested) lists via a single
    vectorised finiteness pass — a million-row timeseries column never
    takes a per-element Python recursion. Containers are walked with an
    explicit stack (no recursion depth limit). Shared by
    :meth:`StatsCollector.to_json` and the benchmark harness.
    """
    _containers = (dict, list, tuple)
    if not isinstance(value, _containers):
        return _json_scalar(value)
    root: list[object] = [None]
    # The walk is structurally dynamic (targets are whichever container the
    # source maps to), so the stack is typed loosely on purpose.
    stack: list[tuple[Any, Any, Any]] = [(value, root, 0)]
    while stack:
        source, target, key = stack.pop()
        if isinstance(source, dict):
            converted: dict[Any, Any] | list[Any] = {}
            target[key] = converted
            for item_key, item in source.items():
                if isinstance(item, _containers):
                    converted[item_key] = None  # placeholder keeps key order
                    stack.append((item, converted, item_key))
                else:
                    converted[item_key] = _json_scalar(item)
        else:
            converted = [None] * len(source)
            target[key] = converted
            for index, item in enumerate(source):
                if isinstance(item, _containers):
                    stack.append((item, converted, index))
                else:
                    converted[index] = _json_scalar(item)
    return root[0]
