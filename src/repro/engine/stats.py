"""Simulation statistics: per-tick time series and summary metrics.

The collector is fed once per engine step with the power sample, the cooling
plant state (when the system couples one) and the engine's cluster counters,
plus once per job completion. From these it derives the quantities the paper
reports: total facility energy, mean/maximum PUE, node-hours delivered, mean
queue wait and system utilization. Time series export to CSV and the whole
record (summary + series) to JSON.

Samples are *interval-aware*: each :class:`TickSample` carries the length
``dt_s`` of the interval it stands for, so the event-driven engine can
coalesce an event-free stretch into one sample without changing any energy
or time-weighted metric. The engine guarantees every coalesced sample spans
a stretch over which the sampled state is constant on the tick grid —
coalescing is bounded by profile breakpoints as well as events — so the
constant-over-interval assumption below is exact, not approximate. All
summary invariants hold regardless of how time was discretised:
``total_energy_kwh == Σ facility_power_kw · dt_s / 3600``,
``mean_pue == total_energy_kwh / it_energy_kwh``, ``elapsed_s == Σ dt_s``.

PUE at zero IT power is reported as ``float("inf")`` (overhead power with
nothing to attribute it to), never as the flattering 1.0 floor; such ticks
are excluded from :attr:`StatsCollector.max_pue`.
"""

from __future__ import annotations

import csv
import json
import math
from dataclasses import dataclass
from pathlib import Path

from ..cooling.plant import CoolingPlantState
from ..power.system_power import SystemPowerSample
from ..telemetry.job import Job, JobState

__all__ = ["TickSample", "StatsCollector", "json_safe"]


@dataclass(frozen=True)
class TickSample:
    """Flattened record of the coupled models over one sampled interval.

    The sample stands for the half-open interval ``[time_s, time_s + dt_s)``
    with every quantity held constant over it. A dense-tick run has
    ``dt_s == timestep_s`` throughout; the event-driven engine records
    aggregated samples with ``dt_s`` a multiple of the timestep.
    """

    time_s: float
    dt_s: float
    compute_power_kw: float
    loss_power_kw: float
    cooling_power_kw: float
    facility_power_kw: float
    pue: float
    allocated_nodes: int
    utilization: float
    running_jobs: int
    queued_jobs: int
    mean_cpu_util: float
    mean_gpu_util: float

    #: CSV column order (kept in one place for header/row agreement).
    FIELDS = (
        "time_s",
        "dt_s",
        "compute_power_kw",
        "loss_power_kw",
        "cooling_power_kw",
        "facility_power_kw",
        "pue",
        "allocated_nodes",
        "utilization",
        "running_jobs",
        "queued_jobs",
        "mean_cpu_util",
        "mean_gpu_util",
    )

    def row(self) -> list[float]:
        return [getattr(self, name) for name in self.FIELDS]


class StatsCollector:
    """Accumulates per-tick samples and per-job outcomes for one run."""

    def __init__(self) -> None:
        self.ticks: list[TickSample] = []
        self.completed_jobs: list[Job] = []
        self.dismissed_jobs: list[Job] = []
        self._energy_kwh = 0.0
        self._it_energy_kwh = 0.0
        self._cooling_energy_kwh = 0.0
        self._utilization_weight = 0.0
        self._time_weight_s = 0.0

    # -- recording ------------------------------------------------------------

    def record_tick(
        self,
        now: float,
        dt_s: float,
        power: SystemPowerSample,
        cooling: CoolingPlantState | None,
        *,
        utilization: float,
        running_jobs: int,
        queued_jobs: int,
    ) -> TickSample:
        """Append one tick worth of coupled-model output.

        ``dt_s`` is the length of the interval the sample stands for; energy
        integrals treat each sample as constant over its interval (left
        Riemann sum on the tick grid).
        """
        cooling_kw = cooling.cooling_power_kw if cooling is not None else 0.0
        facility_kw = power.facility_power_kw + cooling_kw
        if cooling is not None:
            pue = cooling.pue
        elif power.compute_power_kw > 0:
            # No cooling model coupled: PUE floor from conversion losses only.
            pue = facility_kw / power.compute_power_kw
        elif facility_kw > 0:
            # Overhead power with zero IT power: PUE is unbounded, and
            # reporting the 1.0 floor would understate idle overhead.
            pue = float("inf")
        else:
            pue = 1.0
        sample = TickSample(
            time_s=now,
            dt_s=dt_s,
            compute_power_kw=power.compute_power_kw,
            loss_power_kw=power.loss_kw,
            cooling_power_kw=cooling_kw,
            facility_power_kw=facility_kw,
            pue=pue,
            allocated_nodes=power.allocated_nodes,
            utilization=utilization,
            running_jobs=running_jobs,
            queued_jobs=queued_jobs,
            mean_cpu_util=power.mean_cpu_util,
            mean_gpu_util=power.mean_gpu_util,
        )
        self.ticks.append(sample)
        hours = dt_s / 3600.0
        self._energy_kwh += facility_kw * hours
        self._it_energy_kwh += power.compute_power_kw * hours
        self._cooling_energy_kwh += cooling_kw * hours
        self._utilization_weight += sample.utilization * dt_s
        self._time_weight_s += dt_s
        return sample

    def record_job(self, job: Job) -> None:
        """Record a job leaving the system (completed or dismissed)."""
        if job.state is JobState.COMPLETED:
            self.completed_jobs.append(job)
        else:
            self.dismissed_jobs.append(job)

    # -- derived metrics -------------------------------------------------------

    @property
    def total_energy_kwh(self) -> float:
        """Facility energy over the run (IT + losses + cooling), kWh."""
        return self._energy_kwh

    @property
    def it_energy_kwh(self) -> float:
        """IT (compute) energy over the run, kWh."""
        return self._it_energy_kwh

    @property
    def elapsed_s(self) -> float:
        """Simulated span covered by the recorded samples (``Σ dt_s``).

        Interval-aware: counts the width of every sample including the
        last, so dense and event-driven runs of the same window agree.
        """
        return self._time_weight_s

    @property
    def mean_pue(self) -> float:
        """Energy-weighted mean PUE (total facility energy / IT energy).

        ``inf`` when overhead energy was drawn with zero IT energy (the
        degenerate all-idle case); 1.0 only for a truly empty record.
        """
        if self._it_energy_kwh <= 0:
            return float("inf") if self._energy_kwh > 0 else 1.0
        return self._energy_kwh / self._it_energy_kwh

    @property
    def max_pue(self) -> float:
        """Worst finite per-sample PUE over ticks that drew IT power.

        Zero-IT ticks report PUE = inf by convention (see module docstring)
        and are excluded here rather than letting the sentinel swamp the
        maximum of the meaningful samples.
        """
        return max(
            (
                t.pue
                for t in self.ticks
                if t.compute_power_kw > 0 and math.isfinite(t.pue)
            ),
            default=1.0,
        )

    @property
    def mean_utilization(self) -> float:
        """Time-weighted mean node utilization."""
        if self._time_weight_s <= 0:
            return 0.0
        return self._utilization_weight / self._time_weight_s

    @property
    def node_hours(self) -> float:
        """Node-hours delivered to completed jobs."""
        total = 0.0
        for job in self.completed_jobs:
            duration = job.sim_duration
            if duration is not None:
                total += job.nodes_required * duration / 3600.0
        return total

    @property
    def mean_wait_s(self) -> float:
        """Mean queue wait of completed jobs, seconds."""
        waits = [j.wait_time for j in self.completed_jobs if j.wait_time is not None]
        if not waits:
            return 0.0
        return sum(waits) / len(waits)

    @property
    def max_wait_s(self) -> float:
        waits = [j.wait_time for j in self.completed_jobs if j.wait_time is not None]
        return max(waits, default=0.0)

    @property
    def makespan_s(self) -> float:
        """Span from first simulated start to last simulated end."""
        starts = [j.sim_start_time for j in self.completed_jobs if j.sim_start_time is not None]
        ends = [j.sim_end_time for j in self.completed_jobs if j.sim_end_time is not None]
        if not starts or not ends:
            return 0.0
        return max(ends) - min(starts)

    def summary(self) -> dict[str, float]:
        """Summary metrics of the run (the numbers ``repro-sim`` prints)."""
        return {
            "total_energy_kwh": self.total_energy_kwh,
            "it_energy_kwh": self.it_energy_kwh,
            "cooling_energy_kwh": self._cooling_energy_kwh,
            "mean_pue": self.mean_pue,
            "max_pue": self.max_pue,
            "mean_utilization": self.mean_utilization,
            "node_hours": self.node_hours,
            "mean_wait_s": self.mean_wait_s,
            "max_wait_s": self.max_wait_s,
            "makespan_s": self.makespan_s,
            "jobs_completed": float(len(self.completed_jobs)),
            "jobs_dismissed": float(len(self.dismissed_jobs)),
            "ticks": float(len(self.ticks)),
            "simulated_s": self.elapsed_s,
        }

    def timeseries(self) -> dict[str, list[float]]:
        """Column-oriented view of the per-tick samples."""
        return {
            name: [getattr(t, name) for t in self.ticks] for name in TickSample.FIELDS
        }

    # -- export ----------------------------------------------------------------

    def to_csv(self, path: str | Path) -> None:
        """Write the per-tick time series as CSV."""
        with open(Path(path), "w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(TickSample.FIELDS)
            for tick in self.ticks:
                writer.writerow(tick.row())

    def to_json(self, path: str | Path, *, include_timeseries: bool = True) -> None:
        """Write summary (and optionally the time series) as JSON.

        Non-finite values (the PUE ``inf`` sentinel of zero-IT samples) are
        exported as ``null``: RFC 8259 has no ``Infinity`` token, and
        emitting one would make the file unreadable for strict parsers.
        """
        payload: dict[str, object] = {"summary": json_safe(self.summary())}
        if include_timeseries:
            payload["timeseries"] = json_safe(self.timeseries())
        Path(path).write_text(
            json.dumps(payload, indent=2, allow_nan=False) + "\n"
        )


def json_safe(value):
    """Recursively replace non-finite floats with ``None`` for strict JSON.

    RFC 8259 has no ``Infinity``/``NaN`` token, so any record that may
    carry the PUE ``inf`` sentinel (or other non-finite metrics) must pass
    through this before ``json.dumps(..., allow_nan=False)``. Shared by
    :meth:`StatsCollector.to_json` and the benchmark harness.
    """
    if isinstance(value, float) and not math.isfinite(value):
        return None
    if isinstance(value, dict):
        return {key: json_safe(item) for key, item in value.items()}
    if isinstance(value, list):
        return [json_safe(item) for item in value]
    return value
