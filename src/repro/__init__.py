"""S-RAPS reproduction: a scheduling-enabled HPC data-center digital twin.

The package reproduces the system described in "HPC Digital Twins for
Evaluating Scheduling Policies, Incentive Structures and their Impact on
Power and Cooling" (SC 2025): a forward-time digital-twin simulation loop
coupling batch scheduling, per-job power modelling, electrical conversion
losses and a transient cooling plant, plus account-based incentive policies,
ML-guided scheduling and adapters for external scheduling simulators.

Quick start::

    from repro import run_simulation

    result = run_simulation(system="tiny", policy="fcfs", backfill="easy",
                            duration="6h", seed=1)
    print(result.stats.summary())
"""

from .version import __version__

__all__ = ["__version__"]
