"""S-RAPS reproduction: a scheduling-enabled HPC data-center digital twin.

The package reproduces the system described in "HPC Digital Twins for
Evaluating Scheduling Policies, Incentive Structures and their Impact on
Power and Cooling" (SC 2025): a forward-time digital-twin simulation loop
coupling batch scheduling, per-job power modelling, electrical conversion
losses and a transient cooling plant, plus account-based incentive policies,
ML-guided scheduling and adapters for external scheduling simulators.

Quick start::

    from repro import run_simulation

    result = run_simulation(system="tiny", policy="fcfs", backfill="easy",
                            duration="6h", seed=1)
    print(result.stats.summary())
"""

from .version import __version__

from .config import (
    SystemConfig,
    available_systems,
    get_system_config,
    register_system_config,
)
from .cluster import ResourceManager
from .cooling import CoolingPlant
from .engine import (
    BackfillScheduler,
    FCFSScheduler,
    PowerCapScheduler,
    ReplayScheduler,
    Scheduler,
    SimulationEngine,
    SimulationResult,
    StatsCollector,
    available_policies,
    get_scheduler,
    run_simulation,
)
from .obs import (
    EventLog,
    MetricsRegistry,
    Observability,
    ProgressReporter,
    SpanTracer,
)
from .power import OperatingSignals, SystemPowerModel
from .sweep import (
    ResultsStore,
    RunRequest,
    SweepSpec,
    run_request,
    run_sweep,
)
from .telemetry import Job, JobState, Profile, constant_profile, read_swf
from .workloads import SyntheticWorkloadGenerator, WorkloadSpec

__all__ = [
    "__version__",
    # configuration
    "SystemConfig",
    "available_systems",
    "get_system_config",
    "register_system_config",
    # simulation engine
    "SimulationEngine",
    "SimulationResult",
    "StatsCollector",
    "run_simulation",
    "Scheduler",
    "ReplayScheduler",
    "FCFSScheduler",
    "BackfillScheduler",
    "PowerCapScheduler",
    "available_policies",
    "get_scheduler",
    # component models
    "ResourceManager",
    "SystemPowerModel",
    "OperatingSignals",
    "CoolingPlant",
    # scenario sweeps
    "RunRequest",
    "run_request",
    "SweepSpec",
    "run_sweep",
    "ResultsStore",
    # observability
    "Observability",
    "SpanTracer",
    "MetricsRegistry",
    "EventLog",
    "ProgressReporter",
    # workload / telemetry
    "Job",
    "JobState",
    "Profile",
    "constant_profile",
    "read_swf",
    "SyntheticWorkloadGenerator",
    "WorkloadSpec",
]
