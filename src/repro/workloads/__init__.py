"""Synthetic workload generation.

The public datasets used in the paper cannot be redistributed or downloaded
in this environment, so each dataloader synthesises a statistically matched
workload instead (see DESIGN.md §1). This package holds the shared machinery:
distributions for job sizes, runtimes and inter-arrival times
(:mod:`repro.workloads.distributions`) and the workload generator that turns
them into fully-formed :class:`~repro.telemetry.job.Job` objects with
utilization and power profiles (:mod:`repro.workloads.synthetic`).
"""

from .distributions import (
    BurstArrivals,
    JobSizeDistribution,
    PoissonArrivals,
    RuntimeDistribution,
    UserPopulation,
    WaveArrivals,
)
from .synthetic import (
    SyntheticWorkloadGenerator,
    WorkloadSpec,
    burst_arrival_spec,
    busy_trace_spec,
    default_workload_spec,
    frontier_scale_spec,
    generate_batch,
)

__all__ = [
    "BurstArrivals",
    "burst_arrival_spec",
    "busy_trace_spec",
    "default_workload_spec",
    "frontier_scale_spec",
    "generate_batch",
    "JobSizeDistribution",
    "PoissonArrivals",
    "RuntimeDistribution",
    "UserPopulation",
    "WaveArrivals",
    "SyntheticWorkloadGenerator",
    "WorkloadSpec",
]
