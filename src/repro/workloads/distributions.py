"""Statistical building blocks for synthetic HPC workloads.

The distributions follow the shapes consistently reported for production HPC
workloads (and visible in the paper's datasets): job node counts are heavy
tailed and cluster at powers of two, runtimes are roughly log-normal and are
truncated by wall-time limits, and arrivals follow a non-homogeneous Poisson
process with diurnal (and optionally weekly) intensity waves.

All classes take an explicit :class:`numpy.random.Generator` at sampling time
so the same specification can drive reproducible, independently seeded
workloads.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import ConfigurationError


@dataclass(frozen=True)
class JobSizeDistribution:
    """Heavy-tailed, power-of-two-favouring node-count distribution.

    A log-uniform base sample over ``[min_nodes, max_nodes]`` is snapped to
    the nearest power of two with probability ``power_of_two_bias``, and a
    small probability mass ``full_system_fraction`` produces full-system jobs
    (``max_nodes``), which is how the three 9,216-node Frontier runs of
    Fig. 6 arise.
    """

    min_nodes: int = 1
    max_nodes: int = 512
    power_of_two_bias: float = 0.6
    full_system_fraction: float = 0.0
    #: Exponent of the log-uniform base draw; >1 skews towards small jobs.
    small_job_skew: float = 1.6

    def __post_init__(self) -> None:
        if self.min_nodes < 1 or self.max_nodes < self.min_nodes:
            raise ConfigurationError("invalid node-count range")
        if not 0.0 <= self.power_of_two_bias <= 1.0:
            raise ConfigurationError("power_of_two_bias must be in [0, 1]")
        if not 0.0 <= self.full_system_fraction <= 1.0:
            raise ConfigurationError("full_system_fraction must be in [0, 1]")
        if self.small_job_skew <= 0:
            raise ConfigurationError("small_job_skew must be positive")

    def sample(self, rng: np.random.Generator, size: int = 1) -> np.ndarray:
        """Draw ``size`` node counts."""
        u = rng.random(size) ** self.small_job_skew
        log_min = np.log(self.min_nodes)
        log_max = np.log(self.max_nodes)
        nodes = np.exp(log_min + u * (log_max - log_min))
        nodes = np.maximum(self.min_nodes, np.round(nodes)).astype(int)

        snap = rng.random(size) < self.power_of_two_bias
        powers = 2 ** np.round(np.log2(np.maximum(nodes, 1))).astype(int)
        nodes = np.where(snap, powers, nodes)
        nodes = np.clip(nodes, self.min_nodes, self.max_nodes)

        full = rng.random(size) < self.full_system_fraction
        nodes = np.where(full, self.max_nodes, nodes)
        return nodes


@dataclass(frozen=True)
class RuntimeDistribution:
    """Log-normal runtime distribution with wall-time truncation.

    ``median_s`` and ``sigma`` parameterise the log-normal; samples are
    clipped to ``[min_s, max_s]``. Requested wall-time limits are derived by
    multiplying the true runtime with an over-estimation factor drawn from
    ``[1, overestimate_max]`` and rounding up to the next
    ``limit_granularity_s`` — mimicking users who request padded round
    numbers.
    """

    median_s: float = 3600.0
    sigma: float = 1.2
    min_s: float = 60.0
    max_s: float = 86400.0
    overestimate_max: float = 3.0
    limit_granularity_s: float = 1800.0

    def __post_init__(self) -> None:
        if self.median_s <= 0 or self.sigma <= 0:
            raise ConfigurationError("median_s and sigma must be positive")
        if self.min_s <= 0 or self.max_s < self.min_s:
            raise ConfigurationError("invalid runtime range")
        if self.overestimate_max < 1.0:
            raise ConfigurationError("overestimate_max must be >= 1")

    def sample(self, rng: np.random.Generator, size: int = 1) -> np.ndarray:
        """Draw ``size`` true runtimes in seconds."""
        runtimes = rng.lognormal(mean=np.log(self.median_s), sigma=self.sigma, size=size)
        return np.clip(runtimes, self.min_s, self.max_s)

    def sample_wall_limits(
        self, rng: np.random.Generator, runtimes: np.ndarray
    ) -> np.ndarray:
        """Draw requested wall-time limits consistent with ``runtimes``."""
        factors = rng.uniform(1.0, self.overestimate_max, size=runtimes.shape)
        limits = runtimes * factors
        gran = self.limit_granularity_s
        return np.ceil(limits / gran) * gran


@dataclass(frozen=True)
class PoissonArrivals:
    """Homogeneous Poisson arrival process."""

    rate_per_hour: float = 20.0

    def __post_init__(self) -> None:
        if self.rate_per_hour <= 0:
            raise ConfigurationError("rate_per_hour must be positive")

    def sample(
        self, rng: np.random.Generator, duration_s: float, start_s: float = 0.0
    ) -> np.ndarray:
        """Arrival times (seconds) in ``[start_s, start_s + duration_s)``."""
        expected = self.rate_per_hour * duration_s / 3600.0
        count = rng.poisson(expected)
        times = start_s + rng.random(count) * duration_s
        return np.sort(times)


@dataclass(frozen=True)
class BurstArrivals:
    """Submissions arriving in instantaneous same-instant bursts.

    Models the queue-drain restart after a maintenance window (or a
    deadline rush): thousands of jobs are released to the scheduler in the
    same tick, then nothing until the next burst. This is the adversarial
    shape for any per-event cost in the engine — every burst makes one tick
    carry thousands of submissions, placements and power-state
    constructions — and is what the ``engine_burst_arrival`` benchmark
    drives the batched job-start path with.

    Bursts fire at ``first_burst_s + k * burst_interval_s`` (absolute
    times); :meth:`sample` returns the ones falling inside the requested
    window. The process is deterministic — it draws nothing from the
    generator — so the seed only varies the job bodies, never the arrival
    pattern.
    """

    jobs_per_burst: int = 1000
    burst_interval_s: float = 4 * 3600.0
    first_burst_s: float = 0.0

    def __post_init__(self) -> None:
        if self.jobs_per_burst < 1:
            raise ConfigurationError("jobs_per_burst must be positive")
        if self.burst_interval_s <= 0:
            raise ConfigurationError("burst_interval_s must be positive")

    @property
    def rate_per_hour(self) -> float:
        """Long-run average arrival rate (jobs/hour), for window sizing."""
        return self.jobs_per_burst * 3600.0 / self.burst_interval_s

    def sample(
        self, rng: np.random.Generator, duration_s: float, start_s: float = 0.0
    ) -> np.ndarray:
        """Arrival times (seconds) in ``[start_s, start_s + duration_s)``."""
        end_s = start_s + duration_s
        # One index of slack on both sides, then mask: the index bounds are
        # computed in float, and a ceil that rounds up would otherwise clip
        # a burst landing exactly on the window edge.
        first_index = max(
            0, int(np.ceil((start_s - self.first_burst_s) / self.burst_interval_s)) - 1
        )
        last_index = (
            int(np.ceil((end_s - self.first_burst_s) / self.burst_interval_s)) + 1
        )
        indices = np.arange(first_index, max(first_index, last_index), dtype=float)
        bursts = self.first_burst_s + indices * self.burst_interval_s
        bursts = bursts[(bursts >= start_s) & (bursts < end_s)]
        return np.repeat(bursts, self.jobs_per_burst)


@dataclass(frozen=True)
class WaveArrivals:
    """Non-homogeneous Poisson arrivals with a diurnal intensity wave.

    Intensity is ``base * (1 + amplitude * sin(2*pi*(t - phase)/period))``,
    sampled by thinning a dominating homogeneous process. A weekly modulation
    can be layered on with ``weekly_amplitude`` (weekdays busier than
    weekends), matching the day-scale power swings visible in Figs. 5 and 7.
    """

    rate_per_hour: float = 20.0
    amplitude: float = 0.5
    period_s: float = 86400.0
    phase_s: float = 0.0
    weekly_amplitude: float = 0.0

    def __post_init__(self) -> None:
        if self.rate_per_hour <= 0:
            raise ConfigurationError("rate_per_hour must be positive")
        if not 0.0 <= self.amplitude < 1.0:
            raise ConfigurationError("amplitude must be in [0, 1)")
        if not 0.0 <= self.weekly_amplitude < 1.0:
            raise ConfigurationError("weekly_amplitude must be in [0, 1)")
        if self.period_s <= 0:
            raise ConfigurationError("period_s must be positive")

    def intensity(self, t: np.ndarray | float) -> np.ndarray:
        """Instantaneous arrival intensity (jobs/hour) at time(s) ``t``."""
        t_arr = np.asarray(t, dtype=float)
        diurnal = 1.0 + self.amplitude * np.sin(
            2.0 * np.pi * (t_arr - self.phase_s) / self.period_s
        )
        weekly = 1.0 + self.weekly_amplitude * np.sin(
            2.0 * np.pi * t_arr / (7.0 * 86400.0)
        )
        return self.rate_per_hour * diurnal * weekly

    def sample(
        self, rng: np.random.Generator, duration_s: float, start_s: float = 0.0
    ) -> np.ndarray:
        """Arrival times (seconds) in ``[start_s, start_s + duration_s)``."""
        max_rate = self.rate_per_hour * (1.0 + self.amplitude) * (1.0 + self.weekly_amplitude)
        expected = max_rate * duration_s / 3600.0
        count = rng.poisson(expected)
        candidates = start_s + rng.random(count) * duration_s
        accept = rng.random(count) * max_rate < self.intensity(candidates)
        return np.sort(candidates[accept])


@dataclass(frozen=True)
class UserPopulation:
    """A pool of users/accounts with Zipf-like activity.

    ``n_accounts`` projects share ``n_users`` users; user activity follows a
    Zipf law so a few accounts dominate the workload, which is what makes the
    incentive-structure study (Fig. 8) interesting: reprioritising accounts
    moves a visible share of the load.
    """

    n_users: int = 64
    n_accounts: int = 16
    zipf_exponent: float = 1.1

    def __post_init__(self) -> None:
        if self.n_users < 1 or self.n_accounts < 1:
            raise ConfigurationError("population sizes must be positive")
        if self.zipf_exponent <= 0:
            raise ConfigurationError("zipf_exponent must be positive")

    def _weights(self, n: int) -> np.ndarray:
        ranks = np.arange(1, n + 1, dtype=float)
        weights = ranks ** (-self.zipf_exponent)
        return weights / weights.sum()

    def sample_users(self, rng: np.random.Generator, size: int) -> list[str]:
        """Draw ``size`` user names."""
        idx = rng.choice(self.n_users, size=size, p=self._weights(self.n_users))
        return [f"user{int(i):03d}" for i in idx]

    def account_of(self, user: str) -> str:
        """Deterministic user → account mapping (users stay in one project)."""
        digits = int("".join(ch for ch in user if ch.isdigit()) or 0)
        return f"acct{digits % self.n_accounts:03d}"
