"""Synthetic workload generator.

Turns the distributions of :mod:`repro.workloads.distributions` into fully
formed :class:`~repro.telemetry.job.Job` objects, including per-job CPU/GPU/
memory utilization profiles (piecewise-constant phases, the dominant shape in
real traces) and — for systems whose datasets carry power traces — recorded
node-power profiles derived from the system's power model so that replay and
reschedule runs see consistent telemetry.

The generator is deterministic given a seed, which the benchmark harness
relies on to regenerate the paper's figures repeatably.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..config import SystemConfig
from ..exceptions import ConfigurationError
from ..telemetry.job import Job
from ..telemetry.trace import Profile, constant_profile, trusted_profile
from .distributions import (
    BurstArrivals,
    JobSizeDistribution,
    RuntimeDistribution,
    UserPopulation,
    WaveArrivals,
)


@dataclass(frozen=True)
class WorkloadSpec:
    """Everything needed to synthesise a workload for one system.

    Attributes
    ----------
    sizes / runtimes / arrivals / users:
        Component distributions.
    trace_interval_s:
        Sampling interval of generated utilization/power profiles. ``None``
        produces scalar (average-only) telemetry, matching the summary-only
        datasets (Fugaku, Lassen, Adastra).
    generate_power_trace:
        Whether to attach a recorded node-power profile (Frontier and
        Marconi100 datasets carry power traces).
    cpu_util_range / gpu_util_range / mem_util_range:
        Ranges for per-job mean utilization draws.
    phase_count_range:
        Number of piecewise-constant phases per profile.
    sample_noise:
        Scale factor on the per-sample noise added within a phase. The
        default 1.0 keeps the historical behaviour (every sample jittered,
        so every sample is a profile breakpoint); 0.0 produces genuinely
        piecewise-constant profiles whose only breakpoints are the phase
        edges — the shape telemetry replays dominate on and the one the
        busy-trace benchmark uses to exercise breakpoint-bounded
        coalescing. Any value draws the same random numbers, so changing it
        never perturbs the other workload draws of a fixed seed.
    priority_range:
        Uniform range for dataset-provided priorities.
    """

    sizes: JobSizeDistribution = field(default_factory=JobSizeDistribution)
    runtimes: RuntimeDistribution = field(default_factory=RuntimeDistribution)
    arrivals: WaveArrivals = field(default_factory=WaveArrivals)
    users: UserPopulation = field(default_factory=UserPopulation)
    trace_interval_s: float | None = 60.0
    generate_power_trace: bool = False
    cpu_util_range: tuple[float, float] = (0.2, 0.95)
    gpu_util_range: tuple[float, float] = (0.0, 0.95)
    mem_util_range: tuple[float, float] = (0.1, 0.8)
    phase_count_range: tuple[int, int] = (1, 5)
    sample_noise: float = 1.0
    priority_range: tuple[float, float] = (0.0, 100.0)

    def __post_init__(self) -> None:
        if self.sample_noise < 0.0:
            raise ConfigurationError("sample_noise must be non-negative")
        for name in ("cpu_util_range", "gpu_util_range", "mem_util_range"):
            low, high = getattr(self, name)
            if not 0.0 <= low <= high <= 1.0:
                raise ConfigurationError(f"{name} must satisfy 0 <= low <= high <= 1")
        lo, hi = self.phase_count_range
        if lo < 1 or hi < lo:
            raise ConfigurationError("phase_count_range must be >= 1 and ordered")
        if self.trace_interval_s is not None and self.trace_interval_s <= 0:
            raise ConfigurationError("trace_interval_s must be positive")


def default_workload_spec(system: SystemConfig) -> WorkloadSpec:
    """A workload specification scaled to one system.

    The stock :class:`WorkloadSpec` defaults describe a mid-size machine;
    this helper caps job sizes at the system's node count and scales the
    arrival rate with system size so the engine's default runs land at a
    realistic (non-trivial, non-saturated) utilization on anything from the
    32-node ``tiny`` test system to Fugaku.
    """
    max_nodes = max(1, min(512, system.total_nodes // 2 or 1))
    return WorkloadSpec(
        sizes=JobSizeDistribution(min_nodes=1, max_nodes=max_nodes),
        runtimes=RuntimeDistribution(
            median_s=1800.0, sigma=0.9, min_s=120.0, max_s=4 * 3600.0
        ),
        arrivals=WaveArrivals(rate_per_hour=max(6.0, system.total_nodes / 16.0)),
        trace_interval_s=float(system.trace_quantum_s),
        generate_power_trace=False,
    )


def busy_trace_spec() -> WorkloadSpec:
    """A continuously busy workload of multi-phase piecewise-constant profiles.

    ``sample_noise=0.0`` makes the profiles genuinely piecewise-constant
    (breakpoints only at the 2-6 phase edges per job) — the shape real
    telemetry replays are dominated by, and the case the engine's
    breakpoint-bounded coalescing is built for. Sized for the 32-node
    ``tiny`` system: at 4 jobs/hour of 2-16-node, ~2 h jobs the machine sits
    around 90% utilization for the whole window. Shared by the busy-trace
    benchmark (``scripts/bench_engine.py``) and the step-reduction
    regression test so the two can never drift apart.
    """
    return WorkloadSpec(
        sizes=JobSizeDistribution(min_nodes=2, max_nodes=16),
        runtimes=RuntimeDistribution(
            median_s=7200.0, sigma=0.5, min_s=1800.0, max_s=4 * 3600.0
        ),
        arrivals=WaveArrivals(rate_per_hour=4.0, amplitude=0.3),
        trace_interval_s=60.0,
        generate_power_trace=False,
        phase_count_range=(2, 6),
        sample_noise=0.0,
    )


def frontier_scale_spec() -> WorkloadSpec:
    """A frontier-scale workload: thousands of concurrently running jobs.

    Sized for the 9,600-node ``frontier`` system: ~600 small (1-16 node)
    jobs per hour with a ~3 h median runtime hold roughly 2,000 jobs on the
    machine at once — the running-set size of the paper's telemetry replays,
    and the regime the engine's O(log R) event indexes (end-time heap,
    breakpoint heap) exist for. Scalar telemetry (``trace_interval_s=None``)
    matches the summary-only datasets (Fugaku, Lassen, Adastra) and makes
    every step's cost be release checks and event bounds — exactly the
    paths the frontier-scale benchmark compares heap vs scan on. Shared by
    ``scripts/bench_engine.py`` and the frontier-scale regression test so
    the two can never drift apart.
    """
    return WorkloadSpec(
        sizes=JobSizeDistribution(min_nodes=1, max_nodes=16),
        runtimes=RuntimeDistribution(
            median_s=3 * 3600.0, sigma=0.5, min_s=1800.0, max_s=8 * 3600.0
        ),
        arrivals=WaveArrivals(rate_per_hour=600.0, amplitude=0.2),
        trace_interval_s=None,
        generate_power_trace=False,
    )


def burst_arrival_spec() -> WorkloadSpec:
    """Thousands of same-tick releases: the post-maintenance drain restart.

    Every four hours the scheduler is handed 3,000 small jobs in a single
    tick — the queue-drain restart after a maintenance window. Sized for
    the 9,600-node ``frontier`` system (3,000 jobs of 1-4 nodes fit in one
    wave), with short multi-phase piecewise-constant profiles
    (``sample_noise=0.0``), so the dominant per-event cost is constructing
    thousands of job power states at once — exactly the path the engine's
    batched job-start construction exists for, and the differential the
    ``engine_burst_arrival`` benchmark measures batched vs per-job. Shared
    by ``scripts/bench_engine.py`` and the burst-arrival equivalence tests
    so the two can never drift apart.
    """
    return WorkloadSpec(
        sizes=JobSizeDistribution(min_nodes=1, max_nodes=4),
        runtimes=RuntimeDistribution(
            median_s=3600.0, sigma=0.4, min_s=1800.0, max_s=2 * 3600.0
        ),
        arrivals=BurstArrivals(jobs_per_burst=3000, burst_interval_s=4 * 3600.0),
        trace_interval_s=900.0,
        generate_power_trace=False,
        phase_count_range=(2, 4),
        sample_noise=0.0,
    )


class SyntheticWorkloadGenerator:
    """Generate a reproducible synthetic workload for a system.

    Parameters
    ----------
    system:
        The system configuration (node counts cap job sizes; node power
        characteristics drive synthesized power traces).
    spec:
        The workload specification.
    seed:
        Seed for the internal :class:`numpy.random.Generator`.
    """

    def __init__(
        self,
        system: SystemConfig,
        spec: WorkloadSpec | None = None,
        *,
        seed: int = 0,
    ) -> None:
        self.system = system
        self.spec = spec if spec is not None else WorkloadSpec()
        self.seed = seed
        if self.spec.sizes.max_nodes > system.total_nodes:
            raise ConfigurationError(
                f"workload max job size {self.spec.sizes.max_nodes} exceeds "
                f"system size {system.total_nodes}"
            )

    # -- public API -----------------------------------------------------------

    def generate(
        self,
        duration_s: float,
        *,
        start_s: float = 0.0,
        include_prehistory: bool = True,
    ) -> list[Job]:
        """Generate jobs whose submit times fall in ``[start, start+duration)``.

        When ``include_prehistory`` is true, an extra slice of jobs submitted
        *before* ``start_s`` (one mean runtime long) is generated as well so
        that the system is busy at window start — the prepopulation behaviour
        the paper calls out as often neglected by scheduling simulators.
        """
        rng = np.random.default_rng(self.seed)
        spec = self.spec

        prehistory = 0.0
        if include_prehistory:
            prehistory = min(duration_s, 4.0 * spec.runtimes.median_s)
        submit_times = spec.arrivals.sample(
            rng, duration_s + prehistory, start_s=start_s - prehistory
        )
        n = submit_times.size
        if n == 0:
            return []

        nodes = spec.sizes.sample(rng, n)
        runtimes = spec.runtimes.sample(rng, n)
        wall_limits = spec.runtimes.sample_wall_limits(rng, runtimes)
        queue_waits = rng.exponential(scale=spec.runtimes.median_s * 0.25, size=n)
        users = spec.users.sample_users(rng, n)
        priorities = rng.uniform(*spec.priority_range, size=n)

        jobs: list[Job] = []
        for i in range(n):
            start_time = float(submit_times[i] + queue_waits[i])
            end_time = float(start_time + runtimes[i])
            user = users[i]
            cpu_profile, gpu_profile, mem_profile = self._utilization_profiles(
                rng, float(runtimes[i])
            )
            power_profile = None
            if spec.generate_power_trace:
                power_profile = self._power_profile(
                    cpu_profile, gpu_profile, mem_profile, nodes_required=int(nodes[i])
                )
            job = Job(
                nodes_required=int(nodes[i]),
                submit_time=float(submit_times[i]),
                start_time=start_time,
                end_time=end_time,
                wall_time_limit=float(wall_limits[i]),
                name=f"synth-{self.system.name}-{i:06d}",
                user=user,
                account=spec.users.account_of(user),
                partition=self.system.partitions[0].name,
                priority=float(priorities[i]),
                cpu_util=cpu_profile,
                gpu_util=gpu_profile,
                mem_util=mem_profile,
                node_power=power_profile,
                metadata={"synthetic": True, "workload_seed": self.seed},
            )
            jobs.append(job)
        jobs.sort(key=lambda j: j.submit_time)
        return jobs

    def generate_job_count(self, count: int, *, rate_scale: float = 1.0) -> list[Job]:
        """Generate approximately ``count`` jobs by sizing the window from the rate."""
        if count <= 0:
            raise ConfigurationError("count must be positive")
        hours = count / (self.spec.arrivals.rate_per_hour * rate_scale)
        return self.generate(hours * 3600.0, include_prehistory=False)

    # -- profile synthesis -----------------------------------------------------

    def _utilization_profiles(
        self, rng: np.random.Generator, runtime_s: float
    ) -> tuple[Profile, Profile, Profile]:
        """Build piecewise-constant CPU/GPU/memory utilization profiles."""
        spec = self.spec
        cpu_mean = rng.uniform(*spec.cpu_util_range)
        gpu_mean = rng.uniform(*spec.gpu_util_range)
        mem_mean = rng.uniform(*spec.mem_util_range)

        if spec.trace_interval_s is None:
            return (
                constant_profile(cpu_mean, runtime_s),
                constant_profile(gpu_mean, runtime_s),
                constant_profile(mem_mean, runtime_s),
            )

        interval = spec.trace_interval_s
        n_samples = max(2, int(np.ceil(runtime_s / interval)) + 1)
        times = np.minimum(np.arange(n_samples) * interval, runtime_s)
        # Guard against duplicate trailing time when runtime is a multiple
        # of the interval.
        times = np.unique(times)

        n_phases = int(rng.integers(spec.phase_count_range[0], spec.phase_count_range[1] + 1))
        phase_edges = (
            np.sort(rng.random(n_phases - 1)) * runtime_s if n_phases > 1 else np.array([])
        )
        phase_idx = np.searchsorted(phase_edges, times, side="right")

        def phased(mean: float, jitter: float) -> np.ndarray:
            phase_levels = np.clip(
                mean + rng.normal(0.0, jitter, size=n_phases), 0.0, 1.0
            )
            # Always draw the noise so the rng stream (and hence every other
            # sampled quantity of a fixed seed) is independent of
            # ``sample_noise``; scaling by 0.0 yields exact within-phase
            # repeats, which the engine's breakpoint detection relies on
            # (and scaling by the default 1.0 is bit-identical to the
            # historical unscaled draw).
            noise = rng.normal(0.0, jitter * 0.2, size=times.size) * spec.sample_noise
            return np.clip(phase_levels[phase_idx] + noise, 0.0, 1.0)

        return (
            Profile(times, phased(cpu_mean, 0.15)),
            Profile(times, phased(gpu_mean, 0.2)),
            Profile(times, phased(mem_mean, 0.1)),
        )

    def generate_batch(
        self,
        seeds: Sequence[int],
        duration_s: float,
        *,
        start_s: float = 0.0,
        include_prehistory: bool = True,
    ) -> list[list[Job]]:
        """Generate one workload per seed, batching the rng-free arithmetic.

        Each returned job list equals (bit for bit, modulo the process-global
        ``job_id`` counter) what ``generate()`` produces for the same seed:
        the per-seed rng streams are consumed in exactly the serial order —
        the batch engine's equality contract rests on it — and only the
        deterministic post-processing after the draws (phase-level clips,
        sample lookups, noise scaling, profile construction) is stacked
        across a seed's jobs and evaluated in a handful of vectorised passes
        instead of six per job, with the sample-time grid and its validation
        shared across every profile of the batch.

        The instance's own ``seed`` is ignored; ``seeds`` drives everything,
        so one generator serves a whole Monte Carlo batch.
        """
        grid_cache: dict[float, np.ndarray] = {}
        return [
            self._generate_batched(
                int(seed),
                duration_s,
                start_s=start_s,
                include_prehistory=include_prehistory,
                grid_cache=grid_cache,
            )
            for seed in seeds
        ]

    def _generate_batched(
        self,
        seed: int,
        duration_s: float,
        *,
        start_s: float,
        include_prehistory: bool,
        grid_cache: dict[float, np.ndarray],
    ) -> list[Job]:
        """One seed of :meth:`generate_batch`; see there for the contract."""
        rng = np.random.default_rng(seed)
        spec = self.spec

        prehistory = 0.0
        if include_prehistory:
            prehistory = min(duration_s, 4.0 * spec.runtimes.median_s)
        submit_times = spec.arrivals.sample(
            rng, duration_s + prehistory, start_s=start_s - prehistory
        )
        n = submit_times.size
        if n == 0:
            return []

        nodes = spec.sizes.sample(rng, n)
        runtimes = spec.runtimes.sample(rng, n)
        wall_limits = spec.runtimes.sample_wall_limits(rng, runtimes)
        queue_waits = rng.exponential(scale=spec.runtimes.median_s * 0.25, size=n)
        users = spec.users.sample_users(rng, n)
        priorities = rng.uniform(*spec.priority_range, size=n)

        # Raw per-job draws, serial order preserved. Profile means are
        # job-major in cpu/gpu/mem order throughout (index 3*i + profile).
        interval = spec.trace_interval_s
        means = np.empty(3 * n)
        times_list: list[np.ndarray] = []
        values_list: list[np.ndarray] = []
        if interval is not None:
            lo, hi = spec.phase_count_range
            phase_idx_list: list[np.ndarray] = []
            level_raw: list[np.ndarray] = []
            noise_raw: list[np.ndarray] = []
            phase_counts = np.empty(3 * n, dtype=np.intp)
            for i in range(n):
                runtime_s = float(runtimes[i])
                means[3 * i] = rng.uniform(*spec.cpu_util_range)
                means[3 * i + 1] = rng.uniform(*spec.gpu_util_range)
                means[3 * i + 2] = rng.uniform(*spec.mem_util_range)
                n_samples = max(2, int(np.ceil(runtime_s / interval)) + 1)
                grid = _sample_grid(grid_cache, interval, n_samples)
                times = np.unique(np.minimum(grid[:n_samples], runtime_s))
                n_phases = int(rng.integers(lo, hi + 1))
                phase_edges = (
                    np.sort(rng.random(n_phases - 1)) * runtime_s
                    if n_phases > 1
                    else np.array([])
                )
                times_list.append(times)
                phase_idx_list.append(
                    np.searchsorted(phase_edges, times, side="right")
                )
                for jitter in (0.15, 0.2, 0.1):
                    level_raw.append(rng.normal(0.0, jitter, size=n_phases))
                    noise_raw.append(
                        rng.normal(0.0, jitter * 0.2, size=times.size)
                    )
                phase_counts[3 * i : 3 * i + 3] = n_phases
            # Batched post-processing: one clip over every phase level of the
            # seed (scalar mean + per-phase jitter, elementwise identical to
            # the serial per-profile expression), then zero-order-hold
            # expansion per profile, then — only when sample noise is on —
            # one clip over every sample. With sample_noise == 0.0 the serial
            # path adds an exact zero and re-clips values already inside
            # [0, 1], so the expansion itself is the final answer.
            levels = np.clip(
                np.repeat(means, phase_counts) + np.concatenate(level_raw),
                0.0,
                1.0,
            )
            offsets = np.zeros(3 * n + 1, dtype=np.intp)
            np.cumsum(phase_counts, out=offsets[1:])
            values_list = [
                levels[offsets[k] : offsets[k + 1]][phase_idx_list[k // 3]]
                for k in range(3 * n)
            ]
            if spec.sample_noise != 0.0:  # repro-lint: disable=float-compare
                sample_counts = np.fromiter(
                    (v.size for v in values_list), dtype=np.intp, count=3 * n
                )
                flat = np.clip(
                    np.concatenate(values_list)
                    + np.concatenate(noise_raw) * spec.sample_noise,
                    0.0,
                    1.0,
                )
                sample_offsets = np.zeros(3 * n + 1, dtype=np.intp)
                np.cumsum(sample_counts, out=sample_offsets[1:])
                values_list = [
                    flat[sample_offsets[k] : sample_offsets[k + 1]]
                    for k in range(3 * n)
                ]
        else:
            for i in range(n):
                means[3 * i] = rng.uniform(*spec.cpu_util_range)
                means[3 * i + 1] = rng.uniform(*spec.gpu_util_range)
                means[3 * i + 2] = rng.uniform(*spec.mem_util_range)

        jobs: list[Job] = []
        for i in range(n):
            runtime_s = float(runtimes[i])
            start_time = float(submit_times[i] + queue_waits[i])
            end_time = float(start_time + runtimes[i])
            user = users[i]
            if interval is None:
                cpu_profile = _trusted_constant(means[3 * i], runtime_s)
                gpu_profile = _trusted_constant(means[3 * i + 1], runtime_s)
                mem_profile = _trusted_constant(means[3 * i + 2], runtime_s)
            else:
                times = times_list[i]
                cpu_profile = trusted_profile(times, values_list[3 * i])
                gpu_profile = trusted_profile(times, values_list[3 * i + 1])
                mem_profile = trusted_profile(times, values_list[3 * i + 2])
            power_profile = None
            if spec.generate_power_trace:
                power_profile = self._power_profile(
                    cpu_profile,
                    gpu_profile,
                    mem_profile,
                    nodes_required=int(nodes[i]),
                )
            jobs.append(
                Job(
                    nodes_required=int(nodes[i]),
                    submit_time=float(submit_times[i]),
                    start_time=start_time,
                    end_time=end_time,
                    wall_time_limit=float(wall_limits[i]),
                    name=f"synth-{self.system.name}-{i:06d}",
                    user=user,
                    account=spec.users.account_of(user),
                    partition=self.system.partitions[0].name,
                    priority=float(priorities[i]),
                    cpu_util=cpu_profile,
                    gpu_util=gpu_profile,
                    mem_util=mem_profile,
                    node_power=power_profile,
                    metadata={"synthetic": True, "workload_seed": seed},
                )
            )
        jobs.sort(key=lambda j: j.submit_time)
        return jobs

    def _power_profile(
        self,
        cpu: Profile,
        gpu: Profile,
        mem: Profile,
        *,
        nodes_required: int,
    ) -> Profile:
        """Derive a recorded per-node power trace from utilization profiles.

        Uses the same component model as :mod:`repro.power.node_power` so
        that replaying the recorded power and recomputing it from utilization
        agree — this is what lets the Adastra experiment (Fig. 5) match the
        observed swings exactly.
        """
        node_cfg = self.system.partitions[0].node_power
        times = cpu.times
        cpu_v = cpu.values
        gpu_v = gpu.values_at(times)
        mem_v = mem.values_at(times)
        watts = (
            node_cfg.idle_w
            + node_cfg.cpus_per_node
            * (node_cfg.cpu_idle_w + cpu_v * (node_cfg.cpu_max_w - node_cfg.cpu_idle_w))
            + node_cfg.gpus_per_node
            * (node_cfg.gpu_idle_w + gpu_v * (node_cfg.gpu_max_w - node_cfg.gpu_idle_w))
            + mem_v * node_cfg.mem_dynamic_w
        )
        return Profile(times, watts)


def _sample_grid(
    cache: dict[float, np.ndarray], interval: float, n_samples: int
) -> np.ndarray:
    """A shared ``arange(n) * interval`` grid, grown geometrically.

    ``grid[:n]`` is elementwise identical to ``np.arange(n) * interval`` (the
    same multiply on the same integers), so slicing the cached grid preserves
    the serial generator's sample times bit for bit while building the
    arange once per batch instead of once per job.
    """
    grid = cache.get(interval)
    if grid is None or grid.size < n_samples:
        size = max(n_samples, 256 if grid is None else 2 * grid.size)
        grid = np.arange(size) * interval
        cache[interval] = grid
    return grid


def _trusted_constant(value: float, duration_s: float) -> Profile:
    """`constant_profile` by value, built through the trusted constructor."""
    if duration_s > 0:
        return trusted_profile(
            np.array([0.0, duration_s]), np.array([value, value])
        )
    return trusted_profile(np.array([0.0]), np.array([value]))


def generate_batch(
    system: SystemConfig,
    spec: WorkloadSpec | None,
    seeds: Sequence[int],
    duration_s: float,
    *,
    start_s: float = 0.0,
    include_prehistory: bool = True,
) -> list[list[Job]]:
    """Module-level convenience over ``SyntheticWorkloadGenerator.generate_batch``.

    One workload per seed, bit-identical to serial ``generate()`` per seed
    (see the method docstring for the equality contract).
    """
    generator = SyntheticWorkloadGenerator(
        system, spec, seed=int(seeds[0]) if len(seeds) else 0
    )
    return generator.generate_batch(
        seeds, duration_s, start_s=start_s, include_prehistory=include_prehistory
    )
