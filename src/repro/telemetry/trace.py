"""Sampled time-series profiles for job telemetry.

Job telemetry in the paper's datasets comes either as regularly sampled
traces (Frontier: 15 s, Marconi100: 20 s) or as scalar summaries (Fugaku,
Lassen, Adastra). :class:`Profile` provides one uniform abstraction for both:
a sequence of (relative-time, value) samples that can be queried at arbitrary
simulation times. Missing data — e.g. when a rescheduled job runs longer than
its recorded telemetry — is filled with the *last known value*, exactly as
described in Sec. 3.2.2 of the paper.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from ..exceptions import DataLoaderError


class Profile:
    """A sampled telemetry profile relative to job start.

    Parameters
    ----------
    times:
        Sample times in seconds relative to the owning job's start (must be
        non-negative and strictly increasing).
    values:
        Sample values (utilization fraction, watts, ...); same length as
        ``times``.

    Notes
    -----
    Profiles are immutable after construction; the sample arrays are copied
    exactly once and marked read-only so they can be shared between a
    replayed and a rescheduled copy of the same job without aliasing hazards.
    """

    __slots__ = ("_times", "_values", "_change_times", "_grid_times", "_grid_values")

    def __init__(self, times: Iterable[float], values: Iterable[float]) -> None:
        times_arr = _owned_float_array(times)
        values_arr = _owned_float_array(values)
        if times_arr.ndim != 1 or values_arr.ndim != 1:
            raise DataLoaderError("profile times and values must be 1-D")
        if times_arr.shape != values_arr.shape:
            raise DataLoaderError(
                f"profile length mismatch: {times_arr.shape[0]} times vs "
                f"{values_arr.shape[0]} values"
            )
        if times_arr.size == 0:
            raise DataLoaderError("profile must contain at least one sample")
        if np.any(times_arr < 0):
            raise DataLoaderError("profile times must be non-negative")
        if np.any(np.diff(times_arr) <= 0):
            raise DataLoaderError("profile times must be strictly increasing")
        if np.any(~np.isfinite(values_arr)):
            raise DataLoaderError("profile values must be finite")
        self._times = times_arr
        self._values = values_arr
        self._times.setflags(write=False)
        self._values.setflags(write=False)
        # Change-point index (lazy): the relative times at which the held
        # value actually *changes* — repeated equal samples are not change
        # points — plus the compressed zero-order-hold grid over [0, inf).
        self._change_times: np.ndarray | None = None
        self._grid_times: np.ndarray | None = None
        self._grid_values: np.ndarray | None = None

    # -- basic accessors ----------------------------------------------------

    @property
    def times(self) -> np.ndarray:
        """Sample times (read-only view), seconds relative to job start."""
        return self._times

    @property
    def values(self) -> np.ndarray:
        """Sample values (read-only view)."""
        return self._values

    @property
    def duration(self) -> float:
        """Time of the last sample (seconds relative to job start)."""
        return float(self._times[-1])

    def __len__(self) -> int:
        return int(self._times.size)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"Profile(n={len(self)}, duration={self.duration:.0f}s, "
            f"mean={self.mean():.3g})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Profile):
            return NotImplemented
        return bool(
            np.array_equal(self._times, other._times)
            and np.array_equal(self._values, other._values)
        )

    def __hash__(self) -> int:
        return hash((self._times.tobytes(), self._values.tobytes()))

    # -- sampling ------------------------------------------------------------

    def value_at(self, t: float) -> float:
        """Sample the profile at relative time ``t`` (seconds).

        Uses previous-sample (zero-order) hold: the value of the most recent
        sample at or before ``t``. Times before the first sample return the
        first sample; times after the last sample return the last sample —
        this is the "missing data → last known value" rule of the paper.
        """
        return float(self.values_at(np.asarray([t]))[0])

    def values_at(self, ts: Sequence[float] | np.ndarray) -> np.ndarray:
        """Vectorised :meth:`value_at` for an array of relative times."""
        ts_arr = np.asarray(ts, dtype=float)
        idx = np.searchsorted(self._times, ts_arr, side="right") - 1
        idx = np.clip(idx, 0, len(self) - 1)
        return self._values[idx]

    # -- change points -------------------------------------------------------

    def _ensure_change_index(self) -> None:
        if self._change_times is not None:
            return
        values = self._values
        # Indices where the held value differs from the previous sample;
        # the first sample is never a change point (the hold-back rule makes
        # its value effective from t = -inf already).
        changed = np.flatnonzero(values[1:] != values[:-1]) + 1
        change_times = self._times[changed]
        grid_times = np.concatenate([[0.0], change_times])
        grid_values = np.concatenate([[values[0]], values[changed]])
        for arr in (change_times, grid_times, grid_values):
            arr.setflags(write=False)
        self._change_times = change_times
        self._grid_times = grid_times
        self._grid_values = grid_values

    def change_points(self) -> np.ndarray:
        """Relative times at which the held value changes (read-only).

        Repeated equal samples are *not* change points, so a constant
        profile — regardless of how many samples spell it out — returns an
        empty array. The first sample is never a change point either: its
        value is already in effect before it (hold-back rule).
        """
        self._ensure_change_index()
        assert self._change_times is not None  # _ensure_change_index postcondition
        return self._change_times

    def change_grid(self) -> tuple[np.ndarray, np.ndarray]:
        """Compressed zero-order-hold representation ``(times, values)``.

        ``values[i]`` is the value in effect on ``[times[i], times[i+1])``
        (the last entry extends to infinity — gap-filling rule); ``times``
        always starts at 0.0. Equivalent to, but usually much smaller than,
        the raw sample arrays; consumers index it with ``searchsorted``.
        """
        self._ensure_change_index()
        assert self._grid_times is not None and self._grid_values is not None
        return self._grid_times, self._grid_values

    def next_change_after(self, t: float) -> float | None:
        """First relative time strictly after ``t`` where the value changes.

        Returns ``None`` when the value never changes after ``t`` — for a
        constant profile, for any ``t`` at or past the last change point,
        and always for single-sample profiles. Queries before the first
        sample see the hold-back value, so the first change point is the
        earliest possible answer. Backed by the precomputed change-point
        array, so a query is one ``searchsorted``, not a scan.
        """
        self._ensure_change_index()
        change_times = self._change_times
        assert change_times is not None  # _ensure_change_index postcondition
        idx = int(np.searchsorted(change_times, t, side="right"))
        if idx >= change_times.size:
            return None
        return float(change_times[idx])

    def is_constant(self) -> bool:
        """Whether the profile holds a single value over its whole span."""
        self._ensure_change_index()
        assert self._change_times is not None  # _ensure_change_index postcondition
        return self._change_times.size == 0

    def mean(self) -> float:
        """Time-weighted mean of the profile over its recorded duration.

        For a single-sample profile this is simply that sample. For longer
        profiles the zero-order-hold interpretation makes the time-weighted
        mean a weighted sum of the samples by their holding intervals (the
        last sample gets zero weight and is therefore excluded, unless it is
        the only one).
        """
        if len(self) == 1:
            return float(self._values[0])
        dt = np.diff(self._times)
        return float(np.sum(self._values[:-1] * dt) / np.sum(dt))

    def maximum(self) -> float:
        """Maximum sample value."""
        return float(np.max(self._values))

    def minimum(self) -> float:
        """Minimum sample value."""
        return float(np.min(self._values))

    def std(self) -> float:
        """Standard deviation of the sample values (unweighted)."""
        return float(np.std(self._values))

    def integral(self, duration: float | None = None) -> float:
        """Integrate the zero-order-hold profile over ``[0, duration]``.

        With ``values`` in watts and times in seconds this yields joules.
        ``duration`` defaults to the recorded profile duration; longer
        durations extend the last known value (gap-filling rule).
        """
        if duration is None:
            duration = self.duration
        if duration < 0:
            raise DataLoaderError("integration duration must be non-negative")
        if duration == 0:
            return 0.0
        # Sample boundaries clipped to [0, duration] plus the end point.
        edges = np.concatenate([self._times[self._times < duration], [duration]])
        if edges.size <= 1:
            # Window ends before the first sample: hold the first value.
            return float(self._values[0]) * duration
        # Interval before the first sample uses the first value (head), every
        # following interval holds the value of the sample that starts it.
        head = float(self._values[0]) * float(edges[0])
        values = self.values_at(edges[:-1])
        return head + float(np.sum(values * np.diff(edges)))

    # -- transformations -----------------------------------------------------

    def scaled(self, factor: float) -> "Profile":
        """Return a copy with all values multiplied by ``factor``."""
        return Profile(self._times, self._values * factor)

    def clipped(self, start: float, end: float) -> "Profile":
        """Return the profile restricted to relative times ``[start, end]``.

        The returned profile is re-based so its first sample is at 0. A
        sample is synthesised at ``start`` using the zero-order hold value if
        no sample falls exactly on it, so the clipped profile never loses the
        value in effect at the window start.
        """
        if end <= start:
            raise DataLoaderError("clip window must have positive length")
        mask = (self._times > start) & (self._times <= end)
        times = np.concatenate([[start], self._times[mask]])
        values = np.concatenate([[self.value_at(start)], self._values[mask]])
        return Profile(times - start, values)

    def resampled(self, interval: float, duration: float | None = None) -> "Profile":
        """Return the profile resampled on a regular grid of ``interval`` s."""
        if interval <= 0:
            raise DataLoaderError("resample interval must be positive")
        if duration is None:
            duration = self.duration
        n = max(1, int(np.floor(duration / interval)) + 1)
        grid = np.arange(n, dtype=float) * interval
        return Profile(grid, self.values_at(grid))

    def summary_statistics(self) -> dict[str, float]:
        """Summary statistics used by the ML pipeline (Sec. 4.4.3)."""
        return {
            "mean": self.mean(),
            "max": self.maximum(),
            "min": self.minimum(),
            "std": self.std(),
        }


def _owned_float_array(data: Iterable[float]) -> np.ndarray:
    """Convert ``data`` to a float64 array the caller owns, copying once.

    ndarray inputs are copied directly (``astype``) — no intermediate Python
    list, which used to box every element and copy twice on large telemetry
    loads. Other iterables are materialised into a list first (``np.asarray``
    then builds a fresh buffer, so no aliasing is possible).
    """
    if isinstance(data, np.ndarray):
        return data.astype(float, copy=True)
    return np.asarray(list(data), dtype=float)


def trusted_profile(times: np.ndarray, values: np.ndarray) -> Profile:
    """Build a :class:`Profile` from arrays the caller guarantees are valid.

    Skips the validating copies of ``Profile.__init__``: the arrays are
    marked read-only and stored as-is, so sharing one ``times`` array across
    many profiles costs nothing. The caller must hand over 1-D float64
    arrays of equal length with non-negative strictly increasing times and
    finite values, and must not mutate them (or any array they view)
    afterwards. Only construction-time-guaranteed producers — the batched
    workload generator — should use this; everything else goes through
    ``Profile`` and gets the checks.
    """
    profile = Profile.__new__(Profile)
    times.setflags(write=False)
    values.setflags(write=False)
    profile._times = times
    profile._values = values
    profile._change_times = None
    profile._grid_times = None
    profile._grid_values = None
    return profile


def constant_profile(value: float, duration: float = 0.0) -> Profile:
    """Build a scalar (single- or two-sample) profile holding ``value``.

    Datasets that only provide per-job averages (Fugaku, Lassen, Adastra) are
    represented as constant profiles; ``duration`` > 0 adds a trailing sample
    so the recorded duration is explicit.
    """
    if duration > 0:
        return Profile([0.0, float(duration)], [value, value])
    return Profile([0.0], [value])
