"""The batch-job data model.

Each :class:`Job` carries the scheduling-relevant fields required by the
dataloaders (Sec. 3.2.2 of the paper): submit time, recorded start and end
times, wall-time limit and the number of requested nodes (or the exact node
set from the telemetry, for replay). On top of those it carries telemetry
profiles (CPU/GPU/memory utilization or power), user/account information for
the incentive studies, priority, and the mutable simulation state managed by
the engine (assigned nodes, simulated start/end, state machine).

Times are seconds relative to the telemetry window start as established by
the dataloader; the simulation engine works entirely in this relative frame.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field, replace
from typing import Mapping

from ..exceptions import DataLoaderError, SimulationError
from .trace import Profile, constant_profile

_job_id_counter = itertools.count(1)


def _next_job_id() -> int:
    return next(_job_id_counter)


class JobState(enum.Enum):
    """Life-cycle of a job inside the simulation."""

    #: Known to the dataloader but not yet submitted (simulation time < submit).
    PENDING = "pending"
    #: Submitted and waiting in the scheduler queue.
    QUEUED = "queued"
    #: Placed on nodes and running.
    RUNNING = "running"
    #: Finished normally (ran to its recorded/estimated duration).
    COMPLETED = "completed"
    #: Removed without running (outside the simulation window, cancelled, ...).
    DISMISSED = "dismissed"


class TraceFlag(enum.Flag):
    """Edge-case flags for jobs relative to the telemetry capture window.

    Figure 3 of the paper: jobs that started before the capture window or
    ended after it have incomplete telemetry; when such jobs are rescheduled
    the simulator has no ground truth for part of their lifetime, so they are
    flagged for downstream consumers.
    """

    NONE = 0
    #: Job started before telemetry capture began (Fig. 3, Job 1).
    STARTED_BEFORE_CAPTURE = enum.auto()
    #: Job ended after telemetry capture stopped (Fig. 3, Jobs 6-8).
    ENDED_AFTER_CAPTURE = enum.auto()
    #: Job was running when the simulation window started (prepopulated).
    PREPOPULATED = enum.auto()
    #: Telemetry shorter than the job's simulated runtime (gap-filled).
    TELEMETRY_GAP_FILLED = enum.auto()


@dataclass
class Job:
    """A single batch job.

    Immutable *workload* fields describe what the dataset recorded; mutable
    *simulation* fields (prefixed ``sim_``) are written by the resource
    manager and engine while the job is replayed or rescheduled.
    """

    # -- workload description (from the dataloader) --------------------------
    nodes_required: int
    submit_time: float
    start_time: float
    end_time: float
    wall_time_limit: float | None = None
    job_id: int = field(default_factory=_next_job_id)
    name: str = ""
    user: str = "unknown"
    account: str = "unknown"
    partition: str = "batch"
    priority: float = 0.0
    #: Exact node ids recorded in the telemetry (used in replay mode).
    recorded_nodes: tuple[int, ...] = ()
    #: Utilization profiles in [0, 1] relative to job start.
    cpu_util: Profile = field(default_factory=lambda: constant_profile(0.0))
    gpu_util: Profile = field(default_factory=lambda: constant_profile(0.0))
    mem_util: Profile = field(default_factory=lambda: constant_profile(0.0))
    #: Optional recorded per-node power profile in watts (overrides the
    #: utilization-based power model when present).
    node_power: Profile | None = None
    #: Dataset-specific extras (performance class, network counters, ...).
    metadata: dict[str, object] = field(default_factory=dict)
    trace_flags: TraceFlag = TraceFlag.NONE

    # -- simulation state (owned by the engine) -------------------------------
    state: JobState = JobState.PENDING
    assigned_nodes: tuple[int, ...] = ()
    sim_submit_time: float | None = None
    sim_start_time: float | None = None
    sim_end_time: float | None = None
    #: Scheduler-assigned score (ML policy) or effective priority.
    score: float = 0.0

    def __post_init__(self) -> None:
        if self.nodes_required <= 0:
            raise DataLoaderError(
                f"job {self.job_id}: nodes_required must be positive, "
                f"got {self.nodes_required}"
            )
        if self.end_time < self.start_time:
            raise DataLoaderError(
                f"job {self.job_id}: end_time {self.end_time} precedes "
                f"start_time {self.start_time}"
            )
        if self.submit_time > self.start_time:
            # Some datasets have clock skew; clamp rather than reject, but a
            # submit after the recorded end is irrecoverably inconsistent.
            if self.submit_time > self.end_time:
                raise DataLoaderError(
                    f"job {self.job_id}: submit_time after end_time"
                )
            self.submit_time = self.start_time
        if self.recorded_nodes and len(self.recorded_nodes) != self.nodes_required:
            raise DataLoaderError(
                f"job {self.job_id}: recorded_nodes has "
                f"{len(self.recorded_nodes)} entries but nodes_required is "
                f"{self.nodes_required}"
            )
        if self.wall_time_limit is not None and self.wall_time_limit <= 0:
            raise DataLoaderError(
                f"job {self.job_id}: wall_time_limit must be positive"
            )

    # -- derived workload properties ------------------------------------------

    @property
    def duration(self) -> float:
        """Recorded runtime in seconds (end - start from the telemetry)."""
        return self.end_time - self.start_time

    @property
    def requested_runtime(self) -> float:
        """Runtime the scheduler should assume when planning.

        The wall-time limit if available (what a real scheduler knows),
        otherwise the recorded duration (perfect estimate).
        """
        if self.wall_time_limit is not None:
            return self.wall_time_limit
        return self.duration

    @property
    def node_s(self) -> float:
        """Recorded node-seconds (nodes x runtime)."""
        return self.nodes_required * self.duration

    # -- derived simulation properties -----------------------------------------

    @property
    def is_active(self) -> bool:
        """True while the job occupies resources."""
        return self.state is JobState.RUNNING

    @property
    def is_finished(self) -> bool:
        """True once the job has left the system (completed or dismissed)."""
        return self.state in (JobState.COMPLETED, JobState.DISMISSED)

    @property
    def sim_duration(self) -> float | None:
        """Simulated runtime, if the job has both started and ended."""
        if self.sim_start_time is None or self.sim_end_time is None:
            return None
        return self.sim_end_time - self.sim_start_time

    @property
    def wait_time(self) -> float | None:
        """Simulated queue wait (start - submit), if started."""
        if self.sim_start_time is None:
            return None
        submit = self.sim_submit_time if self.sim_submit_time is not None else self.submit_time
        return max(0.0, self.sim_start_time - submit)

    @property
    def turnaround_time(self) -> float | None:
        """Simulated turnaround (end - submit), if finished."""
        if self.sim_end_time is None:
            return None
        submit = self.sim_submit_time if self.sim_submit_time is not None else self.submit_time
        return max(0.0, self.sim_end_time - submit)

    # -- state transitions (used by engine / resource manager) -----------------

    def mark_queued(self, now: float) -> None:
        """Transition PENDING → QUEUED when the job is submitted."""
        if self.state is not JobState.PENDING:
            raise SimulationError(
                f"job {self.job_id}: cannot queue from state {self.state.value}"
            )
        self.state = JobState.QUEUED
        self.sim_submit_time = now if self.sim_submit_time is None else self.sim_submit_time

    def mark_running(self, now: float, nodes: tuple[int, ...]) -> None:
        """Transition QUEUED/PENDING → RUNNING with an allocation."""
        if self.state not in (JobState.QUEUED, JobState.PENDING):
            raise SimulationError(
                f"job {self.job_id}: cannot start from state {self.state.value}"
            )
        if len(nodes) != self.nodes_required:
            raise SimulationError(
                f"job {self.job_id}: allocation of {len(nodes)} nodes does not "
                f"match request of {self.nodes_required}"
            )
        self.state = JobState.RUNNING
        self.assigned_nodes = tuple(nodes)
        self.sim_start_time = now
        if self.sim_submit_time is None:
            self.sim_submit_time = self.submit_time

    def mark_completed(self, now: float) -> None:
        """Transition RUNNING → COMPLETED, releasing is the RM's job."""
        if self.state is not JobState.RUNNING:
            raise SimulationError(
                f"job {self.job_id}: cannot complete from state {self.state.value}"
            )
        self.state = JobState.COMPLETED
        self.sim_end_time = now

    def mark_dismissed(self) -> None:
        """Remove the job from consideration without running it."""
        if self.state is JobState.RUNNING:
            raise SimulationError(
                f"job {self.job_id}: cannot dismiss a running job"
            )
        self.state = JobState.DISMISSED

    # -- telemetry access -------------------------------------------------------

    def elapsed(self, now: float) -> float:
        """Seconds since simulated start (0 if not yet started)."""
        if self.sim_start_time is None:
            return 0.0
        return max(0.0, now - self.sim_start_time)

    def utilization_at(self, now: float) -> tuple[float, float, float]:
        """(cpu, gpu, mem) utilization at simulation time ``now``.

        Profiles are indexed by elapsed time since the *simulated* start, so
        a rescheduled job replays its recorded behaviour shifted to its new
        start time (the gap-filling rule covers runs past the recorded end).
        """
        t = self.elapsed(now)
        return (
            float(self.cpu_util.value_at(t)),
            float(self.gpu_util.value_at(t)),
            float(self.mem_util.value_at(t)),
        )

    def power_profiles(self) -> tuple[Profile, ...]:
        """The profiles that determine this job's sampled power state.

        When a recorded node-power trace exists it wins over the component
        model, so memory utilization becomes irrelevant — but CPU/GPU
        utilization still feed the per-tick mean-utilization series, so they
        stay in the set. Without a power trace, power is the component model
        over all three utilization profiles.
        """
        if self.node_power is not None:
            return (self.node_power, self.cpu_util, self.gpu_util)
        return (self.cpu_util, self.gpu_util, self.mem_util)

    def next_power_change_after(self, now: float) -> float | None:
        """First simulation time strictly after ``now`` at which this job's
        sampled power state (power draw or mean-utilization contribution)
        changes, or ``None`` if it never changes again.

        Profiles are indexed by elapsed time since the simulated start, so a
        replay-backdated (off-grid) start shifts every change point with it.
        Constant profiles — and any job past its last change point, gap-
        filled with the last known value — contribute nothing, which is what
        lets the engine coalesce across them.
        """
        base = self.sim_start_time if self.sim_start_time is not None else now
        elapsed = now - base
        best: float | None = None
        for profile in self.power_profiles():
            change = profile.next_change_after(elapsed)
            if change is not None:
                candidate = base + change
                if best is None or candidate < best:
                    best = candidate
        return best

    def recorded_power_at(self, now: float) -> float | None:
        """Recorded per-node power (watts) at ``now``, if a trace exists."""
        if self.node_power is None:
            return None
        return float(self.node_power.value_at(self.elapsed(now)))

    def copy_for_simulation(self) -> "Job":
        """Return a fresh copy with pristine simulation state.

        Dataloaders build one canonical job list; each simulation run works
        on copies so that replay and reschedule runs never interfere.
        """
        return replace(
            self,
            state=JobState.PENDING,
            assigned_nodes=(),
            sim_submit_time=None,
            sim_start_time=None,
            sim_end_time=None,
            score=0.0,
            metadata=dict(self.metadata),
        )

    def static_features(self) -> Mapping[str, float]:
        """Pre-submission features available to the ML pipeline at submit time."""
        return {
            "nodes_required": float(self.nodes_required),
            "requested_runtime": float(self.requested_runtime),
            "priority": float(self.priority),
            "submit_hour": float((self.submit_time % 86400.0) / 3600.0),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"Job(id={self.job_id}, nodes={self.nodes_required}, "
            f"submit={self.submit_time:.0f}, start={self.start_time:.0f}, "
            f"end={self.end_time:.0f}, state={self.state.value})"
        )
