"""Job and telemetry-trace representations.

The telemetry package contains the data model shared by every other
subsystem: :class:`~repro.telemetry.job.Job` (one batch job with submit /
start / end times, resource request, utilization or power profiles and
account information), :class:`~repro.telemetry.trace.Profile` (a sampled
time-series with last-known-value gap filling, as used for CPU/GPU
utilization and power traces), and reader/writer support for the Standard
Workload Format (SWF) used by classic scheduling simulators.
"""

from .job import Job, JobState, TraceFlag
from .trace import Profile, constant_profile
from .swf import jobs_to_swf, parse_swf, read_swf, write_swf

__all__ = [
    "Job",
    "JobState",
    "TraceFlag",
    "Profile",
    "constant_profile",
    "jobs_to_swf",
    "parse_swf",
    "read_swf",
    "write_swf",
]
