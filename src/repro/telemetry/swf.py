"""Standard Workload Format (SWF) support.

The paper notes (Sec. 3.2.2) that the job fields required by its dataloaders
are "a standard for scheduling simulators as for example used in the standard
workload format (SWF)". This module provides a reader and writer for the SWF
so that workloads from the Parallel Workloads Archive — or exported from any
other scheduling simulator — can be loaded into S-RAPS, and synthetic
workloads can be exported for use by external simulators.

The SWF is a whitespace-separated text format with 18 fields per job and
``;``-prefixed header comments. Fields not representable in our job model are
preserved in ``Job.metadata['swf']``.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Sequence

from ..exceptions import DataLoaderError
from .job import Job
from .trace import constant_profile

#: SWF field names, in column order (Feitelson's standard).
SWF_FIELDS = (
    "job_number",
    "submit_time",
    "wait_time",
    "run_time",
    "allocated_processors",
    "average_cpu_time",
    "used_memory",
    "requested_processors",
    "requested_time",
    "requested_memory",
    "status",
    "user_id",
    "group_id",
    "executable",
    "queue_number",
    "partition_number",
    "preceding_job",
    "think_time",
)

_MISSING = -1


def parse_swf(
    text: str,
    *,
    processors_per_node: int = 1,
    default_cpu_util: float = 0.7,
) -> list[Job]:
    """Parse SWF text into a list of :class:`Job`.

    Parameters
    ----------
    text:
        Full SWF file contents.
    processors_per_node:
        Divisor used to convert the SWF processor counts to node counts
        (SWF predates the one-job-per-node convention of modern leadership
        systems). Counts are rounded up.
    default_cpu_util:
        CPU utilization assigned to jobs, since SWF carries no telemetry.
    """
    if processors_per_node <= 0:
        raise DataLoaderError(
            f"processors_per_node must be positive, got {processors_per_node}"
        )
    jobs: list[Job] = []
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith(";"):
            continue
        parts = line.split()
        if len(parts) < 18:
            raise DataLoaderError(
                f"SWF line {line_no}: expected 18 fields, got {len(parts)}"
            )
        try:
            values = dict(zip(SWF_FIELDS, (float(p) for p in parts[:18])))
        except ValueError as exc:
            raise DataLoaderError(
                f"SWF line {line_no}: non-numeric field ({exc})"
            ) from exc
        submit = values["submit_time"]
        wait = max(0.0, values["wait_time"]) if values["wait_time"] != _MISSING else 0.0
        run = values["run_time"]
        if run == _MISSING or run <= 0:
            # Jobs that never ran (cancelled) are skipped; they carry no
            # resource usage and the paper's dataloaders filter them too.
            continue
        procs = values["allocated_processors"]
        if procs == _MISSING or procs <= 0:
            procs = values["requested_processors"]
        if procs == _MISSING or procs <= 0:
            continue
        nodes = max(1, int(-(-procs // processors_per_node)))  # ceil division
        requested_time = values["requested_time"]
        wall_limit = requested_time if requested_time not in (_MISSING, 0) else None
        start = submit + wait
        job = Job(
            nodes_required=nodes,
            submit_time=submit,
            start_time=start,
            end_time=start + run,
            wall_time_limit=wall_limit,
            name=f"swf-{int(values['job_number'])}",
            user=f"user{int(values['user_id'])}" if values["user_id"] != _MISSING else "unknown",
            account=(
                f"group{int(values['group_id'])}"
                if values["group_id"] != _MISSING
                else "unknown"
            ),
            priority=float(values["queue_number"]) if values["queue_number"] != _MISSING else 0.0,
            cpu_util=constant_profile(default_cpu_util, run),
            metadata={"swf": values},
        )
        jobs.append(job)
    return jobs


def read_swf(path: str | Path, **kwargs: object) -> list[Job]:
    """Read an SWF file from disk. Keyword arguments pass to :func:`parse_swf`."""
    return parse_swf(Path(path).read_text(), **kwargs)  # type: ignore[arg-type]


def jobs_to_swf(jobs: Sequence[Job], *, processors_per_node: int = 1) -> str:
    """Serialise jobs to SWF text (using recorded, not simulated, times)."""
    buffer = io.StringIO()
    buffer.write("; SWF export from the S-RAPS reproduction\n")
    max_procs = max((j.nodes_required for j in jobs), default=0) * processors_per_node
    buffer.write(f"; MaxProcs: {max_procs}\n")
    for index, job in enumerate(sorted(jobs, key=lambda j: j.submit_time), start=1):
        wait = max(0.0, job.start_time - job.submit_time)
        fields = [
            index,
            int(job.submit_time),
            int(wait),
            int(job.duration),
            job.nodes_required * processors_per_node,
            _MISSING,
            _MISSING,
            job.nodes_required * processors_per_node,
            int(job.wall_time_limit) if job.wall_time_limit is not None else _MISSING,
            _MISSING,
            1,
            _user_number(job.user),
            _user_number(job.account),
            _MISSING,
            int(job.priority) if job.priority else _MISSING,
            _MISSING,
            _MISSING,
            _MISSING,
        ]
        buffer.write(" ".join(str(f) for f in fields) + "\n")
    return buffer.getvalue()


def write_swf(jobs: Sequence[Job], path: str | Path, **kwargs: object) -> None:
    """Write jobs to an SWF file on disk."""
    Path(path).write_text(jobs_to_swf(jobs, **kwargs))  # type: ignore[arg-type]


def _user_number(name: str) -> int:
    """Map a user/account name to a stable small integer for SWF export."""
    digits = "".join(ch for ch in name if ch.isdigit())
    if digits:
        return int(digits) % 100_000
    return abs(hash(name)) % 100_000
