"""Developer tooling: the ``@hot_path`` contract marker and ``repro-lint``.

This package has two faces with very different import weights:

* :func:`hot_path` — a zero-cost identity decorator that production code
  imports to mark functions carrying an O(log R) / O(1) complexity
  guarantee (the event-index and incremental-aggregation work of PRs 4-5).
  Importing it pulls in nothing beyond this module.
* :mod:`repro.devtools.lint` — the AST-based domain linter behind the
  ``repro-lint`` console script. It is *not* imported here, so marking a
  function ``@hot_path`` never loads linter machinery into a simulation
  process.

The marker is more than documentation: ``repro-lint`` enforces that the
body of a ``@hot_path`` function contains no ``list(...)`` / ``sorted(...)``
materialisation, no ``.pop(0)`` head-pops and no iteration over the running
set or scheduler queue — the access patterns whose cost scales with the
number of running jobs R. See the README "Static analysis & typing"
section for the rule catalogue.
"""

from __future__ import annotations

from typing import Any, Callable, TypeVar

__all__ = ["hot_path"]

_F = TypeVar("_F", bound=Callable[..., Any])

#: Attribute set on functions marked :func:`hot_path` (introspectable).
HOT_PATH_ATTRIBUTE = "__repro_hot_path__"


def hot_path(func: _F) -> _F:
    """Mark ``func`` as hot-path: per-call cost must not scale with R.

    Identity decorator — zero runtime cost beyond one attribute write at
    import time. ``repro-lint`` statically bans R-scaling access patterns
    (``list(queue)``, ``.pop(0)``, per-job iteration) inside functions
    carrying this mark; suppress a deliberate exception on its line with
    ``# repro-lint: disable=hot-path``.
    """
    setattr(func, HOT_PATH_ATTRIBUTE, True)
    return func
