"""``repro-lint``: the AST-based domain linter for the repro codebase.

Generic tools (mypy, ruff) check Python semantics; this linter checks the
*simulator's* semantics — the invariants PRs 2-6 established that would
otherwise live only in reviewers' heads:

``unit-suffix``
    Identifiers carrying a physical unit must spell it with the canonical
    suffix (``_w``, ``_kw``, ``_mw``, ``_kwh``, ``_j``, ``_s``, ``_us``,
    ``_h``, ``_c``, ``_k``); long-form spellings (``_seconds``, the
    long form of ``_w``, ...) are flagged with the canonical rename.
``unit-crossing``
    A value must not silently change unit: assigning a ``_w`` name to a
    ``_kw`` target, or adding ``_s`` to ``_h``, is flagged — cross units
    through the :mod:`repro.units` helpers instead.
``float-compare``
    No ``==`` / ``!=`` on simulated-time or power/energy quantities
    (unit-suffixed names) or against float literals; use the documented
    zero-guard / tolerance helpers in :mod:`repro.units`.
``hot-path``
    Inside a function marked ``@hot_path`` (see :mod:`repro.devtools`):
    no ``list(...)`` / ``sorted(...)`` materialisation, no ``.pop(0)``
    head-pops, no iteration over running-set / queue / jobs collections —
    the patterns whose cost scales with the number of running jobs R.
``metrics-glossary``
    Every metric name registered on a ``MetricsRegistry`` (literal
    ``.counter(...)`` / ``.gauge(...)`` / ``.histogram(...)`` names and
    the keys of ``observability_counters()`` dictionaries) must appear in
    the README metrics glossary.
``public-exceptions``
    Public functions must raise :mod:`repro.exceptions` types, not bare
    builtins — builtin raises are flagged unless every enclosing function
    and class is private (``_``-prefixed).

Any finding is suppressible on its line::

    facility_kw == 0.0  # repro-lint: disable=float-compare
    # repro-lint: disable=unit-suffix,hot-path   (several rules)
    # repro-lint: disable=all                    (every rule)

Exit status: 0 clean, 1 findings, 2 usage/configuration error.
"""

from __future__ import annotations

import argparse
import ast
import json
import re
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, Sequence

__all__ = [
    "Finding",
    "RULES",
    "lint_file",
    "lint_paths",
    "lint_source",
    "main",
]

# ---------------------------------------------------------------------------
# Rule catalogue
# ---------------------------------------------------------------------------

#: rule name -> one-line description (the ``--list-rules`` output).
RULES: dict[str, str] = {
    "unit-suffix": (
        "unit-carrying names must use the canonical suffix "
        "(_w/_kw/_mw/_kwh/_j/_s/_us/_h/_c/_k), not long-form spellings"
    ),
    "unit-crossing": (
        "values must not change unit via plain assignment or +/- between "
        "differently-suffixed names; use repro.units helpers"
    ),
    "float-compare": (
        "no ==/!= on unit-suffixed (time/power/energy/temperature) values "
        "or float literals; use repro.units zero-guards / tolerances"
    ),
    "hot-path": (
        "no list()/sorted() materialisation, .pop(0) head-pops or "
        "running-set/queue iteration inside @hot_path functions"
    ),
    "metrics-glossary": (
        "every MetricsRegistry metric name and observability_counters() "
        "key must appear in the README metrics glossary"
    ),
    "public-exceptions": (
        "public API must raise repro.exceptions types, not builtin "
        "exceptions"
    ),
}

#: Canonical unit suffix -> dimension. ``_h`` means hours, ``_c``/``_k``
#: degrees Celsius / Kelvin; the rest follow SI / engineering convention.
_UNIT_DIMENSION: dict[str, str] = {
    "w": "power",
    "kw": "power",
    "mw": "power",
    "gw": "power",
    "j": "energy",
    "kj": "energy",
    "mj": "energy",
    "kwh": "energy",
    "mwh": "energy",
    "s": "time",
    "ms": "time",
    "us": "time",
    "ns": "time",
    "min": "time",
    "h": "time",
    "c": "temperature",
    "k": "temperature",
}

#: Long-form unit suffix -> canonical replacement (the ``unit-suffix`` rule).
_NONCANONICAL_SUFFIXES: dict[str, str] = {
    "watt": "_w",
    "watts": "_w",
    "kilowatt": "_kw",
    "kilowatts": "_kw",
    "megawatt": "_mw",
    "megawatts": "_mw",
    "joule": "_j",
    "joules": "_j",
    "kilojoules": "_kj",
    "kwhr": "_kwh",
    "kwhrs": "_kwh",
    "kilowatt_hours": "_kwh",
    "sec": "_s",
    "secs": "_s",
    "second": "_s",
    "seconds": "_s",
    "msec": "_ms",
    "msecs": "_ms",
    "millis": "_ms",
    "milliseconds": "_ms",
    "usec": "_us",
    "usecs": "_us",
    "micros": "_us",
    "microseconds": "_us",
    "nanos": "_ns",
    "nanoseconds": "_ns",
    "minutes": "_min",
    "mins": "_min",
    "hrs": "_h",
    "hours": "_h",
    "celsius": "_c",
    "kelvin": "_k",
    "kelvins": "_k",
}

#: :mod:`repro.units` helper names — exempt from the suffix rules everywhere
#: (their names *are* the unit-crossing vocabulary) and recognised as the
#: sanctioned way to cross units.
_UNITS_HELPERS = frozenset(
    {
        "parse_duration",
        "format_duration",
        "watts_to_kilowatts",
        "kilowatts_to_megawatts",
        "joules_to_kilowatt_hours",
        "kilowatt_hours_to_joules",
        "node_seconds_to_node_hours",
        "celsius_to_kelvin",
        "kelvin_to_celsius",
        "is_zero_kw",
    }
)

#: Builtin exception types the ``public-exceptions`` rule bans from public
#: raise sites. ``NotImplementedError`` (abstract-method idiom) and
#: ``AssertionError`` are deliberately absent.
_BUILTIN_EXCEPTIONS = frozenset(
    {
        "ArithmeticError",
        "AttributeError",
        "BaseException",
        "Exception",
        "IndexError",
        "IOError",
        "KeyError",
        "LookupError",
        "OSError",
        "OverflowError",
        "RuntimeError",
        "StopIteration",
        "TypeError",
        "ValueError",
        "ZeroDivisionError",
    }
)

#: Identifier substrings that mark a collection as per-job sized (the
#: ``hot-path`` iteration ban).
_JOB_COLLECTION_MARKERS = ("running", "queue", "jobs")

#: Method names whose literal first argument registers a metric.
_METRIC_FACTORIES = frozenset({"counter", "gauge", "histogram"})

_SUPPRESSION_RE = re.compile(r"#\s*repro-lint:\s*disable=([a-z\-,\s]+)")


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}: [{self.rule}] {self.message}"


# ---------------------------------------------------------------------------
# Helpers shared by the visitor
# ---------------------------------------------------------------------------


def _unit_suffix(name: str) -> str | None:
    """The canonical unit suffix of an identifier, or ``None``."""
    lowered = name.lower()
    if lowered in _UNITS_HELPERS:
        return None
    _, _, tail = lowered.rpartition("_")
    if tail and tail in _UNIT_DIMENSION and lowered != tail:
        return tail
    return None


def _noncanonical_suffix(name: str) -> tuple[str, str] | None:
    """``(bad_suffix, canonical)`` when ``name`` uses a long-form unit."""
    lowered = name.lower()
    if lowered in _UNITS_HELPERS:
        return None
    for bad, canonical in _NONCANONICAL_SUFFIXES.items():
        if lowered.endswith("_" + bad):
            return bad, canonical
    return None


def _identifier_of(node: ast.expr) -> str | None:
    """The trailing identifier of a Name/Attribute expression, else None."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _suppressions(source: str) -> dict[int, frozenset[str]]:
    """Per-line suppressed rule sets from ``# repro-lint: disable=`` comments."""
    table: dict[int, frozenset[str]] = {}
    for line_no, line in enumerate(source.splitlines(), start=1):
        match = _SUPPRESSION_RE.search(line)
        if match is not None:
            rules = frozenset(
                part.strip() for part in match.group(1).split(",") if part.strip()
            )
            table[line_no] = rules
    return table


# ---------------------------------------------------------------------------
# The visitor
# ---------------------------------------------------------------------------


class _FileLinter(ast.NodeVisitor):
    """Collects findings for one parsed source file.

    Parameters
    ----------
    path:
        Display path for findings.
    readme_text:
        Full README contents the ``metrics-glossary`` rule checks against;
        ``None`` disables that rule for this file.
    skip_rules:
        Rules disabled wholesale for this file (path-based exemptions:
        ``units.py`` defines the crossing vocabulary, ``exceptions.py``
        defines the exception types).
    """

    def __init__(
        self,
        path: str,
        readme_text: str | None,
        skip_rules: frozenset[str] = frozenset(),
    ) -> None:
        self.path = path
        self.readme_text = readme_text
        self.skip_rules = skip_rules
        self.findings: list[Finding] = []
        self._func_stack: list[str] = []
        self._class_stack: list[str] = []
        self._hot_depth = 0

    # -- recording -----------------------------------------------------------

    def _flag(self, node: ast.AST, rule: str, message: str) -> None:
        if rule in self.skip_rules:
            return
        line = getattr(node, "lineno", 0)
        col = getattr(node, "col_offset", 0)
        self.findings.append(Finding(self.path, line, col, rule, message))

    # -- unit-suffix ----------------------------------------------------------

    def _check_identifier(self, name: str, node: ast.AST) -> None:
        bad = _noncanonical_suffix(name)
        if bad is not None:
            suffix, canonical = bad
            self._flag(
                node,
                "unit-suffix",
                f"{name!r} spells a unit long-form (_{suffix}); use the "
                f"canonical suffix {canonical!r}",
            )

    def visit_Name(self, node: ast.Name) -> None:
        self._check_identifier(node.id, node)
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        self._check_identifier(node.attr, node)
        self.generic_visit(node)

    def visit_arg(self, node: ast.arg) -> None:
        self._check_identifier(node.arg, node)
        self.generic_visit(node)

    # -- unit-crossing --------------------------------------------------------

    def _check_crossing(self, target: ast.expr, value: ast.expr) -> None:
        target_name = _identifier_of(target)
        value_name = _identifier_of(value)
        if target_name is None or value_name is None:
            return
        target_unit = _unit_suffix(target_name)
        value_unit = _unit_suffix(value_name)
        if target_unit and value_unit and target_unit != value_unit:
            self._flag(
                target,
                "unit-crossing",
                f"assigning {value_name!r} (_{value_unit}) to "
                f"{target_name!r} (_{target_unit}) changes unit; convert "
                "via a repro.units helper",
            )

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_crossing(target, node.value)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._check_crossing(node.target, node.value)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if isinstance(node.op, (ast.Add, ast.Sub)):
            self._check_crossing(node.target, node.value)
        self.generic_visit(node)

    def visit_BinOp(self, node: ast.BinOp) -> None:
        if isinstance(node.op, (ast.Add, ast.Sub)):
            left_name = _identifier_of(node.left)
            right_name = _identifier_of(node.right)
            if left_name is not None and right_name is not None:
                left_unit = _unit_suffix(left_name)
                right_unit = _unit_suffix(right_name)
                if left_unit and right_unit and left_unit != right_unit:
                    op = "+" if isinstance(node.op, ast.Add) else "-"
                    self._flag(
                        node,
                        "unit-crossing",
                        f"{left_name!r} (_{left_unit}) {op} {right_name!r} "
                        f"(_{right_unit}) mixes units; convert via a "
                        "repro.units helper",
                    )
        self.generic_visit(node)

    # -- float-compare --------------------------------------------------------

    @staticmethod
    def _is_float_literal(node: ast.expr) -> bool:
        if isinstance(node, ast.Constant) and isinstance(node.value, float):
            return True
        # Unary minus on a float literal (-1.0) parses as UnaryOp.
        return (
            isinstance(node, ast.UnaryOp)
            and isinstance(node.operand, ast.Constant)
            and isinstance(node.operand.value, float)
        )

    def _float_compare_reason(self, node: ast.expr) -> str | None:
        if self._is_float_literal(node):
            return "a float literal"
        name = _identifier_of(node)
        if name is not None:
            unit = _unit_suffix(name)
            if unit is not None:
                return f"{name!r} (unit-suffixed _{unit})"
        return None

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        for index, op in enumerate(node.ops):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            for side in (operands[index], operands[index + 1]):
                reason = self._float_compare_reason(side)
                if reason is not None:
                    symbol = "==" if isinstance(op, ast.Eq) else "!="
                    self._flag(
                        node,
                        "float-compare",
                        f"exact float {symbol} against {reason}; use a "
                        "repro.units zero-guard / tolerance instead",
                    )
                    break
        self.generic_visit(node)

    # -- hot-path -------------------------------------------------------------

    @staticmethod
    def _is_hot_path_decorator(node: ast.expr) -> bool:
        target = node.func if isinstance(node, ast.Call) else node
        name = _identifier_of(target)
        return name == "hot_path"

    def _mentions_job_collection(self, node: ast.expr) -> str | None:
        for child in ast.walk(node):
            name: str | None = None
            if isinstance(child, ast.Name):
                name = child.id
            elif isinstance(child, ast.Attribute):
                name = child.attr
            if name is not None:
                lowered = name.lower()
                for marker in _JOB_COLLECTION_MARKERS:
                    if marker in lowered:
                        return name
        return None

    def _check_hot_iteration(self, iter_node: ast.expr, at: ast.AST) -> None:
        if self._hot_depth == 0:
            return
        name = self._mentions_job_collection(iter_node)
        if name is not None:
            self._flag(
                at,
                "hot-path",
                f"iteration over {name!r} inside a @hot_path function "
                "scales with the running-set size; use the O(log R) "
                "event indexes instead",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_hot_iteration(node.iter, node)
        self.generic_visit(node)

    def _visit_comprehension_holder(
        self, node: ast.ListComp | ast.SetComp | ast.DictComp | ast.GeneratorExp
    ) -> None:
        for comp in node.generators:
            self._check_hot_iteration(comp.iter, node)
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension_holder
    visit_SetComp = _visit_comprehension_holder
    visit_DictComp = _visit_comprehension_holder
    visit_GeneratorExp = _visit_comprehension_holder

    # -- calls: hot-path bans + metrics-glossary ------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        if self._hot_depth > 0:
            if isinstance(node.func, ast.Name) and node.func.id in ("list", "sorted"):
                self._flag(
                    node,
                    "hot-path",
                    f"{node.func.id}(...) materialises a collection inside "
                    "a @hot_path function; hot-path cost must not scale "
                    "with the running-set size",
                )
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "pop"
                and len(node.args) == 1
                and isinstance(node.args[0], ast.Constant)
                and node.args[0].value == 0
            ):
                self._flag(
                    node,
                    "hot-path",
                    ".pop(0) is O(n) on a list inside a @hot_path function; "
                    "use a deque or an index cursor",
                )
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _METRIC_FACTORIES
            and node.args
        ):
            self._check_metric_name(node.args[0])
        self.generic_visit(node)

    def _check_metric_name(self, name_node: ast.expr) -> None:
        if self.readme_text is None or "metrics-glossary" in self.skip_rules:
            return
        if isinstance(name_node, ast.Constant) and isinstance(name_node.value, str):
            fragments = [name_node.value]
            display = name_node.value
        elif isinstance(name_node, ast.JoinedStr):
            fragments = [
                part.value
                for part in name_node.values
                if isinstance(part, ast.Constant) and isinstance(part.value, str)
            ]
            display = "".join(
                part.value
                if isinstance(part, ast.Constant) and isinstance(part.value, str)
                else "{...}"
                for part in name_node.values
            )
        else:
            return
        for fragment in fragments:
            if fragment and fragment not in self.readme_text:
                self._flag(
                    name_node,
                    "metrics-glossary",
                    f"metric name {display!r} is not documented in the "
                    "README metrics glossary",
                )
                return

    def _check_counters_dict(self, func: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        """Keys of ``observability_counters()`` return dicts must be in the README."""
        if self.readme_text is None or "metrics-glossary" in self.skip_rules:
            return
        for child in ast.walk(func):
            if not (isinstance(child, ast.Return) and isinstance(child.value, ast.Dict)):
                continue
            for key in child.value.keys:
                if (
                    isinstance(key, ast.Constant)
                    and isinstance(key.value, str)
                    and key.value not in self.readme_text
                ):
                    self._flag(
                        key,
                        "metrics-glossary",
                        f"observability counter {key.value!r} is not "
                        "documented in the README metrics glossary",
                    )

    # -- public-exceptions ----------------------------------------------------

    def _in_public_context(self) -> bool:
        scopes = self._func_stack + self._class_stack
        return all(not name.startswith("_") or name.startswith("__") for name in scopes)

    def visit_Raise(self, node: ast.Raise) -> None:
        exc = node.exc
        target = exc.func if isinstance(exc, ast.Call) else exc
        name = _identifier_of(target) if target is not None else None
        if (
            name in _BUILTIN_EXCEPTIONS
            and self._func_stack
            and self._in_public_context()
        ):
            self._flag(
                node,
                "public-exceptions",
                f"public API raises builtin {name}; raise a repro.exceptions "
                "type so callers can catch SRapsError",
            )
        self.generic_visit(node)

    # -- scope bookkeeping ----------------------------------------------------

    def _visit_function(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        self._check_identifier(node.name, node)
        if node.name == "observability_counters":
            self._check_counters_dict(node)
        hot = any(self._is_hot_path_decorator(dec) for dec in node.decorator_list)
        self._func_stack.append(node.name)
        if hot:
            self._hot_depth += 1
        self.generic_visit(node)
        if hot:
            self._hot_depth -= 1
        self._func_stack.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._class_stack.append(node.name)
        self.generic_visit(node)
        self._class_stack.pop()


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------

#: File-name-based rule exemptions: the modules *defining* a vocabulary are
#: not checked against it.
_FILE_SKIP_RULES: dict[str, frozenset[str]] = {
    "units.py": frozenset({"unit-suffix", "unit-crossing", "float-compare"}),
    "exceptions.py": frozenset({"public-exceptions"}),
}


def lint_source(
    source: str,
    *,
    path: str = "<string>",
    readme_text: str | None = None,
    skip_rules: frozenset[str] = frozenset(),
) -> list[Finding]:
    """Lint one source string; the unit tests' fixture entry point."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                path,
                exc.lineno or 0,
                (exc.offset or 1) - 1,
                "syntax-error",
                f"cannot parse: {exc.msg}",
            )
        ]
    linter = _FileLinter(path, readme_text, skip_rules)
    linter.visit(tree)
    suppressed = _suppressions(source)
    kept: list[Finding] = []
    for finding in sorted(linter.findings, key=lambda f: (f.line, f.col, f.rule)):
        rules = suppressed.get(finding.line)
        if rules is not None and (finding.rule in rules or "all" in rules):
            continue
        kept.append(finding)
    return kept


def lint_file(path: Path, *, readme_text: str | None = None) -> list[Finding]:
    """Lint one file from disk, applying the path-based rule exemptions."""
    skip = _FILE_SKIP_RULES.get(path.name, frozenset())
    return lint_source(
        path.read_text(),
        path=str(path),
        readme_text=readme_text,
        skip_rules=skip,
    )


def _iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    for path in paths:
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        else:
            yield path


def _locate_readme(explicit: str | None, targets: Sequence[Path]) -> Path | None:
    """The README the glossary rule checks: ``--readme``, else walk upward."""
    if explicit is not None:
        candidate = Path(explicit)
        return candidate if candidate.is_file() else None
    start = targets[0].resolve() if targets else Path.cwd()
    if start.is_file():
        start = start.parent
    for directory in (start, *start.parents):
        candidate = directory / "README.md"
        if candidate.is_file():
            return candidate
    return None


def lint_paths(
    paths: Sequence[Path], *, readme_text: str | None
) -> tuple[list[Finding], int]:
    """Lint every ``.py`` file under ``paths``; returns (findings, file count)."""
    findings: list[Finding] = []
    checked = 0
    for file_path in _iter_python_files(paths):
        checked += 1
        findings.extend(lint_file(file_path, readme_text=readme_text))
    return findings, checked


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "Domain linter for the repro codebase: unit-suffix discipline, "
            "float-comparison bans, @hot_path complexity guarantees, "
            "metrics-glossary coverage and exception-contract rules."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=None,
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--readme",
        default=None,
        metavar="PATH",
        help="README checked by the metrics-glossary rule "
        "(default: nearest README.md above the first target)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="findings output format (default: text)",
    )
    parser.add_argument(
        "--report",
        default=None,
        metavar="PATH",
        help="also write the findings (in the chosen format) to a file",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list the rule catalogue and exit"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        width = max(len(rule) for rule in RULES)
        for rule, description in RULES.items():
            print(f"{rule:<{width}}  {description}")
        return 0

    targets = [Path(p) for p in args.paths] if args.paths else [Path("src/repro")]
    missing = [str(p) for p in targets if not p.exists()]
    if missing:
        print(f"repro-lint: no such path: {', '.join(missing)}", file=sys.stderr)
        return 2

    readme_path = _locate_readme(args.readme, targets)
    if readme_path is None:
        print(
            "repro-lint: README.md not found (needed by the metrics-glossary "
            "rule); pass --readme PATH",
            file=sys.stderr,
        )
        return 2
    readme_text = readme_path.read_text()

    findings, checked = lint_paths(targets, readme_text=readme_text)

    if args.format == "json":
        payload = json.dumps(
            {
                "checked_files": checked,
                "findings": [vars(finding) for finding in findings],
                "rules": RULES,
            },
            indent=2,
        )
        output = payload + "\n"
    else:
        lines = [finding.format() for finding in findings]
        lines.append(
            f"repro-lint: {len(findings)} finding(s) in {checked} file(s)"
            if findings
            else f"repro-lint: clean ({checked} file(s) checked)"
        )
        output = "\n".join(lines) + "\n"

    sys.stdout.write(output)
    if args.report is not None:
        Path(args.report).write_text(output)
    return 1 if findings else 0


if __name__ == "__main__":
    raise SystemExit(main())
