"""Setuptools shim.

The project metadata lives in ``pyproject.toml``; this file exists so that
``pip install -e .`` also works on older pip/setuptools stacks (and offline
environments without the ``wheel`` package) via the legacy editable-install
path.
"""

from setuptools import setup

setup()
