"""Property-based dense-vs-event equivalence: the engine's 1e-9 contract.

PR 3 pinned dense-vs-event summary equality on a fixed 3x3 seed/policy
matrix; this module promotes that matrix into a real property test. A
strategy draws :class:`~repro.workloads.WorkloadSpec` parameters (mixed
per-sample noise, phase counts, arrival rates, scalar vs sampled telemetry,
recorded power traces) plus adversarial hand-built jobs — zero-duration
jobs, simultaneous ends, replay-backdated starts — and an optional horizon
that running jobs straddle, then asserts that the event-driven engine's
summary is equal to dense ticking at 1e-9 relative under *all three*
scheduling policies.

When ``hypothesis`` is unavailable the same property runs over a
seeded-random parameter sweep (``random.Random(2025)``), so the contract is
exercised either way; the deterministic edge-case tests at the bottom run
unconditionally.
"""

from __future__ import annotations

import random

import pytest

from repro.engine import SimulationEngine
from repro.telemetry import JobState
from repro.workloads import SyntheticWorkloadGenerator, WorkloadSpec
from repro.workloads.distributions import (
    JobSizeDistribution,
    RuntimeDistribution,
    WaveArrivals,
)

from helpers import make_job

try:
    from hypothesis import HealthCheck, given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - exercised only without hypothesis
    HAVE_HYPOTHESIS = False

POLICIES = ("replay", "fcfs", "backfill")

#: The engine contract: event-driven summaries match dense ticking to 1e-9
#: relative (matching the benchmark gate in scripts/bench_engine.py).
EQUIVALENCE_RTOL = 1e-9

#: Horizon choices: none, grid-aligned, and off-grid (tiny's tick is 15 s)
#: so truncation exercises the exact-horizon clamping path too.
HORIZONS = (None, 5400.0, 5401.7)


def _workload(tiny_system, *, seed, noise, phases, rate, scalar, power_trace):
    """A generated workload plus hand-built adversarial edge-case jobs."""
    spec = WorkloadSpec(
        sizes=JobSizeDistribution(min_nodes=1, max_nodes=8),
        runtimes=RuntimeDistribution(
            median_s=1500.0, sigma=0.7, min_s=60.0, max_s=2 * 3600.0
        ),
        arrivals=WaveArrivals(rate_per_hour=rate, amplitude=0.3),
        trace_interval_s=None if scalar else 60.0,
        generate_power_trace=power_trace and not scalar,
        phase_count_range=(1, phases),
        sample_noise=noise,
    )
    jobs = SyntheticWorkloadGenerator(tiny_system, spec, seed=seed).generate(
        2.5 * 3600.0
    )
    jobs += [
        # Zero-duration job: allocated and completed with no runtime.
        make_job(nodes=1, submit=300.0, start=420.0, duration=0.0),
        # Simultaneous ends: same start, same duration, different sizes.
        make_job(nodes=2, submit=0.0, start=120.0, duration=1000.0),
        make_job(nodes=3, submit=0.0, start=120.0, duration=1000.0),
        # Replay-backdated start far from any tick boundary.
        make_job(nodes=1, submit=0.0, start=1234.5, duration=777.25),
        # A long job that straddles every HORIZONS cut (truncated there).
        make_job(nodes=2, submit=60.0, start=90.0, duration=4 * 3600.0),
    ]
    return jobs


def _assert_dense_event_equivalent(tiny_system, jobs, policy, horizon_s, signals=None):
    sparse = SimulationEngine(
        tiny_system,
        [j.copy_for_simulation() for j in jobs],
        policy,
        horizon_s=horizon_s,
        signals=signals,
    ).run()
    dense = SimulationEngine(
        tiny_system,
        [j.copy_for_simulation() for j in jobs],
        policy,
        horizon_s=horizon_s,
        dense_ticks=True,
        signals=signals,
    ).run()
    sparse_summary, dense_summary = sparse.summary(), dense.summary()
    assert set(sparse_summary) == set(dense_summary)
    for key, dense_value in dense_summary.items():
        if key == "ticks":
            continue
        assert sparse_summary[key] == pytest.approx(
            dense_value, rel=EQUIVALENCE_RTOL, abs=1e-12
        ), f"{policy}/{key} drifted beyond 1e-9"
    # Coalescing may only ever merge samples, and per-job outcomes
    # (completed vs dismissed) must agree job for job.
    assert sparse_summary["ticks"] <= dense_summary["ticks"]
    sparse_states = {j.job_id: j.state for j in sparse.jobs}
    dense_states = {j.job_id: j.state for j in dense.jobs}
    assert sparse_states == dense_states


def _check_property(tiny_system, seed, noise, phases, rate, scalar, power_trace, horizon):
    jobs = _workload(
        tiny_system,
        seed=seed,
        noise=noise,
        phases=phases,
        rate=rate,
        scalar=scalar,
        power_trace=power_trace,
    )
    for policy in POLICIES:
        _assert_dense_event_equivalent(tiny_system, jobs, policy, horizon)


def _random_signals(tiny_system, rng, *, capped):
    """A random multi-series :class:`OperatingSignals` bundle.

    Segment boundaries deliberately mix three placements: on the 15 s tick
    grid, off-grid (x.7 fractions that never meet a tick), and coincident
    with the hand-built adversarial jobs in :func:`_workload` (starts at
    120.0, 420.0 and 1234.5 s). Cap levels are scaled from the tiny
    system's 8 kW idle floor so a good fraction of draws actually bind.
    """
    from repro.power import OperatingSignals, SystemPowerModel

    floor_kw = SystemPowerModel(tiny_system).idle_floor_kw()
    boundary_pool = [
        15.0 * rng.randint(1, 360),  # on the tick grid
        15.0 * rng.randint(1, 360),
        float(rng.randint(60, 5400)) + 0.7,  # never on a tick
        rng.choice([120.0, 420.0, 1234.5]),  # coincident with job events
    ]
    times = [0.0] + sorted(set(rng.sample(boundary_pool, rng.randint(1, 3))))

    def cap_value():
        if rng.random() < 0.25:
            return None  # an uncapped (demand-response style) window
        return floor_kw * rng.uniform(1.0, 3.0)

    return OperatingSignals(
        power_cap_kw=tuple((t, cap_value()) for t in times) if capped else None,
        price_per_kwh=tuple((t, rng.uniform(0.05, 0.5)) for t in times),
        carbon_kg_per_kwh=tuple((t, rng.uniform(0.1, 0.6)) for t in times),
    )


def _check_signals_property(tiny_system, seed, signals_seed, capped, horizon):
    signals = _random_signals(tiny_system, random.Random(signals_seed), capped=capped)
    jobs = _workload(
        tiny_system,
        seed=seed,
        noise=0.35,
        phases=3,
        rate=6.0,
        scalar=False,
        power_trace=True,
    )
    for policy in POLICIES:
        _assert_dense_event_equivalent(
            tiny_system, jobs, policy, horizon, signals=signals
        )


if HAVE_HYPOTHESIS:

    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        seed=st.integers(min_value=0, max_value=2**20),
        noise=st.sampled_from([0.0, 0.35, 1.0]),
        phases=st.integers(min_value=1, max_value=5),
        rate=st.floats(min_value=2.0, max_value=10.0, allow_nan=False),
        scalar=st.booleans(),
        power_trace=st.booleans(),
        horizon=st.sampled_from(HORIZONS),
    )
    def test_dense_event_equivalence_property(
        seed, noise, phases, rate, scalar, power_trace, horizon
    ):
        from repro.config import get_system_config

        _check_property(
            get_system_config("tiny"),
            seed, noise, phases, rate, scalar, power_trace, horizon,
        )

    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        seed=st.integers(min_value=0, max_value=2**20),
        signals_seed=st.integers(min_value=0, max_value=2**20),
        capped=st.booleans(),
        horizon=st.sampled_from(HORIZONS),
    )
    def test_dense_event_equivalence_under_signals(
        seed, signals_seed, capped, horizon
    ):
        """The 1e-9 contract extends to cap/price/carbon signals: every
        signal step bounds a coalesced interval, capped and uncapped."""
        from repro.config import get_system_config

        _check_signals_property(
            get_system_config("tiny"), seed, signals_seed, capped, horizon
        )

else:  # pragma: no cover - seeded-random fallback without hypothesis

    def _fallback_cases(count=8):
        rng = random.Random(2025)
        return [
            (
                rng.randrange(2**20),
                rng.choice([0.0, 0.35, 1.0]),
                rng.randint(1, 5),
                rng.uniform(2.0, 10.0),
                rng.random() < 0.5,
                rng.random() < 0.5,
                rng.choice(HORIZONS),
            )
            for _ in range(count)
        ]

    @pytest.mark.parametrize("case", _fallback_cases())
    def test_dense_event_equivalence_property(tiny_system, case):
        _check_property(tiny_system, *case)

    def _fallback_signal_cases(count=6):
        rng = random.Random(2026)
        return [
            (
                rng.randrange(2**20),
                rng.randrange(2**20),
                rng.random() < 0.7,
                rng.choice(HORIZONS),
            )
            for _ in range(count)
        ]

    @pytest.mark.parametrize("case", _fallback_signal_cases())
    def test_dense_event_equivalence_under_signals(tiny_system, case):
        _check_signals_property(tiny_system, *case)


class TestEdgeCaseEquivalence:
    """Deterministic slices of the property, kept unconditional so a
    failure reproduces without hypothesis installed."""

    @pytest.mark.parametrize("policy", POLICIES)
    def test_zero_duration_jobs_complete_without_drift(self, tiny_system, policy):
        jobs = [
            make_job(nodes=1, submit=0.0, start=0.0, duration=0.0),
            make_job(nodes=4, submit=0.0, start=15.0, duration=0.0),
            make_job(nodes=2, submit=0.0, start=30.0, duration=600.0),
        ]
        _assert_dense_event_equivalent(tiny_system, jobs, policy, None)
        result = SimulationEngine(
            tiny_system, [j.copy_for_simulation() for j in jobs], policy
        ).run()
        assert all(j.state is JobState.COMPLETED for j in result.jobs)
        zero = [j for j in result.jobs if j.duration == 0.0]
        assert all(j.sim_duration == 0.0 for j in zero)

    @pytest.mark.parametrize("policy", POLICIES)
    def test_simultaneous_ends_release_together(self, tiny_system, policy):
        jobs = [
            make_job(nodes=n, submit=0.0, start=60.0, duration=900.0)
            for n in (1, 2, 3, 4)
        ]
        _assert_dense_event_equivalent(tiny_system, jobs, policy, None)

    @pytest.mark.parametrize("policy", POLICIES)
    @pytest.mark.parametrize("horizon", [h for h in HORIZONS if h is not None])
    def test_horizon_straddling_release(self, tiny_system, policy, horizon):
        # One job ends inside the window, one is cut by the horizon, one is
        # never started — dense and event mode must agree on all three.
        jobs = [
            make_job(nodes=2, submit=0.0, start=0.0, duration=1800.0),
            make_job(nodes=4, submit=0.0, start=300.0, duration=4 * 3600.0),
            make_job(nodes=1, submit=3 * 3600.0, start=3 * 3600.0, duration=60.0),
        ]
        _assert_dense_event_equivalent(tiny_system, jobs, policy, horizon)


def _assert_batched_perjob_equivalent(tiny_system, jobs, policy, horizon_s=None):
    """vectorized=True vs vectorized=False: same 1e-9 contract as dense-vs-event."""
    batched = SimulationEngine(
        tiny_system,
        [j.copy_for_simulation() for j in jobs],
        policy,
        horizon_s=horizon_s,
    ).run()
    perjob = SimulationEngine(
        tiny_system,
        [j.copy_for_simulation() for j in jobs],
        policy,
        horizon_s=horizon_s,
        vectorized=False,
    ).run()
    batched_summary, perjob_summary = batched.summary(), perjob.summary()
    assert set(batched_summary) == set(perjob_summary)
    for key, value in perjob_summary.items():
        assert batched_summary[key] == pytest.approx(
            value, rel=EQUIVALENCE_RTOL, abs=1e-12
        ), f"{policy}/{key} drifted beyond 1e-9 between batched and per-job"


class TestBurstArrivalEquivalence:
    """Thousands-of-same-tick-releases shape, scaled to the tiny system.

    Mirrors the ``engine_burst_arrival`` benchmark: every burst submits a
    pile of jobs in one tick, so the batched job-start construction builds
    many states per refresh. Dense-vs-event and batched-vs-per-job must
    both hold to the 1e-9 contract, including when a horizon cuts a burst.
    """

    def _burst_jobs(self, tiny_system, *, seed=11, piecewise=True):
        from repro.workloads import burst_arrival_spec
        from repro.workloads.distributions import (
            BurstArrivals,
            JobSizeDistribution,
            RuntimeDistribution,
        )
        from dataclasses import replace

        spec = replace(
            burst_arrival_spec(),
            sizes=JobSizeDistribution(min_nodes=1, max_nodes=2),
            runtimes=RuntimeDistribution(
                median_s=900.0, sigma=0.4, min_s=300.0, max_s=1800.0
            ),
            arrivals=BurstArrivals(jobs_per_burst=30, burst_interval_s=3600.0),
            trace_interval_s=300.0 if piecewise else None,
        )
        return SyntheticWorkloadGenerator(tiny_system, spec, seed=seed).generate(
            2.5 * 3600.0
        )

    @pytest.mark.parametrize("policy", POLICIES)
    def test_dense_event_equivalence_on_bursts(self, tiny_system, policy):
        jobs = self._burst_jobs(tiny_system)
        _assert_dense_event_equivalent(tiny_system, jobs, policy, None)

    @pytest.mark.parametrize("policy", POLICIES)
    def test_batched_perjob_equivalence_on_bursts(self, tiny_system, policy):
        jobs = self._burst_jobs(tiny_system)
        _assert_batched_perjob_equivalent(tiny_system, jobs, policy)

    @pytest.mark.parametrize("policy", POLICIES)
    def test_burst_cut_by_horizon(self, tiny_system, policy):
        # The horizon falls inside the second burst's drain: truncation,
        # dismissal and the final partial sample must agree across all
        # four engine variants.
        jobs = self._burst_jobs(tiny_system, piecewise=False)
        _assert_dense_event_equivalent(tiny_system, jobs, policy, 5401.7)
        _assert_batched_perjob_equivalent(tiny_system, jobs, policy, 5401.7)
