"""Monte Carlo batch kernel: batched replicas must equal serial runs.

The batch engine's whole contract is replica isolation on a shared
substrate: ``run_batch(request, seeds)[i]`` must reproduce
``run_request(replace(request, seed=seeds[i]))`` within 1e-9 per summary
metric (and job-for-job in outcome states) for every policy, with and
without operating-signal caps. This module pins that contract three ways:

* fixed-matrix equivalence over all three policies x capped/uncapped,
* a hypothesis property over random :class:`WorkloadSpec` draws and
  replica counts 1..8 (seeded-random fallback when hypothesis is absent),
* the sweep driver's ``batch_size`` fast path: a batched sweep's store
  must match a per-run sweep's store row for row, with resume, failure
  capture and task accounting intact.
"""

from __future__ import annotations

import math
import random
from dataclasses import replace

import pytest

from repro.config import get_system_config
from repro.engine import BatchSimulationEngine, run_batch
from repro.exceptions import SimulationError
from repro.obs import ProgressReporter
from repro.power import OperatingSignals, SystemPowerModel
from repro.sweep import RunRequest, run_request, run_sweep
from repro.sweep.spec import SweepSpec
from repro.sweep.store import ResultsStore
from repro.workloads import SyntheticWorkloadGenerator, WorkloadSpec, busy_trace_spec
from repro.workloads.distributions import (
    JobSizeDistribution,
    RuntimeDistribution,
    WaveArrivals,
)

try:
    from hypothesis import HealthCheck, given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - exercised only without hypothesis
    HAVE_HYPOTHESIS = False

POLICIES = ("replay", "fcfs", "backfill")

EQUIVALENCE_RTOL = 1e-9


def _assert_summaries_equal(batched, serial, label):
    batched_summary, serial_summary = batched.summary(), serial.summary()
    assert set(batched_summary) == set(serial_summary)
    for key, serial_value in serial_summary.items():
        if key == "ticks":
            continue
        if isinstance(serial_value, float) and not math.isfinite(serial_value):
            assert batched_summary[key] == serial_value, f"{label}/{key}"
            continue
        assert batched_summary[key] == pytest.approx(
            serial_value, rel=EQUIVALENCE_RTOL, abs=1e-12
        ), f"{label}/{key} drifted beyond 1e-9 between batched and serial"
    # Per-job outcomes must agree job for job (relative job order is
    # deterministic; absolute ids differ because the counter is global).
    assert [j.state for j in batched.jobs] == [j.state for j in serial.jobs]


def _assert_batch_matches_serial(request, seeds):
    batched = run_batch(request, seeds)
    assert len(batched) == len(seeds)
    for seed, batched_result in zip(seeds, batched):
        serial_result = run_request(replace(request, seed=seed))
        assert batched_result.seed == seed
        _assert_summaries_equal(
            batched_result, serial_result, f"{request.policy}/seed={seed}"
        )


def _cap_signals(system):
    """A stepped cap that actually binds on tiny, plus price/carbon."""
    floor_kw = SystemPowerModel(system).idle_floor_kw()
    return OperatingSignals(
        power_cap_kw=((0.0, 3.0 * floor_kw), (3600.0, 1.4 * floor_kw)),
        price_per_kwh=((0.0, 0.05), (5400.0, 0.22)),
        carbon_kg_per_kwh=((0.0, 0.35),),
    )


class TestRunBatchEquivalence:
    """Fixed-matrix batch-vs-serial equality: 3 policies x capped/uncapped."""

    @pytest.mark.parametrize("policy", POLICIES)
    @pytest.mark.parametrize("capped", [False, True])
    def test_busy_trace_matches_serial(self, tiny_system, policy, capped):
        request = RunRequest(
            system="tiny",
            policy=policy,
            duration_s=2.0 * 3600.0,
            spec=busy_trace_spec(),
            signals=_cap_signals(tiny_system) if capped else None,
        )
        _assert_batch_matches_serial(request, [7, 8, 9])

    def test_single_replica_and_default_policy(self):
        request = RunRequest(system="tiny", policy=None, duration_s=3600.0)
        _assert_batch_matches_serial(request, [5])

    def test_empty_seed_list(self):
        request = RunRequest(system="tiny", duration_s=3600.0)
        assert run_batch(request, []) == []

    def test_horizon_truncation_matches_serial(self, tiny_system):
        request = RunRequest(
            system="tiny",
            policy="backfill",
            duration_s=2.0 * 3600.0,
            spec=busy_trace_spec(),
            horizon_s=5401.7,  # off-grid: exercises the exact clamp
        )
        _assert_batch_matches_serial(request, [1, 2])


class TestBatchEngine:
    """Engine-level construction, isolation guards and counters."""

    def _workloads(self, tiny_system, seeds, duration_s=3600.0):
        spec = busy_trace_spec()
        generator = SyntheticWorkloadGenerator(tiny_system, spec, seed=seeds[0])
        return generator.generate_batch(list(seeds), duration_s)

    def test_rejects_scheduler_instances(self, tiny_system):
        from repro.engine import get_scheduler

        workloads = self._workloads(tiny_system, [0])
        with pytest.raises(SimulationError, match="policy name"):
            BatchSimulationEngine(tiny_system, workloads, get_scheduler("fcfs"))

    def test_rejects_seed_count_mismatch(self, tiny_system):
        workloads = self._workloads(tiny_system, [0, 1])
        with pytest.raises(SimulationError, match="2 workloads but 3 seeds"):
            BatchSimulationEngine(tiny_system, workloads, "fcfs", seeds=[0, 1, 2])

    def test_rejects_progress_length_mismatch(self, tiny_system):
        workloads = self._workloads(tiny_system, [0, 1])
        engine = BatchSimulationEngine(tiny_system, workloads, "fcfs", seeds=[0, 1])
        with pytest.raises(SimulationError, match="progress"):
            engine.run(progress=[None])

    def test_observability_counters(self, tiny_system):
        seeds = [3, 4, 5]
        workloads = self._workloads(tiny_system, seeds)
        engine = BatchSimulationEngine(tiny_system, workloads, "fcfs", seeds=seeds)
        engine.run()
        counters = engine.observability_counters()
        assert counters["engine_batch_replicas_total"] == 3
        assert counters["engine_batch_shared_builds_total"] == 1
        # Every job start in every replica was served from the shared pool.
        jobs_total = sum(len(workload) for workload in workloads)
        assert counters["engine_batch_prebuilt_state_hits_total"] == jobs_total
        for replica in engine.engines:
            per_replica = replica.power_aggregator.observability_counters()
            assert per_replica["prebuilt_state_hits"] > 0

    def test_results_in_replica_order(self, tiny_system):
        seeds = [11, 7, 23]
        workloads = self._workloads(tiny_system, seeds)
        engine = BatchSimulationEngine(tiny_system, workloads, "fcfs", seeds=seeds)
        results = engine.run()
        assert [result.seed for result in results] == seeds
        assert engine.replicas_done == 3


class TestBatchProgress:
    """Per-replica heartbeats fold the batch's done/total into snapshots."""

    def test_replica_tagged_snapshots(self):
        request = RunRequest(
            system="tiny",
            policy="fcfs",
            duration_s=3600.0,
            spec=busy_trace_spec(),
        )
        seeds = [0, 1]
        beats = {0: [], 1: []}
        reporters = [
            ProgressReporter(
                0.0, callback=(lambda i: lambda snap: beats[i].append(snap))(index)
            )
            for index in range(len(seeds))
        ]
        run_batch(request, seeds, progress=reporters)
        for index, snapshots in beats.items():
            assert snapshots, f"replica {index} emitted no heartbeats"
            final = snapshots[-1]
            assert final.final and final.fraction_done == 1.0
            assert final.replica_index == index
            assert final.replicas_total == len(seeds)
            assert 1 <= final.replicas_done <= len(seeds)
        # The last replica to finish reports the full done count.
        assert max(b[-1].replicas_done for b in beats.values()) == len(seeds)

    def test_format_line_shows_replicas(self):
        from repro.obs.progress import ProgressSnapshot

        snapshot = ProgressSnapshot(
            wall_s=1.0,
            sim_time_s=60.0,
            sim_elapsed_s=60.0,
            fraction_done=0.5,
            steps=4,
            steps_per_s=4.0,
            eta_s=None,
            running_jobs=1,
            queued_jobs=0,
            jobs_done=1,
            jobs_total=2,
            replica_index=1,
            replicas_done=1,
            replicas_total=4,
        )
        assert "replicas 1/4" in snapshot.format_line()
        plain = replace(snapshot, replicas_done=None, replicas_total=None)
        assert "replicas" not in plain.format_line()


def _random_spec(*, noise, phases, rate, scalar):
    return WorkloadSpec(
        sizes=JobSizeDistribution(min_nodes=1, max_nodes=8),
        runtimes=RuntimeDistribution(
            median_s=1200.0, sigma=0.7, min_s=60.0, max_s=3600.0
        ),
        arrivals=WaveArrivals(rate_per_hour=rate, amplitude=0.3),
        trace_interval_s=None if scalar else 60.0,
        generate_power_trace=not scalar,
        phase_count_range=(1, phases),
        sample_noise=noise,
    )


def _check_batch_property(seed, noise, phases, rate, scalar, n_replicas, capped):
    system = get_system_config("tiny")
    spec = _random_spec(noise=noise, phases=phases, rate=rate, scalar=scalar)
    seeds = [seed + offset for offset in range(n_replicas)]
    for policy in POLICIES:
        request = RunRequest(
            system="tiny",
            policy=policy,
            duration_s=2.0 * 3600.0,
            spec=spec,
            signals=_cap_signals(system) if capped else None,
        )
        _assert_batch_matches_serial(request, seeds)


if HAVE_HYPOTHESIS:

    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        seed=st.integers(min_value=0, max_value=2**20),
        noise=st.sampled_from([0.0, 0.35, 1.0]),
        phases=st.integers(min_value=1, max_value=5),
        rate=st.floats(min_value=2.0, max_value=8.0, allow_nan=False),
        scalar=st.booleans(),
        n_replicas=st.integers(min_value=1, max_value=8),
        capped=st.booleans(),
    )
    def test_batch_equals_serial_property(
        seed, noise, phases, rate, scalar, n_replicas, capped
    ):
        """Batch-vs-serial equality at 1e-9 over random workload specs,
        replica counts 1..8, all three policies, capped and uncapped."""
        _check_batch_property(seed, noise, phases, rate, scalar, n_replicas, capped)

else:  # pragma: no cover - seeded-random fallback without hypothesis

    def _fallback_batch_cases(count=6):
        rng = random.Random(2027)
        return [
            (
                rng.randrange(2**20),
                rng.choice([0.0, 0.35, 1.0]),
                rng.randint(1, 5),
                rng.uniform(2.0, 8.0),
                rng.random() < 0.5,
                rng.randint(1, 8),
                rng.random() < 0.5,
            )
            for _ in range(count)
        ]

    @pytest.mark.parametrize("case", _fallback_batch_cases())
    def test_batch_equals_serial_property(case):
        _check_batch_property(*case)


def _smoke_spec(n_seeds=5, policies=("fcfs", "backfill")):
    return SweepSpec(
        name="batch-sweep-test",
        duration_s=3600.0,
        systems=("tiny",),
        policies=tuple(policies),
        workloads=("busy_trace",),
        n_seeds=n_seeds,
        root_seed=13,
    )


def _rows(path):
    with ResultsStore(path) as store:
        return {row.run_id: row for row in store.runs()}


class TestSweepBatchIntegration:
    """``run_sweep(batch_size=...)``: grouping, store equality, resume."""

    def test_batched_store_matches_serial_store(self, tmp_path):
        spec = _smoke_spec()
        serial_path = tmp_path / "serial.sqlite"
        batched_path = tmp_path / "batched.sqlite"
        serial = run_sweep(
            spec, serial_path, workers=1, heartbeat_interval_s=None
        )
        batched = run_sweep(
            spec, batched_path, workers=1, batch_size=4, heartbeat_interval_s=None
        )
        assert serial.completed == batched.completed == spec.total_runs
        assert serial.batched_tasks == 0
        assert serial.per_run_tasks == spec.total_runs
        # 2 policies x 5 seeds at batch_size=4: each policy groups into
        # one 4-replica batch plus one leftover per-run task.
        assert batched.batched_tasks == 2
        assert batched.per_run_tasks == 2
        serial_rows, batched_rows = _rows(serial_path), _rows(batched_path)
        assert serial_rows.keys() == batched_rows.keys()
        for run_id, serial_row in serial_rows.items():
            batched_row = batched_rows[run_id]
            assert batched_row.status == serial_row.status == "completed"
            for key, value in serial_row.summary.items():
                assert batched_row.summary[key] == pytest.approx(
                    value, rel=EQUIVALENCE_RTOL, abs=1e-12
                ), f"{run_id}/{key}"

    def test_batched_sweep_resumes(self, tmp_path):
        spec = _smoke_spec(n_seeds=3, policies=("fcfs",))
        store_path = tmp_path / "resume.sqlite"
        first = run_sweep(
            spec, store_path, workers=1, batch_size=3, heartbeat_interval_s=None
        )
        assert first.completed == spec.total_runs
        again = run_sweep(
            spec, store_path, workers=1, batch_size=3, heartbeat_interval_s=None
        )
        assert again.skipped == spec.total_runs
        assert again.executed == 0

    def test_pooled_batched_sweep(self, tmp_path):
        spec = _smoke_spec(n_seeds=4, policies=("fcfs",))
        outcome = run_sweep(
            spec,
            tmp_path / "pooled.sqlite",
            workers=2,
            batch_size=2,
            chunk_size=1,
            heartbeat_interval_s=None,
        )
        assert outcome.completed == spec.total_runs
        assert outcome.failed == 0
        assert outcome.batched_tasks == 2

    def test_batch_failure_fails_every_replica(self, tmp_path, monkeypatch):
        from repro.sweep import driver

        def _boom(request, seeds, *, progress=None):
            raise RuntimeError("kernel exploded")

        monkeypatch.setattr(driver, "run_batch", _boom)
        spec = _smoke_spec(n_seeds=2, policies=("fcfs",))
        store_path = tmp_path / "failed.sqlite"
        outcome = run_sweep(
            spec, store_path, workers=1, batch_size=2, heartbeat_interval_s=None
        )
        assert outcome.failed == spec.total_runs
        for row in _rows(store_path).values():
            assert row.status == "failed"
            assert "kernel exploded" in row.error

    def test_batch_size_validation(self, tmp_path):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError, match="batch_size"):
            run_sweep(_smoke_spec(), tmp_path / "x.sqlite", batch_size=0)


class TestGroupTasks:
    """The compatibility grouping behind ``batch_size``."""

    def _payloads(self, spec):
        from repro.sweep.driver import _RunPayload

        runs = spec.materialize()
        payloads = {
            run.run_id: _RunPayload(
                run_id=run.run_id,
                sweep=run.sweep,
                run_index=run.run_index,
                workload=run.workload,
                request=run.request.to_json_dict(),
                progress_interval_s=None,
            )
            for run in runs
        }
        return runs, payloads

    def test_groups_only_seed_compatible_requests(self):
        from repro.sweep.driver import _BatchPayload, _group_tasks

        runs, payloads = self._payloads(_smoke_spec(n_seeds=3))
        tasks, batched, per_run = _group_tasks(runs, payloads, batch_size=8)
        # 2 policies x 3 seeds: one batch per policy, nothing per-run.
        assert batched == 2 and per_run == 0
        for task in tasks:
            assert isinstance(task, _BatchPayload)
            policies = {payload.request["policy"] for payload in task.payloads}
            assert len(policies) == 1
            seeds = [payload.request["seed"] for payload in task.payloads]
            assert len(set(seeds)) == len(seeds)

    def test_batch_size_one_preserves_order(self):
        from repro.sweep.driver import _group_tasks

        runs, payloads = self._payloads(_smoke_spec(n_seeds=2))
        tasks, batched, per_run = _group_tasks(runs, payloads, batch_size=1)
        assert batched == 0 and per_run == len(runs)
        assert [task.run_id for task in tasks] == [run.run_id for run in runs]

    def test_equal_except_seed(self):
        from repro.sweep.driver import _equal_except_seed

        a = {"system": "tiny", "policy": "fcfs", "seed": 1}
        assert _equal_except_seed(a, {**a, "seed": 9})
        assert not _equal_except_seed(a, {**a, "policy": "backfill"})
        assert not _equal_except_seed(a, {"system": "tiny", "seed": 1})


class TestSweepCli:
    """The ``--batch-size`` flag and the batched-task outcome line."""

    def test_parser_accepts_batch_size(self):
        from repro.sweep.cli import build_parser

        parser = build_parser()
        args = parser.parse_args(["run", "spec.json", "--store", "s.sqlite"])
        assert args.batch_size == 1
        args = parser.parse_args(
            ["run", "spec.json", "--store", "s.sqlite", "--batch-size", "4"]
        )
        assert args.batch_size == 4

    def test_run_command_reports_task_counts(self, tmp_path, capsys):
        import json

        from repro.sweep.cli import main

        spec_path = tmp_path / "spec.json"
        spec_path.write_text(
            json.dumps(
                {
                    "name": "cli-batch",
                    "duration": "1h",
                    "systems": ["tiny"],
                    "policies": ["fcfs"],
                    "workloads": ["busy_trace"],
                    "n_seeds": 3,
                    "root_seed": 5,
                }
            )
        )
        code = main(
            [
                "run",
                str(spec_path),
                "--store",
                str(tmp_path / "cli.sqlite"),
                "--workers",
                "1",
                "--batch-size",
                "3",
                "--heartbeat",
                "0",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "tasks: 1 batched + 0 per-run" in out
