"""End-to-end tests for the simulation engine and run_simulation."""

from __future__ import annotations

import pytest

from repro import run_simulation
from repro.config import get_system_config
from repro.engine import FCFSScheduler, SimulationEngine, parse_duration
from repro.exceptions import SchedulingError, SRapsError
from repro.telemetry import JobState, Profile
from repro.workloads import (
    SyntheticWorkloadGenerator,
    WorkloadSpec,
    busy_trace_spec,
    default_workload_spec,
)
from repro.workloads.distributions import (
    JobSizeDistribution,
    RuntimeDistribution,
    WaveArrivals,
)

from helpers import make_job


class TestParseDuration:
    @pytest.mark.parametrize(
        "value, expected",
        [
            ("3600", 3600.0),
            (1800, 1800.0),
            ("90m", 5400.0),
            ("6h", 21600.0),
            ("1d", 86400.0),
            ("30s", 30.0),
            ("2.5h", 9000.0),
            # Inherited from the canonical repro.units parser:
            ("1:30:00", 5400.0),
            ("2-12:00:00", 216000.0),
            ("2 weeks", 1209600.0),
        ],
    )
    def test_valid(self, value, expected):
        assert parse_duration(value) == pytest.approx(expected)

    @pytest.mark.parametrize("value", ["", "h6", "abc", "-5m", "0"])
    def test_invalid(self, value):
        # Garbage raises ConfigurationError (from repro.units), non-positive
        # values SimulationError; both are SRapsError.
        with pytest.raises(SRapsError):
            parse_duration(value)


class TestEngineSmoke:
    @pytest.mark.parametrize("policy", ["replay", "fcfs", "backfill"])
    def test_synthetic_run_completes(self, tiny_system, tiny_workload, policy):
        engine = SimulationEngine(tiny_system, tiny_workload, policy)
        result = engine.run()
        # Every job drains through the system...
        assert all(j.state is JobState.COMPLETED for j in result.jobs)
        # ...consuming energy at a plausible PUE.
        summary = result.summary()
        assert summary["total_energy_kwh"] > 0
        assert 1.0 <= summary["mean_pue"] <= 2.0
        assert 1.0 <= summary["max_pue"] <= 2.0
        assert 0.0 < summary["mean_utilization"] <= 1.0
        assert summary["node_hours"] > 0

    def test_engine_does_not_mutate_input_jobs(self, tiny_system, tiny_workload):
        SimulationEngine(tiny_system, tiny_workload, "fcfs").run()
        assert all(j.state is JobState.PENDING for j in tiny_workload)
        assert all(j.sim_start_time is None for j in tiny_workload)

    def test_fixed_seed_is_deterministic(self):
        a = run_simulation(system="tiny", policy="fcfs", duration="3h", seed=11)
        b = run_simulation(system="tiny", policy="fcfs", duration="3h", seed=11)
        assert a.summary() == b.summary()

    def test_releases_happen_before_allocations(self, tiny_system):
        # Back-to-back full-system jobs: the second can only ever start if
        # the engine releases the first within the same tick it reallocates.
        jobs = [
            make_job(nodes=32, submit=0.0, start=0.0, duration=300.0),
            make_job(nodes=32, submit=0.0, start=300.0, duration=300.0),
        ]
        result = SimulationEngine(tiny_system, jobs, "fcfs").run()
        assert all(j.state is JobState.COMPLETED for j in result.jobs)
        first, second = sorted(
            result.jobs, key=lambda j: j.sim_start_time or 0.0
        )
        assert second.sim_start_time == pytest.approx(
            (first.sim_start_time or 0.0) + 300.0
        )

    def test_impossible_request_is_dismissed(self, tiny_system):
        jobs = [
            make_job(nodes=33, submit=0.0),  # tiny has 32 nodes
            make_job(nodes=2, submit=0.0),
        ]
        result = SimulationEngine(tiny_system, jobs, "fcfs").run()
        oversize = next(j for j in result.jobs if j.nodes_required == 33)
        normal = next(j for j in result.jobs if j.nodes_required == 2)
        assert oversize.state is JobState.DISMISSED
        assert "capacity" in str(oversize.metadata.get("dismiss_reason"))
        assert normal.state is JobState.COMPLETED

    def test_horizon_dismisses_leftover_jobs(self, tiny_system):
        jobs = [
            make_job(nodes=1, submit=0.0, duration=600.0),
            make_job(nodes=1, submit=7200.0, start=7200.0, duration=600.0),
        ]
        engine = SimulationEngine(tiny_system, jobs, "fcfs", horizon_s=3600.0)
        result = engine.run()
        states = sorted(j.state.value for j in result.jobs)
        assert states == ["completed", "dismissed"]

    def test_horizon_truncates_in_flight_jobs(self, tiny_system):
        # A job still running at the horizon must not vanish from the
        # accounting: it is truncated and counted as completed.
        jobs = [make_job(nodes=2, submit=0.0, duration=86400.0)]
        result = SimulationEngine(tiny_system, jobs, "fcfs", horizon_s=1800.0).run()
        job = result.jobs[0]
        assert job.state is JobState.COMPLETED
        assert job.metadata.get("truncated_by_horizon") is True
        assert (job.sim_duration or 0.0) < 86400.0
        summary = result.summary()
        assert summary["jobs_completed"] + summary["jobs_dismissed"] == 1.0
        assert summary["node_hours"] == pytest.approx(2 * (job.sim_duration or 0) / 3600.0)

    def test_replay_long_recorded_wait_does_not_trip_loop_guard(self, tiny_system):
        # Replay legitimately idles until the recorded start, which can far
        # exceed the sum-of-runtimes bound a reschedule policy would obey.
        job = make_job(nodes=1, submit=0.0, start=50000.0, duration=600.0)
        result = SimulationEngine(tiny_system, [job], "replay").run()
        assert result.jobs[0].state is JobState.COMPLETED
        assert result.jobs[0].sim_start_time == pytest.approx(50000.0)

    def test_empty_workload(self, tiny_system):
        result = SimulationEngine(tiny_system, [], "fcfs").run()
        assert result.summary()["ticks"] == 0.0

    def test_down_nodes_shrink_capacity(self, tiny_system):
        system = tiny_system.with_overrides(down_node_fraction=0.25)
        jobs = [make_job(nodes=32, submit=0.0)]  # no longer fits: 24 up nodes
        result = SimulationEngine(system, jobs, "fcfs", seed=3).run()
        assert result.jobs[0].state is JobState.DISMISSED


def _summaries_equal(sparse: dict, dense: dict, *, rel: float = 1e-6) -> None:
    """Assert two run summaries agree on everything except the sample count."""
    assert set(sparse) == set(dense)
    for key, dense_value in dense.items():
        if key == "ticks":
            continue
        assert sparse[key] == pytest.approx(dense_value, rel=rel, abs=1e-9), key


class TestEventDrivenEquivalence:
    """Event-driven coalescing must be invisible in every summary metric."""

    @pytest.mark.parametrize("seed", [3, 11, 29])
    def test_synthetic_backfill_summary_matches_dense(self, tiny_system, seed):
        generator = SyntheticWorkloadGenerator(
            tiny_system, default_workload_spec(tiny_system), seed=seed
        )
        jobs = generator.generate(6 * 3600.0)
        sparse = SimulationEngine(tiny_system, jobs, "backfill", seed=seed).run()
        dense = SimulationEngine(
            tiny_system, jobs, "backfill", seed=seed, dense_ticks=True
        ).run()
        _summaries_equal(sparse.summary(), dense.summary())
        # Coalescing is bounded by events and profile breakpoints, so the
        # sample count can at best shrink, never grow.
        assert sparse.summary()["ticks"] <= dense.summary()["ticks"]

    @pytest.mark.parametrize("policy", ["fcfs", "replay"])
    def test_other_policies_match_dense(self, tiny_system, policy):
        generator = SyntheticWorkloadGenerator(
            tiny_system, default_workload_spec(tiny_system), seed=5
        )
        jobs = generator.generate(4 * 3600.0)
        sparse = SimulationEngine(tiny_system, jobs, policy).run()
        dense = SimulationEngine(tiny_system, jobs, policy, dense_ticks=True).run()
        _summaries_equal(sparse.summary(), dense.summary())

    def test_idle_heavy_workload_skips_ten_x_steps(self, tiny_system):
        # Three short constant-power jobs separated by hours of idle time:
        # the engine should jump the gaps (and the constant-power runs)
        # instead of grinding through every 15 s tick.
        jobs = [
            make_job(nodes=4, submit=0.0, duration=600.0),
            make_job(nodes=2, submit=20000.0, start=20000.0, duration=900.0),
            make_job(nodes=8, submit=50000.0, start=50000.0, duration=600.0),
        ]
        sparse = SimulationEngine(
            tiny_system, [j.copy_for_simulation() for j in jobs], "fcfs"
        ).run()
        dense = SimulationEngine(
            tiny_system, [j.copy_for_simulation() for j in jobs], "fcfs", dense_ticks=True
        ).run()
        _summaries_equal(sparse.summary(), dense.summary())
        assert sparse.summary()["ticks"] * 10 <= dense.summary()["ticks"]

    def test_replay_skips_to_backdated_starts(self, tiny_system):
        # Replay idles until each recorded start; the scheduler hint lets
        # the engine jump there instead of ticking through the wait.
        jobs = [
            make_job(nodes=1, submit=0.0, start=30000.0, duration=300.0),
            make_job(nodes=1, submit=0.0, start=60000.0, duration=300.0),
        ]
        sparse = SimulationEngine(
            tiny_system, [j.copy_for_simulation() for j in jobs], "replay"
        ).run()
        dense = SimulationEngine(
            tiny_system, [j.copy_for_simulation() for j in jobs], "replay", dense_ticks=True
        ).run()
        for result in (sparse, dense):
            starts = sorted(j.sim_start_time for j in result.jobs)
            assert starts == [pytest.approx(30000.0), pytest.approx(60000.0)]
        _summaries_equal(sparse.summary(), dense.summary())
        assert sparse.summary()["ticks"] * 10 <= dense.summary()["ticks"]

    def test_varying_power_jobs_coalesce_between_breakpoints(self, tiny_system):
        # Jobs with non-constant power traces no longer force dense ticking:
        # the engine coalesces up to each profile's next value change, so
        # the energy integral still matches dense mode exactly while the
        # 60 s-sampled traces need at most one step per 4 grid ticks.
        spec = WorkloadSpec(
            sizes=JobSizeDistribution(min_nodes=1, max_nodes=8),
            runtimes=RuntimeDistribution(median_s=1200.0, sigma=0.5, min_s=300.0, max_s=3600.0),
            arrivals=WaveArrivals(rate_per_hour=2.0),
            trace_interval_s=60.0,
            generate_power_trace=True,
        )
        jobs = SyntheticWorkloadGenerator(tiny_system, spec, seed=13).generate(4 * 3600.0)
        sparse = SimulationEngine(tiny_system, jobs, "fcfs").run()
        dense = SimulationEngine(tiny_system, jobs, "fcfs", dense_ticks=True).run()
        _summaries_equal(sparse.summary(), dense.summary())
        assert sparse.summary()["ticks"] < dense.summary()["ticks"]

    def test_coalescing_stops_exactly_at_profile_breakpoints(self, tiny_system):
        # One job whose CPU profile changes value only at t=1200 (the 600 s
        # sample repeats the initial value and is NOT a breakpoint): the
        # engine should record exactly three samples — start, breakpoint,
        # and the release tick — instead of 120 dense ones.
        profile = Profile([0.0, 600.0, 1200.0], [0.4, 0.4, 0.9])
        jobs = [
            make_job(nodes=2, submit=0.0, duration=1800.0, cpu_profile=profile)
        ]
        sparse = SimulationEngine(
            tiny_system, [j.copy_for_simulation() for j in jobs], "fcfs"
        ).run()
        dense = SimulationEngine(
            tiny_system, [j.copy_for_simulation() for j in jobs], "fcfs",
            dense_ticks=True,
        ).run()
        _summaries_equal(sparse.summary(), dense.summary(), rel=1e-9)
        assert [t.time_s for t in sparse.stats.ticks] == [0.0, 1200.0, 1800.0]
        assert [t.dt_s for t in sparse.stats.ticks] == [1200.0, 600.0, 15.0]

    @pytest.mark.parametrize("policy", ["fcfs", "backfill", "replay"])
    @pytest.mark.parametrize("seed", [3, 11, 29])
    def test_piecewise_constant_workload_matches_dense(
        self, tiny_system, policy, seed
    ):
        # The tentpole property: workloads dominated by multi-phase
        # piecewise-constant profiles (the telemetry-replay shape) must
        # coalesce without any summary drift, across policies and seeds.
        spec = WorkloadSpec(
            sizes=JobSizeDistribution(min_nodes=1, max_nodes=8),
            runtimes=RuntimeDistribution(
                median_s=1800.0, sigma=0.6, min_s=600.0, max_s=7200.0
            ),
            arrivals=WaveArrivals(rate_per_hour=4.0),
            trace_interval_s=60.0,
            generate_power_trace=bool(seed % 2),
            phase_count_range=(2, 5),
            sample_noise=0.0,
        )
        jobs = SyntheticWorkloadGenerator(tiny_system, spec, seed=seed).generate(
            4 * 3600.0
        )
        # A couple of constant-profile jobs ride along; the non-constant
        # multi-phase ones must still be the majority for the test to mean
        # anything.
        jobs += [
            make_job(nodes=1, submit=600.0 * i, start=600.0 * i, duration=900.0)
            for i in range(3)
        ]
        non_constant = [
            j
            for j in jobs
            if any(not p.is_constant() for p in j.power_profiles())
        ]
        assert 2 * len(non_constant) >= len(jobs)
        sparse = SimulationEngine(
            tiny_system, [j.copy_for_simulation() for j in jobs], policy, seed=seed
        ).run()
        dense = SimulationEngine(
            tiny_system,
            [j.copy_for_simulation() for j in jobs],
            policy,
            seed=seed,
            dense_ticks=True,
        ).run()
        _summaries_equal(sparse.summary(), dense.summary(), rel=1e-9)
        assert sparse.summary()["ticks"] <= dense.summary()["ticks"]

    def test_busy_piecewise_trace_gets_large_step_reduction(self, tiny_system):
        # The point of breakpoint-bounded coalescing: a *busy* trace (high
        # utilization, piecewise-constant phases) must shed >= 5x the steps,
        # where the old constant-power veto gave exactly 1x. Uses the same
        # spec as the busy-trace benchmark so tuning one cannot silently
        # desynchronise the other.
        jobs = SyntheticWorkloadGenerator(
            tiny_system, busy_trace_spec(), seed=42
        ).generate(12 * 3600.0)
        sparse = SimulationEngine(
            tiny_system, [j.copy_for_simulation() for j in jobs], "backfill", seed=42
        ).run()
        dense = SimulationEngine(
            tiny_system,
            [j.copy_for_simulation() for j in jobs],
            "backfill",
            seed=42,
            dense_ticks=True,
        ).run()
        _summaries_equal(sparse.summary(), dense.summary(), rel=1e-9)
        assert sparse.summary()["mean_utilization"] > 0.5  # genuinely busy
        assert sparse.summary()["ticks"] * 5 <= dense.summary()["ticks"]

    def test_dense_ticks_records_every_grid_tick(self, tiny_system):
        jobs = [make_job(nodes=2, submit=0.0, duration=1200.0)]
        dense = SimulationEngine(tiny_system, jobs, "fcfs", dense_ticks=True).run()
        assert all(t.dt_s == tiny_system.timestep_s for t in dense.stats.ticks)
        sparse = SimulationEngine(tiny_system, jobs, "fcfs").run()
        assert len(sparse.stats.ticks) < len(dense.stats.ticks)
        # Aggregated samples still cover the same simulated span.
        assert sum(t.dt_s for t in sparse.stats.ticks) == pytest.approx(
            sum(t.dt_s for t in dense.stats.ticks)
        )

    def test_run_simulation_dense_ticks_flag(self):
        sparse = run_simulation(system="tiny", policy="fcfs", duration="2h", seed=1)
        dense = run_simulation(
            system="tiny", policy="fcfs", duration="2h", seed=1, dense_ticks=True
        )
        _summaries_equal(sparse.summary(), dense.summary())


class TestEventIndexEquivalence:
    """The O(log R) event indexes must change complexity, never semantics."""

    def test_scan_path_matches_heap_path_exactly(self, tiny_system):
        # event_index=False restores the O(R) running-set scans; on the
        # breakpoint-dense busy trace both paths must produce the exact
        # same summary — including the step count — not merely 1e-9-close.
        jobs = SyntheticWorkloadGenerator(
            tiny_system, busy_trace_spec(), seed=7
        ).generate(6 * 3600.0)
        heap = SimulationEngine(
            tiny_system, [j.copy_for_simulation() for j in jobs], "backfill", seed=7
        ).run()
        scan = SimulationEngine(
            tiny_system,
            [j.copy_for_simulation() for j in jobs],
            "backfill",
            seed=7,
            event_index=False,
        ).run()
        assert heap.summary() == scan.summary()

    @pytest.mark.parametrize("policy", ["replay", "fcfs"])
    def test_scan_path_matches_for_other_policies(self, tiny_system, policy):
        generator = SyntheticWorkloadGenerator(
            tiny_system, default_workload_spec(tiny_system), seed=19
        )
        jobs = generator.generate(4 * 3600.0)
        heap = SimulationEngine(
            tiny_system, [j.copy_for_simulation() for j in jobs], policy, seed=19
        ).run()
        scan = SimulationEngine(
            tiny_system,
            [j.copy_for_simulation() for j in jobs],
            policy,
            seed=19,
            event_index=False,
        ).run()
        assert heap.summary() == scan.summary()

    def test_frontier_scale_spec_heap_vs_scan(self):
        # A one-hour slice of the frontier-scale benchmark workload (the
        # benchmark itself runs 12 h): >= 1000 concurrently running jobs,
        # and the heap-indexed engine must agree with the scan engine
        # exactly. Shares frontier_scale_spec with scripts/bench_engine.py
        # so the regression test and the benchmark can never drift apart.
        from repro.workloads import frontier_scale_spec

        system = get_system_config("frontier")
        jobs = SyntheticWorkloadGenerator(
            system, frontier_scale_spec(), seed=3
        ).generate(3600.0)
        heap = SimulationEngine(system, jobs, "backfill", seed=3).run()
        scan = SimulationEngine(
            system, jobs, "backfill", seed=3, event_index=False
        ).run()
        assert heap.summary() == scan.summary()
        assert max(t.running_jobs for t in heap.stats.ticks) >= 1000

    def test_end_heap_drains_after_run(self, tiny_system, tiny_workload):
        # After a full backfill run (plenty of epoch churn) the end-time
        # index must be empty: every entry was either completed or went
        # stale and was discarded exactly once — nothing lingers to be
        # revisited by a later run of the same resource manager.
        engine = SimulationEngine(tiny_system, tiny_workload, "backfill")
        engine.run()
        rm = engine.resource_manager
        assert rm.running_by_id == {}
        assert rm._end_of == {}
        assert rm.next_job_end() is None  # drains any remaining stale entries
        assert rm._end_heap == []


class TestHorizonClamping:
    def test_truncation_is_clamped_to_off_grid_horizon(self, tiny_system):
        # 1795 s is not a multiple of the 15 s tick: the old code released
        # the job at the next tick boundary (1800 s), crediting 5 s of
        # runtime and node-hours past the horizon.
        jobs = [make_job(nodes=2, submit=0.0, duration=86400.0)]
        result = SimulationEngine(tiny_system, jobs, "fcfs", horizon_s=1795.0).run()
        job = result.jobs[0]
        assert job.state is JobState.COMPLETED
        assert job.metadata.get("truncated_by_horizon") is True
        assert job.sim_end_time == pytest.approx(1795.0)
        summary = result.summary()
        assert summary["node_hours"] == pytest.approx(2 * 1795.0 / 3600.0)
        # The stats integration stops at the horizon too: the final sample
        # is clipped rather than covering its whole tick.
        assert summary["simulated_s"] == pytest.approx(1795.0)
        stats = result.stats
        assert stats.it_energy_kwh == pytest.approx(
            sum(t.compute_power_kw * t.dt_s for t in stats.ticks) / 3600.0
        )

    def test_job_ending_inside_final_partial_tick_is_not_truncated(self, tiny_system):
        # The job's natural end (1793 s) falls between the last processed
        # tick (1785 s) and the off-grid horizon (1795 s): it must complete
        # at its own end time, not be stretched to the horizon and falsely
        # tagged as truncated.
        jobs = [make_job(nodes=2, submit=0.0, duration=1793.0)]
        result = SimulationEngine(tiny_system, jobs, "fcfs", horizon_s=1795.0).run()
        job = result.jobs[0]
        assert job.state is JobState.COMPLETED
        assert job.sim_end_time == pytest.approx(1793.0)
        assert "truncated_by_horizon" not in job.metadata
        assert result.summary()["node_hours"] == pytest.approx(2 * 1793.0 / 3600.0)

    def test_workload_draining_before_horizon_matches_dense_mode(self, tiny_system):
        # The run ends when the workload drains, not at the horizon: the
        # final sample must not be stretched across the leftover idle time
        # up to a far-away horizon.
        jobs = [make_job(nodes=2, submit=0.0, duration=600.0)]
        sparse = SimulationEngine(
            tiny_system, [j.copy_for_simulation() for j in jobs], "fcfs", horizon_s=86400.0
        ).run()
        dense = SimulationEngine(
            tiny_system,
            [j.copy_for_simulation() for j in jobs],
            "fcfs",
            horizon_s=86400.0,
            dense_ticks=True,
        ).run()
        _summaries_equal(sparse.summary(), dense.summary())
        assert sparse.summary()["simulated_s"] == pytest.approx(615.0)

    def test_horizon_clamp_matches_dense_mode(self, tiny_system):
        jobs = [
            make_job(nodes=4, submit=0.0, duration=86400.0),
            make_job(nodes=1, submit=500.0, start=500.0, duration=100.0),
        ]
        sparse = SimulationEngine(
            tiny_system, [j.copy_for_simulation() for j in jobs], "fcfs", horizon_s=2222.0
        ).run()
        dense = SimulationEngine(
            tiny_system,
            [j.copy_for_simulation() for j in jobs],
            "fcfs",
            horizon_s=2222.0,
            dense_ticks=True,
        ).run()
        _summaries_equal(sparse.summary(), dense.summary())
        for result in (sparse, dense):
            truncated = next(j for j in result.jobs if j.nodes_required == 4)
            assert truncated.sim_end_time == pytest.approx(2222.0)


class TestRunSimulation:
    def test_quickstart_signature(self):
        # The package docstring's example must keep working.
        result = run_simulation(
            system="tiny", policy="fcfs", backfill="easy", duration="2h", seed=1
        )
        assert result.policy == "backfill"
        assert result.stats.summary()["jobs_completed"] > 0

    def test_explicit_workload_bypasses_generator(self, tiny_system):
        jobs = [make_job(nodes=4, submit=0.0, duration=450.0)]
        result = run_simulation(system=tiny_system, policy="fcfs", workload=jobs)
        assert result.summary()["jobs_completed"] == 1.0

    def test_rejects_bad_backfill_combination(self):
        with pytest.raises(SchedulingError):
            run_simulation(system="tiny", policy="replay", backfill="easy",
                           duration="1h")

    def test_rejects_backfill_with_non_backfill_scheduler_instance(self):
        with pytest.raises(SchedulingError, match="incompatible"):
            run_simulation(system="tiny", policy=FCFSScheduler(),
                           backfill="easy", duration="1h")

    def test_cooling_is_coupled_when_configured(self, tiny_system, tiny_workload):
        result = SimulationEngine(tiny_system, tiny_workload, "fcfs").run()
        assert result.summary()["cooling_energy_kwh"] > 0

    def test_system_without_cooling_model(self, tiny_workload):
        from repro.config import get_system_config

        marconi = get_system_config("marconi100")
        result = run_simulation(
            system=marconi,
            policy="fcfs",
            workload=[make_job(nodes=8, submit=0.0, duration=600.0)],
        )
        summary = result.summary()
        assert summary["cooling_energy_kwh"] == 0.0
        assert summary["mean_pue"] >= 1.0
