"""Tests for the Job data model and its state machine."""

from __future__ import annotations

import pytest

from repro.exceptions import DataLoaderError, SimulationError
from repro.telemetry import Job, JobState, TraceFlag, constant_profile

from helpers import make_job


class TestJobConstruction:
    def test_defaults(self):
        job = make_job()
        assert job.state is JobState.PENDING
        assert job.duration == 600.0
        assert job.nodes_required == 1

    def test_unique_ids(self):
        assert make_job().job_id != make_job().job_id

    def test_rejects_non_positive_nodes(self):
        with pytest.raises(DataLoaderError):
            make_job(nodes=0)

    def test_rejects_end_before_start(self):
        with pytest.raises(DataLoaderError):
            Job(nodes_required=1, submit_time=0, start_time=100, end_time=50)

    def test_clamps_submit_after_start(self):
        job = Job(nodes_required=1, submit_time=150, start_time=100, end_time=500)
        assert job.submit_time == 100

    def test_rejects_submit_after_end(self):
        with pytest.raises(DataLoaderError):
            Job(nodes_required=1, submit_time=600, start_time=100, end_time=500)

    def test_rejects_recorded_nodes_mismatch(self):
        with pytest.raises(DataLoaderError):
            make_job(nodes=2, recorded_nodes=(1,))

    def test_rejects_non_positive_wall_limit(self):
        with pytest.raises(DataLoaderError):
            make_job(wall_limit=0.0)


class TestDerivedProperties:
    def test_requested_runtime_prefers_wall_limit(self):
        assert make_job(duration=600, wall_limit=3600).requested_runtime == 3600
        assert make_job(duration=600).requested_runtime == 600

    def test_node_seconds(self):
        assert make_job(nodes=4, duration=100).node_s == 400

    def test_wait_and_turnaround_before_start(self):
        job = make_job()
        assert job.wait_time is None
        assert job.turnaround_time is None
        assert job.sim_duration is None


class TestStateMachine:
    def test_full_lifecycle(self):
        job = make_job(nodes=2, submit=0, duration=100)
        job.mark_queued(5.0)
        assert job.state is JobState.QUEUED
        job.mark_running(10.0, (3, 4))
        assert job.state is JobState.RUNNING
        assert job.is_active
        job.mark_completed(110.0)
        assert job.state is JobState.COMPLETED
        assert job.is_finished
        assert job.wait_time == pytest.approx(10.0 - 5.0)
        assert job.turnaround_time == pytest.approx(110.0 - 5.0)
        assert job.sim_duration == pytest.approx(100.0)

    def test_cannot_queue_twice(self):
        job = make_job()
        job.mark_queued(0.0)
        with pytest.raises(SimulationError):
            job.mark_queued(1.0)

    def test_cannot_start_completed_job(self):
        job = make_job()
        job.mark_queued(0.0)
        job.mark_running(0.0, (0,))
        job.mark_completed(10.0)
        with pytest.raises(SimulationError):
            job.mark_running(20.0, (0,))

    def test_allocation_size_must_match(self):
        job = make_job(nodes=3)
        job.mark_queued(0.0)
        with pytest.raises(SimulationError):
            job.mark_running(0.0, (1, 2))

    def test_cannot_complete_unstarted(self):
        with pytest.raises(SimulationError):
            make_job().mark_completed(0.0)

    def test_dismiss(self):
        job = make_job()
        job.mark_dismissed()
        assert job.state is JobState.DISMISSED
        assert job.is_finished

    def test_cannot_dismiss_running(self):
        job = make_job()
        job.mark_queued(0.0)
        job.mark_running(0.0, (0,))
        with pytest.raises(SimulationError):
            job.mark_dismissed()


class TestTelemetryAccess:
    def test_utilization_relative_to_sim_start(self):
        from repro.telemetry import Profile

        job = make_job(duration=100)
        object.__setattr__  # noqa: B018 - jobs are plain dataclasses, direct assign is fine
        job.cpu_util = Profile([0, 50], [0.2, 0.9])
        job.mark_queued(0.0)
        job.mark_running(1000.0, (0,))
        cpu, _, _ = job.utilization_at(1010.0)
        assert cpu == pytest.approx(0.2)
        cpu, _, _ = job.utilization_at(1060.0)
        assert cpu == pytest.approx(0.9)

    def test_recorded_power_none_without_trace(self):
        assert make_job().recorded_power_at(0.0) is None

    def test_recorded_power_with_trace(self):
        job = make_job(node_power=constant_profile(500.0, 600.0))
        job.mark_queued(0.0)
        job.mark_running(10.0, (0,))
        assert job.recorded_power_at(20.0) == pytest.approx(500.0)

    def test_static_features_keys(self):
        features = make_job().static_features()
        assert set(features) == {
            "nodes_required",
            "requested_runtime",
            "priority",
            "submit_hour",
        }


class TestCopyForSimulation:
    def test_copy_resets_simulation_state(self):
        job = make_job()
        job.mark_queued(0.0)
        job.mark_running(5.0, (0,))
        copy = job.copy_for_simulation()
        assert copy.state is JobState.PENDING
        assert copy.assigned_nodes == ()
        assert copy.sim_start_time is None
        assert copy.job_id == job.job_id
        assert copy.nodes_required == job.nodes_required

    def test_copy_metadata_is_independent(self):
        job = make_job()
        copy = job.copy_for_simulation()
        copy.metadata["x"] = 1
        assert "x" not in job.metadata


class TestTraceFlags:
    def test_flags_combine(self):
        flags = TraceFlag.STARTED_BEFORE_CAPTURE | TraceFlag.PREPOPULATED
        assert TraceFlag.STARTED_BEFORE_CAPTURE in flags
        assert TraceFlag.ENDED_AFTER_CAPTURE not in flags

    def test_default_no_flags(self):
        assert make_job().trace_flags is TraceFlag.NONE
