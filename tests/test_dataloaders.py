"""Tests for the dataloader package: import health, registry, windowing.

The package import itself is a regression test: ``__init__`` used to import
per-system loader modules that did not exist, so ``import repro.dataloaders``
crashed for every consumer.
"""

from __future__ import annotations

import pytest

import repro.dataloaders as dataloaders
from repro.dataloaders import (
    DataLoader,
    DatasetWindow,
    available_dataloaders,
    get_dataloader,
    register_dataloader,
)
from repro.exceptions import DataLoaderError
from repro.telemetry.job import Job, TraceFlag


class _ToyLoader(DataLoader):
    name = "toy"

    def load_all(self) -> tuple[list[Job], DatasetWindow]:
        window = DatasetWindow(0.0, 1000.0)
        jobs = [
            # Ends before any late window: dismissed by select_window.
            Job(job_id=1, submit_time=0.0, start_time=0.0, end_time=50.0, nodes_required=1),
            # Spans the window start: prepopulation candidate.
            Job(job_id=2, submit_time=10.0, start_time=20.0, end_time=500.0, nodes_required=1),
            # Fully inside.
            Job(job_id=3, submit_time=200.0, start_time=250.0, end_time=600.0, nodes_required=1),
            # Runs past the telemetry end.
            Job(job_id=4, submit_time=300.0, start_time=400.0, end_time=1500.0, nodes_required=1),
        ]
        return jobs, window


class TestPackageImport:
    def test_import_exposes_only_existing_symbols(self):
        # Regression: the package must import (and every __all__ name exist).
        for name in dataloaders.__all__:
            assert hasattr(dataloaders, name)

    def test_no_phantom_loader_modules(self):
        assert not hasattr(dataloaders, "FrontierDataLoader")


class TestRegistry:
    def test_register_get_roundtrip(self):
        register_dataloader("toy-rt", _ToyLoader, overwrite=True)
        loader = get_dataloader("toy-rt", seed=3)
        assert isinstance(loader, _ToyLoader)
        assert loader.seed == 3
        assert "toy-rt" in available_dataloaders()

    def test_duplicate_registration_rejected(self):
        register_dataloader("toy-dup", _ToyLoader, overwrite=True)
        with pytest.raises(DataLoaderError, match="already registered"):
            register_dataloader("toy-dup", _ToyLoader)

    def test_unknown_name_lists_known(self):
        with pytest.raises(DataLoaderError, match="unknown dataloader"):
            get_dataloader("no-such-system")

    def test_lookup_is_case_insensitive(self):
        register_dataloader("Toy-Case", _ToyLoader, overwrite=True)
        assert isinstance(get_dataloader("toy-case"), _ToyLoader)


class TestWindowing:
    def test_window_validation(self):
        with pytest.raises(DataLoaderError, match="positive length"):
            DatasetWindow(10.0, 10.0)

    def test_load_classifies_jobs(self):
        jobs, window = _ToyLoader().load(fast_forward=100.0)
        ids = [job.job_id for job in jobs]
        assert ids == [2, 3, 4]  # job 1 dismissed (ended before window)
        assert window.telemetry_start == pytest.approx(100.0)
        by_id = {job.job_id: job for job in jobs}
        assert by_id[2].trace_flags & TraceFlag.PREPOPULATED
        assert not by_id[3].trace_flags & TraceFlag.PREPOPULATED
        assert by_id[4].trace_flags & TraceFlag.ENDED_AFTER_CAPTURE

    def test_fast_forward_past_end_rejected(self):
        with pytest.raises(DataLoaderError, match="skips past the end"):
            _ToyLoader().load(fast_forward=2000.0)
