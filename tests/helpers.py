"""Shared test helpers, importable absolutely from any test module.

Kept separate from ``conftest.py`` (which pytest reserves for fixtures and
hooks) so test modules can do ``from helpers import make_job`` without
relying on package-relative imports.
"""

from __future__ import annotations

from repro.telemetry import Job, Profile, constant_profile

__all__ = ["make_job"]


def make_job(
    *,
    nodes: int = 1,
    submit: float = 0.0,
    start: float = 0.0,
    duration: float = 600.0,
    cpu: float = 0.5,
    gpu: float = 0.0,
    mem: float = 0.2,
    user: str = "user001",
    account: str = "acct001",
    priority: float = 0.0,
    partition: str = "batch",
    wall_limit: float | None = None,
    recorded_nodes: tuple[int, ...] = (),
    node_power: Profile | None = None,
    cpu_profile: Profile | None = None,
    gpu_profile: Profile | None = None,
    mem_profile: Profile | None = None,
) -> Job:
    """Construct a simple job for tests.

    Utilization defaults to constant profiles at the ``cpu``/``gpu``/``mem``
    levels; pass an explicit ``*_profile`` to exercise time-varying
    telemetry.
    """
    return Job(
        nodes_required=nodes,
        submit_time=submit,
        start_time=start,
        end_time=start + duration,
        wall_time_limit=wall_limit,
        user=user,
        account=account,
        priority=priority,
        partition=partition,
        recorded_nodes=recorded_nodes,
        cpu_util=cpu_profile if cpu_profile is not None else constant_profile(cpu, duration),
        gpu_util=gpu_profile if gpu_profile is not None else constant_profile(gpu, duration),
        mem_util=mem_profile if mem_profile is not None else constant_profile(mem, duration),
        node_power=node_power,
    )
