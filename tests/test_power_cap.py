"""Tests for power-capped operation: ``PowerCapScheduler`` end to end.

The tiny system has an 8.0 kW idle floor and tops out around 16.3 kW of
compute power on the default 2 h seed-1 workload, so caps in the 9-16 kW
band actually bind: 14 kW only delays jobs, 12 kW and below makes some
jobs infeasible outright.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro import OperatingSignals, PowerCapScheduler, run_simulation
from repro.engine import FCFSScheduler, SimulationEngine
from repro.exceptions import SchedulingError
from repro.power import SystemPowerModel
from repro.telemetry import JobState

from helpers import make_job


def _run(policy="fcfs", *, signals=None, dense_ticks=False, seed=1):
    return run_simulation(
        system="tiny",
        policy=policy,
        duration="2h",
        seed=seed,
        signals=signals,
        dense_ticks=dense_ticks,
    )


class TestAutoWrap:
    def test_capped_signals_wrap_the_policy(self):
        result = _run(signals=OperatingSignals.constant(power_cap_kw=14.0))
        assert result.policy == "power_cap(fcfs)"

    def test_capless_signals_do_not_wrap(self):
        result = _run(signals=OperatingSignals.constant(price_per_kwh=0.1))
        assert result.policy == "fcfs"

    def test_uncapped_run_keeps_zero_defaults(self):
        summary = _run().summary()
        assert summary["energy_cost"] == 0.0
        assert summary["carbon_kg"] == 0.0
        assert summary["cap_violation_kwh"] == 0.0
        assert summary["capped_hold_s"] == 0.0


class TestConstantCap:
    def test_loose_cap_changes_nothing(self):
        baseline = _run().summary()
        capped = _run(signals=OperatingSignals.constant(power_cap_kw=500.0)).summary()
        for key, value in baseline.items():
            if key in ("energy_cost", "carbon_kg"):
                continue
            assert capped[key] == pytest.approx(value, rel=1e-9), key

    def test_binding_cap_holds_jobs(self):
        result = _run(signals=OperatingSignals.constant(power_cap_kw=14.0))
        summary = result.summary()
        assert summary["capped_hold_s"] > 0.0
        assert not result.dismissed_jobs
        # Every job still completes, just later.
        assert len(result.completed_jobs) == len(result.jobs)
        assert summary["mean_wait_s"] > _run().summary()["mean_wait_s"]

    def test_tight_cap_dismisses_infeasible_jobs(self):
        result = _run(signals=OperatingSignals.constant(power_cap_kw=12.0))
        assert result.dismissed_jobs
        for job in result.dismissed_jobs:
            assert job.state is JobState.DISMISSED
            assert job.metadata["dismiss_reason"].startswith("power cap infeasible")

    @pytest.mark.parametrize("cap_kw", [14.0, 12.0, 10.0, 8.5])
    def test_constant_cap_never_violated(self, cap_kw):
        """The admission check is exact: compute power stays under the cap."""
        result = _run(signals=OperatingSignals.constant(power_cap_kw=cap_kw))
        assert result.summary()["cap_violation_kwh"] == 0.0
        compute_kw = result.stats.column("compute_power_kw")
        assert np.all(compute_kw <= cap_kw + 1e-9)

    def test_cap_below_incremental_dismisses_most_jobs(self):
        # 8.5 kW leaves 0.5 kW of headroom over the 8.0 kW idle floor:
        # almost nothing fits, and infeasible jobs are dismissed on sight
        # (never merely held), so no hold time accrues.
        result = _run(signals=OperatingSignals.constant(power_cap_kw=8.5))
        summary = result.summary()
        assert len(result.dismissed_jobs) == 16
        assert len(result.completed_jobs) == len(result.jobs) - 16
        assert summary["capped_hold_s"] == 0.0


class TestCostAndCarbon:
    def test_energy_cost_matches_manual_integral(self):
        signals = OperatingSignals(
            price_per_kwh=((0.0, 0.08), (1800.0, 0.24), (5400.0, 0.08)),
            carbon_kg_per_kwh=((0.0, 0.35),),
        )
        result = _run(signals=signals)
        stats = result.stats
        time_s = stats.column("time_s")
        dt_s = stats.column("dt_s")
        facility_kw = stats.column("facility_power_kw")
        prices = np.asarray([signals.price_at(t) for t in time_s])
        expected_cost = float(np.sum(facility_kw * prices * dt_s / 3600.0))
        expected_carbon = float(np.sum(facility_kw * 0.35 * dt_s / 3600.0))
        summary = result.summary()
        assert summary["energy_cost"] == pytest.approx(expected_cost, rel=1e-9)
        assert summary["carbon_kg"] == pytest.approx(expected_carbon, rel=1e-9)
        # Sanity: carbon tracks total energy directly.
        assert summary["carbon_kg"] == pytest.approx(
            0.35 * summary["total_energy_kwh"], rel=1e-9
        )

    def test_price_steps_are_coalescing_breakpoints(self):
        """A price step mid-run must bound an event-engine interval, so the
        dense and event engines integrate the exact same cost."""
        signals = OperatingSignals(price_per_kwh=((0.0, 0.05), (1234.5, 0.50)))
        event = _run(signals=signals).summary()
        dense = _run(signals=signals, dense_ticks=True).summary()
        assert event["energy_cost"] == pytest.approx(dense["energy_cost"], rel=1e-9)


class TestDemandResponse:
    def test_cap_window_only_binds_inside_the_window(self):
        signals = OperatingSignals.cap_window(1800.0, 3600.0, 10.0)
        result = _run(signals=signals)
        assert result.policy == "power_cap(fcfs)"
        summary = result.summary()
        # The cap lifts afterwards, so nothing is infeasible forever.
        assert not result.dismissed_jobs
        assert summary["capped_hold_s"] > 0.0
        # Violations can only accrue inside the window, from jobs already
        # running when the cap drops (the scheduler never kills jobs).
        stats = result.stats
        time_s = stats.column("time_s")
        compute_kw = stats.column("compute_power_kw")
        outside = (time_s < 1800.0) | (time_s >= 3600.0)
        caps = np.asarray([signals.cap_at(t) for t in time_s])
        assert np.all(np.isinf(caps[outside]))


class TestMeanUtilWeighting:
    def test_cpu_gpu_means_are_dt_weighted(self):
        """Event and dense runs must agree on mean_cpu_util/mean_gpu_util:
        only a dt-weighted mean is invariant to sample coalescing."""
        event = _run().summary()
        dense = _run(dense_ticks=True).summary()
        assert event["mean_cpu_util"] == pytest.approx(dense["mean_cpu_util"], rel=1e-9)
        assert event["mean_gpu_util"] == pytest.approx(dense["mean_gpu_util"], rel=1e-9)
        assert 0.0 <= event["mean_cpu_util"] <= 1.0


class TestSchedulerUnit:
    def test_explicit_wrapper_instance(self, tiny_system):
        jobs = [make_job(nodes=4, submit=0.0, duration=600.0)]
        scheduler = PowerCapScheduler(
            FCFSScheduler(), OperatingSignals.constant(power_cap_kw=14.0)
        )
        engine = SimulationEngine(
            tiny_system,
            jobs,
            scheduler,
            signals=OperatingSignals.constant(power_cap_kw=14.0),
        )
        result = engine.run()
        assert result.policy == "power_cap(fcfs)"
        assert [j.state for j in result.jobs] == [JobState.COMPLETED]

    def test_unbound_power_model_raises(self, tiny_system):
        scheduler = PowerCapScheduler(
            FCFSScheduler(), OperatingSignals.constant(power_cap_kw=14.0)
        )
        from repro.cluster import ResourceManager

        rm = ResourceManager(tiny_system)
        job = make_job(nodes=2, submit=0.0, duration=600.0)
        with pytest.raises(SchedulingError, match="bind_power_model"):
            scheduler.schedule([job], rm, 0.0)

    def test_observability_counters(self):
        result = _run(signals=OperatingSignals.constant(power_cap_kw=12.0))
        # Counters are surfaced through the run's summary side-channel: use
        # a fresh engine to inspect the scheduler directly instead.
        signals = OperatingSignals.constant(power_cap_kw=12.0)
        scheduler = PowerCapScheduler(FCFSScheduler(), signals)
        counters = scheduler.observability_counters()
        assert counters["cap_hold_events"] == 0
        assert counters["cap_dismissed_jobs"] == 0
        assert result.dismissed_jobs  # the end-to-end effect of the counter path

    def test_reset_clears_cap_state(self, tiny_system):
        signals = OperatingSignals.constant(power_cap_kw=14.0)
        scheduler = PowerCapScheduler(FCFSScheduler(), signals)
        scheduler.bind_power_model(SystemPowerModel(tiny_system))
        scheduler._held = 3
        scheduler._committed_kw = {1: 2.0}
        scheduler._committed_total_kw = 2.0
        scheduler.reset()
        assert scheduler.held_jobs() == 0
        assert scheduler._committed_kw == {}
        assert scheduler._committed_total_kw == 0.0

    def test_next_event_hint_vetoes_coalescing_while_holding(self):
        signals = OperatingSignals.constant(power_cap_kw=14.0)
        scheduler = PowerCapScheduler(FCFSScheduler(), signals)
        scheduler._held = 1
        assert scheduler.next_event_hint([], 123.0) == 123.0
        scheduler._held = 0
        base_hint = FCFSScheduler().next_event_hint([], 123.0)
        assert scheduler.next_event_hint([], 123.0) == base_hint


class TestDismissalCoalescing:
    """Regression: a dismissal must bound coalescing like a hold does.

    Dismissing a blocked queue head removes it from the queue *after* the
    base policy ran, so the jobs behind it can start on the very next grid
    tick — which a dense run acts on immediately. The event-driven run used
    to coalesce straight past that tick (the pass held nothing, so the
    hint deferred to the base policy's "quiescent" contract) and start the
    unblocked job only at the next natural event, thousands of seconds
    late.
    """

    def _jobs(self, tiny_system):
        light = dict(cpu=0.1, gpu=0.0)
        return [
            # Occupies most of the machine well past the dismissal point, so
            # an unfixed event-driven run has a far-away end to coalesce to.
            make_job(nodes=20, submit=0.0, start=0.0, duration=7200.0, wall_limit=7200.0, **light),
            # Frees its nodes at t=600, which is when the blocked head is
            # first proposed (and dismissed).
            make_job(nodes=8, submit=0.0, start=0.0, duration=600.0, wall_limit=600.0, **light),
            # Power-hungry head: node-blocked until t=600 (only 4 nodes
            # free), cap-infeasible once proposed.
            make_job(nodes=8, submit=10.0, start=10.0, duration=3600.0, wall_limit=3600.0, cpu=1.0, gpu=1.0),
            # Waits behind the head (too wide for the 4 free nodes);
            # startable the tick after the head is dismissed.
            make_job(nodes=6, submit=20.0, start=20.0, duration=900.0, wall_limit=9000.0, **light),
        ]

    def _cap_kw(self, tiny_system, jobs):
        model = SystemPowerModel(tiny_system)

        def incr(job):
            peak_w = model.job_peak_power_w(job)
            idle_w = model.node_idle_power_w(job.partition) * job.nodes_required
            return max(0.0, (peak_w - idle_w) / 1000.0)

        light_load = incr(jobs[0]) + max(incr(jobs[1]), incr(jobs[3]))
        hungry = incr(jobs[2])
        # The scenario needs the light jobs to co-run under a cap the
        # hungry job can never fit below.
        assert light_load < 0.9 * hungry
        return model.idle_floor_kw() + 0.9 * hungry

    def test_dismissal_unblocks_queue_without_coalescing_past_it(self, tiny_system):
        results = {}
        for dense in (True, False):
            jobs = self._jobs(tiny_system)
            signals = OperatingSignals.constant(power_cap_kw=self._cap_kw(tiny_system, jobs))
            engine = SimulationEngine(
                tiny_system, jobs, "backfill", signals=signals, dense_ticks=dense
            )
            results[dense] = engine.run()

        for result in results.values():
            [dismissed] = result.dismissed_jobs
            assert dismissed.nodes_required == 8
            assert "power cap infeasible" in dismissed.metadata["dismiss_reason"]
            # The trailing 6-node job starts on the first grid tick after
            # the head's dismissal at t=600, not at the next natural event
            # (the 20-node job's end at t=7200).
            trailing = next(
                j for j in result.completed_jobs if j.nodes_required == 6
            )
            assert trailing.sim_start_time == 615.0

        dense_summary = results[True].summary()
        event_summary = results[False].summary()
        for key, value in dense_summary.items():
            if key == "ticks":
                continue
            assert event_summary[key] == pytest.approx(value, rel=1e-9, abs=1e-12), key


class TestEquivalenceUnderCaps:
    @pytest.mark.parametrize("policy", ["replay", "fcfs", "backfill"])
    def test_dense_event_equal_under_stepped_signals(self, policy):
        signals = OperatingSignals(
            power_cap_kw=((0.0, 12.0), (3600.0, 14.5), (7000.3, 11.0)),
            price_per_kwh=((0.0, 0.1), (5400.0, 0.3)),
            carbon_kg_per_kwh=((0.0, 0.25),),
        )
        event = _run(policy, signals=signals).summary()
        dense = _run(policy, signals=signals, dense_ticks=True).summary()
        for key, value in dense.items():
            if key == "ticks":
                continue
            assert event[key] == pytest.approx(value, rel=1e-9, abs=1e-12), key
