"""Tests for the scheduling policies (replay, FCFS, EASY backfill)."""

from __future__ import annotations

import pytest

from repro.cluster import ResourceManager
from repro.config import get_system_config
from repro.engine import (
    BackfillScheduler,
    FCFSScheduler,
    ReplayScheduler,
    Scheduler,
    SimulationEngine,
    available_policies,
    get_scheduler,
)
from repro.exceptions import SchedulingError
from repro.telemetry import JobState

from helpers import make_job


class TestRegistry:
    def test_available_policies(self):
        assert available_policies() == ("backfill", "fcfs", "replay")

    @pytest.mark.parametrize(
        "name, cls",
        [
            ("replay", ReplayScheduler),
            ("fcfs", FCFSScheduler),
            ("backfill", BackfillScheduler),
            ("EASY", BackfillScheduler),
        ],
    )
    def test_lookup(self, name, cls):
        assert isinstance(get_scheduler(name), cls)

    def test_unknown_policy(self):
        with pytest.raises(SchedulingError, match="unknown scheduling policy"):
            get_scheduler("sjf")


class TestReplayScheduler:
    def test_respects_recorded_start_times(self, tiny_system):
        # Recorded starts fall between the 15 s ticks on purpose.
        jobs = [
            make_job(nodes=2, submit=0.0, start=7.0, duration=300.0),
            make_job(nodes=4, submit=10.0, start=128.0, duration=450.0),
        ]
        engine = SimulationEngine(tiny_system, jobs, "replay")
        result = engine.run()
        assert [j.state for j in result.jobs] == [JobState.COMPLETED] * 2
        for original, simulated in zip(jobs, result.jobs):
            assert simulated.sim_start_time == pytest.approx(original.start_time)
            assert simulated.sim_end_time == pytest.approx(original.end_time)

    def test_enforces_recorded_node_sets(self, tiny_system):
        jobs = [
            make_job(nodes=3, start=0.0, duration=300.0, recorded_nodes=(5, 9, 17)),
        ]
        engine = SimulationEngine(tiny_system, jobs, "replay")
        result = engine.run()
        assert result.jobs[0].assigned_nodes == (5, 9, 17)

    def test_does_not_start_jobs_early(self, tiny_system):
        scheduler = ReplayScheduler()
        rm = ResourceManager(tiny_system)
        job = make_job(nodes=1, submit=0.0, start=500.0)
        job.mark_queued(0.0)
        assert scheduler.schedule([job], rm, now=0.0) == []
        decisions = scheduler.schedule([job], rm, now=510.0)
        assert len(decisions) == 1
        assert decisions[0].start_time == pytest.approx(500.0)

    def test_free_placement_cannot_steal_recorded_nodes_same_tick(self, tiny_system):
        # Both jobs are due in the same tick; the free-node job is earlier in
        # recorded-start order, but must not be handed nodes 0-1 that the
        # recorded placement of the other job needs.
        # Tick grid is 15 s: both become due at the t=15 tick, with the
        # flexible job first in recorded-start order.
        flexible = make_job(nodes=2, submit=0.0, start=8.0, duration=300.0)
        recorded = make_job(
            nodes=2, submit=0.0, start=12.0, duration=300.0, recorded_nodes=(0, 1)
        )
        result = SimulationEngine(tiny_system, [flexible, recorded], "replay").run()
        assert all(j.state is JobState.COMPLETED for j in result.jobs)
        placed = next(j for j in result.jobs if j.recorded_nodes)
        other = next(j for j in result.jobs if not j.recorded_nodes)
        assert placed.assigned_nodes == (0, 1)
        assert not set(other.assigned_nodes) & {0, 1}
        assert placed.sim_start_time == pytest.approx(12.0)
        assert other.sim_start_time == pytest.approx(8.0)

    def test_unsatisfiable_recorded_nodes_fall_back_to_free_placement(
        self, tiny_system
    ):
        # Node id 99 does not exist on the 32-node system: the recorded
        # placement can never be honoured, so the job must be relocated
        # rather than retried forever.
        job = make_job(
            nodes=2, submit=0.0, start=0.0, duration=300.0, recorded_nodes=(0, 99)
        )
        result = SimulationEngine(tiny_system, [job], "replay").run()
        assert result.jobs[0].state is JobState.COMPLETED
        assert result.jobs[0].metadata.get("replay_relocated") is True
        assert all(n < 32 for n in result.jobs[0].assigned_nodes)

    def test_delayed_job_starts_late_and_is_flagged(self, tiny_system):
        # A 32-node blocker occupies the full system past job B's recorded start.
        blocker = make_job(nodes=32, submit=0.0, start=0.0, duration=600.0)
        late = make_job(nodes=1, submit=0.0, start=60.0, duration=150.0)
        engine = SimulationEngine(tiny_system, [blocker, late], "replay")
        result = engine.run()
        delayed = next(j for j in result.jobs if j.nodes_required == 1)
        assert delayed.state is JobState.COMPLETED
        assert delayed.sim_start_time >= 600.0
        assert delayed.metadata.get("replay_delayed") is True


class TestFCFSScheduler:
    def test_starts_in_submission_order(self, tiny_system):
        scheduler = FCFSScheduler()
        rm = ResourceManager(tiny_system)
        jobs = [
            make_job(nodes=8, submit=float(i), start=float(i), duration=600.0)
            for i in range(3)
        ]
        for job in jobs:
            job.mark_queued(job.submit_time)
        decisions = scheduler.schedule(jobs, rm, now=10.0)
        assert [d.job.job_id for d in decisions] == [j.job_id for j in jobs]

    def test_blocks_behind_head_that_does_not_fit(self, tiny_system):
        scheduler = FCFSScheduler()
        rm = ResourceManager(tiny_system)
        # 30 of 32 nodes busy: an 8-node head is blocked, and strict FCFS
        # must not let the 1-node job behind it jump the queue.
        running = make_job(nodes=30, submit=0.0)
        running.mark_queued(0.0)
        rm.allocate(running, 0.0)
        wide = make_job(nodes=8, submit=0.0)
        small = make_job(nodes=1, submit=1.0, start=1.0)
        wide.mark_queued(0.0)
        small.mark_queued(1.0)
        assert scheduler.schedule([wide, small], rm, now=5.0) == []

    def test_tracks_nodes_consumed_within_one_tick(self, tiny_system):
        scheduler = FCFSScheduler()
        rm = ResourceManager(tiny_system)
        jobs = [make_job(nodes=12, submit=float(i)) for i in range(3)]
        for job in jobs:
            job.mark_queued(job.submit_time)
        decisions = scheduler.schedule(jobs, rm, now=5.0)
        # 12 + 12 fit in 32 nodes; the third must wait even though the
        # resource manager still reports 32 free nodes mid-tick.
        assert len(decisions) == 2


class TestBackfillScheduler:
    def _queue(self, rm, *jobs):
        for job in jobs:
            job.mark_queued(job.submit_time)
        return list(jobs)

    def test_short_job_backfills_without_delaying_wide_head(self, tiny_system):
        scheduler = BackfillScheduler()
        rm = ResourceManager(tiny_system)
        # 24 nodes busy until t=3600 (wall limit known to the scheduler).
        running = make_job(nodes=24, submit=0.0, start=0.0, duration=3600.0,
                           wall_limit=3600.0)
        running.mark_queued(0.0)
        rm.allocate(running, 0.0)
        # Head needs 16 nodes -> blocked (only 8 free), shadow time 3600.
        wide = make_job(nodes=16, submit=10.0, wall_limit=1800.0)
        # Short job: 4 nodes for 600 s -> ends before the shadow time.
        short = make_job(nodes=4, submit=20.0, duration=600.0, wall_limit=600.0)
        # Long narrow job: 4 nodes for 2 h -> outlives the shadow time but
        # fits in the 8-node spare pool left once the head is reserved.
        long_narrow = make_job(nodes=4, submit=30.0, duration=7200.0,
                               wall_limit=7200.0)
        # Long wide job: 8 nodes past the shadow -> would eat the reservation.
        long_wide = make_job(nodes=8, submit=40.0, duration=7200.0,
                             wall_limit=7200.0)
        queue = self._queue(rm, wide, short, long_narrow, long_wide)
        decisions = scheduler.schedule(queue, rm, now=60.0)
        started = {d.job.job_id for d in decisions}
        assert short.job_id in started
        assert long_narrow.job_id in started  # spare = 24 free at shadow - 16
        assert wide.job_id not in started
        assert long_wide.job_id not in started  # would delay the reservation

    def test_end_to_end_backfill_does_not_delay_wide_job(self, tiny_system):
        """The wide head starts at the same time with and without backfill."""
        def workload():
            return [
                make_job(nodes=24, submit=0.0, start=0.0, duration=3600.0,
                         wall_limit=3600.0),
                make_job(nodes=16, submit=30.0, start=30.0, duration=1800.0,
                         wall_limit=1800.0),
                make_job(nodes=4, submit=60.0, start=60.0, duration=600.0,
                         wall_limit=600.0),
            ]

        fcfs = SimulationEngine(tiny_system, workload(), "fcfs").run()
        easy = SimulationEngine(tiny_system, workload(), "backfill").run()

        def start_of(result, nodes):
            return next(
                j.sim_start_time for j in result.jobs if j.nodes_required == nodes
            )

        # The short job jumps ahead of the blocked 16-node job...
        assert start_of(easy, 4) < start_of(easy, 16)
        assert start_of(easy, 4) < start_of(fcfs, 4)
        # ...without delaying it: the wide job starts when the blocker ends,
        # exactly as under plain FCFS.
        assert start_of(easy, 16) == pytest.approx(start_of(fcfs, 16))

    def test_reduces_mean_wait_on_synthetic_workload(self, tiny_system, tiny_workload):
        fcfs = SimulationEngine(tiny_system, tiny_workload, "fcfs").run()
        easy = SimulationEngine(tiny_system, tiny_workload, "backfill").run()
        assert easy.stats.mean_wait_s <= fcfs.stats.mean_wait_s

    def test_reservation_is_partition_aware(self, two_partition_system):
        # gpu partition: 6 of 8 nodes busy until t=3600; a 7-node gpu head is
        # blocked. Free cpu nodes must not fool the reservation into letting
        # a long gpu job eat the head's nodes; an all-cpu job is independent
        # of the reservation and backfills freely.
        scheduler = BackfillScheduler()
        rm = ResourceManager(two_partition_system)
        running = make_job(nodes=6, partition="gpu", submit=0.0, duration=3600.0,
                           wall_limit=3600.0)
        running.mark_queued(0.0)
        rm.allocate(running, 0.0)
        head = make_job(nodes=7, partition="gpu", submit=10.0, wall_limit=1800.0)
        gpu_long = make_job(nodes=2, partition="gpu", submit=20.0,
                            duration=7200.0, wall_limit=7200.0)
        cpu_long = make_job(nodes=4, partition="cpu", submit=30.0,
                            duration=7200.0, wall_limit=7200.0)
        for job in (head, gpu_long, cpu_long):
            job.mark_queued(job.submit_time)
        decisions = scheduler.schedule([head, gpu_long, cpu_long], rm, now=60.0)
        started = {d.job.job_id for d in decisions}
        assert cpu_long.job_id in started  # different partition: independent
        assert gpu_long.job_id not in started  # would delay the gpu head
        assert head.job_id not in started


class TestBackfillReservationEdgeCases:
    def _queue(self, *jobs):
        for job in jobs:
            job.mark_queued(job.submit_time)
        return list(jobs)

    def test_head_that_can_never_fit_reserves_nothing(self, tiny_system):
        # A 40-node head on a 32-node system can never start by the
        # expected-end estimate: shadow_time == inf, spare_nodes == 0.
        # Backfill must not crash, must not start the head, and every later
        # job that fits now may run (they all "end before" an infinite
        # shadow time).
        scheduler = BackfillScheduler()
        rm = ResourceManager(tiny_system)
        running = make_job(nodes=24, submit=0.0, duration=3600.0, wall_limit=3600.0)
        running.mark_queued(0.0)
        rm.allocate(running, 0.0)
        head = make_job(nodes=40, submit=10.0, wall_limit=600.0)
        filler = make_job(nodes=8, submit=20.0, duration=7200.0, wall_limit=7200.0)
        queue = self._queue(head, filler)
        decisions = scheduler.schedule(queue, rm, now=60.0)
        started = {d.job.job_id for d in decisions}
        assert head.job_id not in started
        assert filler.job_id in started

    def test_occupant_overrunning_wall_limit_shadows_at_now(self, tiny_system):
        # The 24-node occupant's expected end (wall limit 600 s) is long
        # past; EASY assumes it ends imminently, so the shadow time is
        # ``now`` and no job that outlives ``now`` may eat the 8 spare
        # nodes beyond the head's reservation.
        scheduler = BackfillScheduler()
        rm = ResourceManager(tiny_system)
        overrunner = make_job(nodes=24, submit=0.0, duration=86400.0, wall_limit=600.0)
        overrunner.mark_queued(0.0)
        rm.allocate(overrunner, 0.0)
        head = make_job(nodes=16, submit=10.0, wall_limit=1800.0)
        # Shadow at now=7200: available = 8 free + 24 released = 32, spare
        # = 32 - 16 = 16... but only 8 nodes are actually free *now*, so a
        # backfill job must also fit the current free count.
        narrow = make_job(nodes=8, submit=20.0, duration=7200.0, wall_limit=7200.0)
        wide = make_job(nodes=12, submit=30.0, duration=7200.0, wall_limit=7200.0)
        queue = self._queue(head, narrow, wide)
        decisions = scheduler.schedule(queue, rm, now=7200.0)
        started = {d.job.job_id for d in decisions}
        assert head.job_id not in started
        assert narrow.job_id in started  # fits now and within the spare pool
        assert wide.job_id not in started  # only 8 nodes free right now

    def test_overrun_shadow_never_precedes_now(self, tiny_system):
        # Directly check the reservation arithmetic of the overrun case.
        head = make_job(nodes=16, submit=0.0, wall_limit=1800.0)
        shadow, spare = BackfillScheduler._reservation(
            head, 8, [(600.0, 24)], now=7200.0
        )
        assert shadow == pytest.approx(7200.0)  # max(now, stale end)
        assert spare == 16

    def test_unfittable_head_reservation_is_inf(self, tiny_system):
        head = make_job(nodes=40, submit=0.0, wall_limit=600.0)
        shadow, spare = BackfillScheduler._reservation(
            head, 8, [(3600.0, 24)], now=0.0
        )
        assert shadow == float("inf")
        assert spare == 0


class TestNextEventHint:
    def test_default_vetoes_with_queue_and_allows_when_empty(self, tiny_system):
        class Minimal(Scheduler):
            name = "minimal"

            def schedule(self, queue, resource_manager, now):
                return []

        scheduler = Minimal()
        job = make_job(nodes=1, submit=0.0)
        job.mark_queued(0.0)
        assert scheduler.next_event_hint([job], now=100.0) == 100.0
        assert scheduler.next_event_hint([], now=100.0) is None

    def test_fcfs_and_backfill_are_event_driven(self):
        job = make_job(nodes=1, submit=0.0)
        job.mark_queued(0.0)
        assert FCFSScheduler().next_event_hint([job], now=50.0) is None
        assert BackfillScheduler().next_event_hint([job], now=50.0) is None

    def test_replay_hints_earliest_future_recorded_start(self, tiny_system):
        scheduler = ReplayScheduler()
        early = make_job(nodes=1, submit=0.0, start=900.0)
        late = make_job(nodes=1, submit=0.0, start=4500.0)
        for job in (early, late):
            job.mark_queued(0.0)
        assert scheduler.next_event_hint([late, early], now=0.0) == pytest.approx(900.0)

    def test_replay_vetoes_for_unattempted_due_job(self, tiny_system):
        scheduler = ReplayScheduler()
        due = make_job(nodes=1, submit=0.0, start=100.0)
        due.mark_queued(0.0)
        # schedule() has not run, so the due job has not been attempted:
        # the hint must veto coalescing rather than silently skip it.
        assert scheduler.next_event_hint([due], now=200.0) == 200.0

    def test_replay_hint_stash_matches_scan_after_schedule(self, tiny_system):
        # The engine calls next_event_hint right after executing schedule's
        # decisions; the O(1) stash must answer exactly what the O(queue)
        # scan would.
        scheduler = ReplayScheduler()
        rm = ResourceManager(tiny_system)
        due = make_job(nodes=1, submit=0.0, start=100.0)
        near = make_job(nodes=1, submit=0.0, start=900.0)
        far = make_job(nodes=1, submit=0.0, start=4500.0)
        for job in (due, near, far):
            job.mark_queued(0.0)
        decisions = scheduler.schedule([far, due, near], rm, now=200.0)
        assert [d.job.job_id for d in decisions] == [due.job_id]
        # Engine's view: the started job left the queue.
        assert scheduler.next_event_hint([far, near], now=200.0) == pytest.approx(900.0)

    def test_replay_hint_stash_rejected_when_decisions_dropped(self, tiny_system):
        # A direct caller that never executes the decisions must not get
        # the stashed answer: the due job is still queued and unstarted, so
        # the scan fallback vetoes coalescing.
        scheduler = ReplayScheduler()
        rm = ResourceManager(tiny_system)
        due = make_job(nodes=1, submit=0.0, start=100.0)
        future = make_job(nodes=1, submit=0.0, start=900.0)
        for job in (due, future):
            job.mark_queued(0.0)
        decisions = scheduler.schedule([due, future], rm, now=200.0)
        assert len(decisions) == 1
        assert scheduler.next_event_hint([due, future], now=200.0) == 200.0

    def test_replay_hint_stash_rejected_for_different_same_length_queue(
        self, tiny_system
    ):
        # Same now, same queue *length*, different members: the stash must
        # not answer for a queue it never saw — an unattempted due job in
        # the substitute queue has to veto.
        scheduler = ReplayScheduler()
        rm = ResourceManager(tiny_system)
        due_a = make_job(nodes=1, submit=0.0, start=100.0)
        fut_b = make_job(nodes=1, submit=0.0, start=900.0)
        fut_c = make_job(nodes=1, submit=0.0, start=950.0)
        due_d = make_job(nodes=1, submit=0.0, start=150.0)
        for job in (due_a, fut_b, fut_c, due_d):
            job.mark_queued(0.0)
        decisions = scheduler.schedule([due_a, fut_b, fut_c], rm, now=200.0)
        assert [d.job.job_id for d in decisions] == [due_a.job_id]
        # Engine view (started job removed): stash answers.
        assert scheduler.next_event_hint([fut_b, fut_c], now=200.0) == pytest.approx(900.0)
        # Substitute queue of the same length: scan fallback vetoes.
        assert scheduler.next_event_hint([due_d, fut_b], now=200.0) == 200.0

    def test_replay_delayed_job_waits_on_releases_not_time(self, tiny_system):
        scheduler = ReplayScheduler()
        rm = ResourceManager(tiny_system)
        blocker = make_job(nodes=32, submit=0.0, duration=3600.0)
        blocker.mark_queued(0.0)
        rm.allocate(blocker, 0.0)
        delayed = make_job(nodes=4, submit=0.0, start=60.0)
        delayed.mark_queued(0.0)
        assert scheduler.schedule([delayed], rm, now=60.0) == []
        # The delayed job can only start after a release, which the engine
        # tracks as its own event — no time-based hint is needed.
        assert scheduler.next_event_hint([delayed], now=60.0) is None


class TestLedgerSafety:
    def test_pool_debt_applies_to_late_materialized_ledgers(self, two_partition_system):
        # An unregistered-partition job consumes from the whole pool before
        # any named ledger has been materialized; a ledger materialized
        # *afterwards* (first free_in/fits call for that partition) must
        # still see the pool-wide debt, or a same-tick decision could
        # overcommit the partition.
        from repro.engine.scheduler import _FreeNodeCounts

        rm = ResourceManager(two_partition_system)
        counts = _FreeNodeCounts(rm)
        pool_job = make_job(nodes=14, submit=0.0, partition="debug")
        assert counts.fits(pool_job)
        counts.consume(pool_job)  # no named ledger exists yet: pure pool debt
        assert counts.total_free == 24 - 14
        # The cpu ledger (16 nodes) materializes now and must be debited.
        assert counts.free_in("cpu") == max(0, 16 - 14)
        cpu_job = make_job(nodes=4, submit=0.0, partition="cpu")
        assert not counts.fits(cpu_job)
        # A second pool job debits both the pool and the already-known ledger.
        small_pool_job = make_job(nodes=2, submit=0.0, partition="debug")
        assert counts.fits(small_pool_job)
        counts.consume(small_pool_job)
        assert counts.total_free == 8
        assert counts.free_in("cpu") == 0
        # The gpu ledger materializes last: debt from *both* pool jobs applies.
        assert counts.free_in("gpu") == max(0, 8 - 16)

    def test_unregistered_partition_jobs_share_pool_safely(self, tiny_system):
        # A job naming an unregistered partition draws from the whole pool;
        # a same-tick job in the registered partition must see the reduced
        # availability instead of crashing the engine with an overcommit.
        big = make_job(nodes=30, submit=0.0, duration=600.0, partition="debug")
        small = make_job(nodes=4, submit=0.0, duration=300.0)
        result = SimulationEngine(tiny_system, [big, small], "fcfs").run()
        assert all(j.state is JobState.COMPLETED for j in result.jobs)
        deferred = next(j for j in result.jobs if j.nodes_required == 4)
        assert deferred.sim_start_time >= 600.0


class TestBackfillNoOpMemoization:
    """Redundant EASY passes are skipped on power-only (breakpoint) steps."""

    def _blocked_setup(self, now=0.0):
        system = get_system_config("tiny")
        rm = ResourceManager(system)
        hog = make_job(nodes=32, submit=0.0, duration=7200.0, wall_limit=7200.0)
        hog.mark_queued(0.0)
        rm.allocate(hog, now)
        blocked = make_job(nodes=8, submit=0.0, duration=600.0, wall_limit=600.0)
        blocked.mark_queued(0.0)
        return system, rm, hog, blocked

    def test_noop_is_memoized_until_epoch_changes(self):
        _, rm, hog, blocked = self._blocked_setup()
        scheduler = BackfillScheduler()
        queue = (blocked,)
        assert scheduler.schedule(queue, rm, 0.0) == []

        calls = 0
        original = rm.free_node_count

        def counting(partition=None):
            nonlocal calls
            calls += 1
            return original(partition)

        rm.free_node_count = counting  # type: ignore[method-assign]
        # Same epoch + same queue: the memo short-circuits before any
        # inventory query, no matter how far the clock advanced.
        assert scheduler.schedule(queue, rm, 1500.0) == []
        assert calls == 0
        # A release invalidates the memo and the job now starts.
        rm.release(hog, 1800.0)
        decisions = scheduler.schedule(queue, rm, 1800.0)
        assert [d.job.job_id for d in decisions] == [blocked.job_id]
        assert calls > 0

    def test_queue_change_invalidates_memo(self):
        _, rm, _, blocked = self._blocked_setup()
        scheduler = BackfillScheduler()
        assert scheduler.schedule((blocked,), rm, 0.0) == []
        newcomer = make_job(nodes=40, submit=0.0, duration=600.0)  # never fits
        newcomer.mark_queued(0.0)
        assert scheduler.schedule((blocked, newcomer), rm, 0.0) == []
        assert scheduler._noop_key is not None
        assert scheduler._noop_key[1] == (blocked.job_id, newcomer.job_id)

    def test_reset_clears_memo(self):
        _, rm, _, blocked = self._blocked_setup()
        scheduler = BackfillScheduler()
        assert scheduler.schedule((blocked,), rm, 0.0) == []
        assert scheduler._noop_key is not None
        scheduler.reset()
        assert scheduler._noop_key is None

    def test_successful_decisions_are_never_memoized(self):
        system = get_system_config("tiny")
        rm = ResourceManager(system)
        job = make_job(nodes=4, submit=0.0, duration=600.0)
        job.mark_queued(0.0)
        scheduler = BackfillScheduler()
        decisions = scheduler.schedule((job,), rm, 0.0)
        assert len(decisions) == 1
        assert scheduler._noop_key is None


class TestReplayOrderMemo:
    """The memoized (start, job id) queue ordering of ReplayScheduler."""

    def _queued(self, *specs):
        jobs = [make_job(nodes=1, submit=0.0, start=s, duration=600.0) for s in specs]
        for job in jobs:
            job.mark_queued(0.0)
        return jobs

    def test_memo_reused_while_epoch_and_queue_stable(self, tiny_system):
        rm = ResourceManager(tiny_system)
        scheduler = ReplayScheduler()
        jobs = self._queued(900.0, 300.0, 600.0)
        first = scheduler._ordered_queue(jobs, rm)
        assert [j.start_time for j in first] == [300.0, 600.0, 900.0]
        assert scheduler._ordered_queue(jobs, rm) is first  # memo hit

    def test_same_length_different_queue_is_not_aliased(self, tiny_system):
        # Same epoch, same length, different members: the id check must
        # reject the memo and sort the new queue (a trap for direct
        # callers outside the engine's calling pattern).
        rm = ResourceManager(tiny_system)
        scheduler = ReplayScheduler()
        queue_a = self._queued(900.0, 300.0)
        queue_b = self._queued(120.0, 60.0)
        scheduler._ordered_queue(queue_a, rm)
        ordered_b = scheduler._ordered_queue(queue_b, rm)
        assert [j.start_time for j in ordered_b] == [60.0, 120.0]

    def test_allocation_invalidates_memo(self, tiny_system):
        rm = ResourceManager(tiny_system)
        scheduler = ReplayScheduler()
        jobs = self._queued(900.0, 300.0)
        first = scheduler._ordered_queue(jobs, rm)
        runner = make_job(nodes=1, submit=0.0, duration=600.0)
        runner.mark_queued(0.0)
        rm.allocate(runner, 0.0)  # epoch bump
        assert scheduler._ordered_queue(jobs, rm) is not first

    def test_schedule_results_identical_with_and_without_memo(self, tiny_system):
        def run(vectorized):
            rm = ResourceManager(tiny_system)
            scheduler = ReplayScheduler()
            scheduler.vectorized = vectorized
            jobs = self._queued(45.0, 30.0, 1200.0)
            started = []
            for now in (0.0, 30.0, 45.0, 60.0, 1200.0):
                decisions = scheduler.schedule(jobs, rm, now)
                for decision in decisions:
                    rm.allocate(decision.job, decision.start_time or now)
                    jobs.remove(decision.job)
                started.append(
                    (now, sorted(d.start_time for d in decisions),
                     scheduler.next_event_hint(jobs, now))
                )
            return started

        assert run(True) == run(False)


class TestBackfillReservationIndex:
    """The vectorized reservation (expected-release index) vs the scan."""

    def _rig(self, system, running_specs, queue_specs, now):
        def build(vectorized):
            rm = ResourceManager(system)
            scheduler = BackfillScheduler()
            scheduler.vectorized = vectorized
            for nodes, duration, limit in running_specs:
                job = make_job(nodes=nodes, submit=0.0, duration=duration,
                               wall_limit=limit)
                job.mark_queued(0.0)
                rm.allocate(job, 0.0)
            queue = []
            for nodes, duration, limit in queue_specs:
                job = make_job(nodes=nodes, submit=0.0, duration=duration,
                               wall_limit=limit)
                job.mark_queued(0.0)
                queue.append(job)
            return [
                (d.job.nodes_required, d.job.wall_time_limit)
                for d in scheduler.schedule(queue, rm, now)
            ]

        return build(True), build(False)

    def test_indexed_and_scan_reservations_agree(self, tiny_system):
        indexed, scanned = self._rig(
            tiny_system,
            running_specs=[(24, 3600.0, 3600.0), (2, 7200.0, 7200.0)],
            queue_specs=[
                (16, 1800.0, 1800.0),   # blocked head -> reservation
                (4, 1200.0, 1200.0),    # ends before shadow -> backfills
                (6, 86400.0, 86400.0),  # outlives shadow, needs spare
            ],
            now=60.0,
        )
        assert indexed == scanned

    def test_overrun_occupant_agrees(self, tiny_system):
        # Expected end in the past: shadow snaps to now on both paths.
        indexed, scanned = self._rig(
            tiny_system,
            running_specs=[(24, 86400.0, 600.0)],
            queue_specs=[(16, 1800.0, 1800.0), (8, 7200.0, 7200.0),
                         (12, 7200.0, 7200.0)],
            now=7200.0,
        )
        assert indexed == scanned

    def test_unfittable_head_agrees(self, tiny_system):
        indexed, scanned = self._rig(
            tiny_system,
            running_specs=[(24, 3600.0, 3600.0)],
            queue_specs=[(40, 600.0, 600.0), (8, 7200.0, 7200.0)],
            now=0.0,
        )
        assert indexed == scanned

    def test_partition_confined_head_uses_scan_fallback(self, two_partition_system):
        # A head restricted to a proper subset of the nodes cannot use the
        # whole-pool index; both flag settings must take the same
        # partition-aware decisions (the PR3 partition test re-run under
        # vectorized=True lives in TestBackfillScheduler).
        def run(vectorized):
            rm = ResourceManager(two_partition_system)
            scheduler = BackfillScheduler()
            scheduler.vectorized = vectorized
            running = make_job(nodes=6, partition="gpu", submit=0.0,
                               duration=3600.0, wall_limit=3600.0)
            running.mark_queued(0.0)
            rm.allocate(running, 0.0)
            head = make_job(nodes=7, partition="gpu", submit=10.0, wall_limit=1800.0)
            gpu_long = make_job(nodes=2, partition="gpu", submit=20.0,
                                duration=7200.0, wall_limit=7200.0)
            cpu_long = make_job(nodes=4, partition="cpu", submit=30.0,
                                duration=7200.0, wall_limit=7200.0)
            queue = [head, gpu_long, cpu_long]
            for job in queue:
                job.mark_queued(job.submit_time)
            return [d.job.partition for d in scheduler.schedule(queue, rm, 60.0)]

        assert run(True) == run(False) == ["cpu"]

    def test_same_tick_starts_enter_the_reservation(self, tiny_system):
        # Phase-1 starts of the same tick must occupy the reservation walk
        # on both paths: a 16-node head behind a fresh 24-node start.
        indexed, scanned = self._rig(
            tiny_system,
            running_specs=[],
            queue_specs=[
                (24, 3600.0, 3600.0),   # starts now (phase 1)
                (16, 1800.0, 1800.0),   # blocked head
                (8, 1200.0, 1200.0),    # candidate backfill
            ],
            now=0.0,
        )
        assert indexed == scanned
