"""Tests for :class:`repro.power.OperatingSignals`."""

from __future__ import annotations

import json
import math

import pytest

from repro.exceptions import ConfigurationError
from repro.power import OperatingSignals


class TestValidation:
    def test_all_none_rejected(self):
        with pytest.raises(ConfigurationError, match="at least one"):
            OperatingSignals()

    def test_empty_series_rejected(self):
        with pytest.raises(ConfigurationError, match="at least one segment"):
            OperatingSignals(power_cap_kw=())

    def test_nonzero_first_time_rejected(self):
        with pytest.raises(ConfigurationError, match="must start at t=0"):
            OperatingSignals(price_per_kwh=((10.0, 0.1),))

    def test_non_increasing_times_rejected(self):
        with pytest.raises(ConfigurationError, match="strictly increasing"):
            OperatingSignals(power_cap_kw=((0.0, 10.0), (100.0, 12.0), (100.0, 14.0)))

    def test_negative_value_rejected(self):
        with pytest.raises(ConfigurationError, match="finite and >= 0"):
            OperatingSignals(carbon_kg_per_kwh=((0.0, -0.2),))

    def test_nan_value_rejected(self):
        with pytest.raises(ConfigurationError, match="finite and >= 0"):
            OperatingSignals(price_per_kwh=((0.0, math.nan),))

    def test_negative_time_rejected(self):
        with pytest.raises(ConfigurationError, match="finite and >= 0"):
            OperatingSignals(power_cap_kw=((-5.0, 10.0),))

    def test_malformed_segment_rejected(self):
        with pytest.raises(ConfigurationError, match="pairs"):
            OperatingSignals(power_cap_kw=((0.0, 10.0, 1.0),))

    def test_none_price_value_rejected(self):
        # Only the cap series may carry None (= uncapped) values.
        with pytest.raises(ConfigurationError, match="must be numbers"):
            OperatingSignals(price_per_kwh=((0.0, None),))


class TestLookups:
    @pytest.fixture
    def signals(self):
        return OperatingSignals(
            power_cap_kw=((0.0, 12.0), (3600.0, None), (7200.0, 9.5)),
            price_per_kwh=((0.0, 0.10), (5400.0, 0.30)),
            carbon_kg_per_kwh=((0.0, 0.25),),
        )

    def test_zero_order_hold_cap(self, signals):
        assert signals.cap_at(0.0) == 12.0
        assert signals.cap_at(3599.9) == 12.0
        assert signals.cap_at(3600.0) == math.inf  # None decodes to uncapped
        assert signals.cap_at(7200.0) == 9.5
        assert signals.cap_at(1e12) == 9.5

    def test_zero_order_hold_price(self, signals):
        assert signals.price_at(0.0) == 0.10
        assert signals.price_at(5399.0) == 0.10
        assert signals.price_at(5400.0) == 0.30

    def test_constant_carbon(self, signals):
        assert signals.carbon_at(0.0) == 0.25
        assert signals.carbon_at(1e9) == 0.25

    def test_values_at_tuple(self, signals):
        assert signals.values_at(3600.0) == (math.inf, 0.10, 0.25)

    def test_absent_series_defaults(self):
        signals = OperatingSignals(price_per_kwh=((0.0, 0.2),))
        assert signals.cap_at(0.0) == math.inf
        assert signals.carbon_at(0.0) == 0.0
        assert not signals.has_cap

    def test_next_change_after_merges_all_series(self, signals):
        # Change points: 3600 (cap), 5400 (price), 7200 (cap).
        assert signals.next_change_after(0.0) == 3600.0
        assert signals.next_change_after(3600.0) == 5400.0
        assert signals.next_change_after(5400.0) == 7200.0
        assert signals.next_change_after(7200.0) is None

    def test_next_change_ignores_value_preserving_segments(self):
        signals = OperatingSignals(price_per_kwh=((0.0, 0.1), (60.0, 0.1), (120.0, 0.2)))
        # t=60 restates the same value: not a change point.
        assert signals.next_change_after(0.0) == 120.0

    def test_max_cap_at_or_after_suffix_max(self, signals):
        # From t=0 the future still contains an uncapped (inf) window.
        assert signals.max_cap_at_or_after(0.0) == math.inf
        assert signals.max_cap_at_or_after(3600.0) == math.inf
        # From the last window onward the cap stays 9.5 forever.
        assert signals.max_cap_at_or_after(7200.0) == 9.5

    def test_has_cap_and_last_change(self, signals):
        assert signals.has_cap
        assert signals.last_change_s == 7200.0
        constant = OperatingSignals.constant(power_cap_kw=10.0)
        assert constant.has_cap
        assert constant.last_change_s == 0.0


class TestConstructors:
    def test_constant(self):
        signals = OperatingSignals.constant(power_cap_kw=11.0, price_per_kwh=0.12)
        assert signals.cap_at(1e6) == 11.0
        assert signals.price_at(1e6) == 0.12
        assert signals.carbon_kg_per_kwh is None

    def test_constant_all_none_rejected(self):
        with pytest.raises(ConfigurationError, match="at least one"):
            OperatingSignals.constant()

    def test_cap_window_interior(self):
        signals = OperatingSignals.cap_window(600.0, 1800.0, 9.0)
        assert signals.cap_at(0.0) == math.inf
        assert signals.cap_at(600.0) == 9.0
        assert signals.cap_at(1799.9) == 9.0
        assert signals.cap_at(1800.0) == math.inf
        assert signals.has_cap

    def test_cap_window_from_zero(self):
        signals = OperatingSignals.cap_window(0.0, 900.0, 9.0)
        assert signals.power_cap_kw == ((0.0, 9.0), (900.0, None))

    def test_cap_window_bad_interval(self):
        with pytest.raises(ConfigurationError, match="start_s < end_s"):
            OperatingSignals.cap_window(1800.0, 600.0, 9.0)
        with pytest.raises(ConfigurationError, match="start_s < end_s"):
            OperatingSignals.cap_window(-1.0, 600.0, 9.0)


class TestSerialisation:
    def test_round_trip(self):
        signals = OperatingSignals(
            power_cap_kw=((0.0, None), (1800.0, 9.0), (3600.0, None)),
            price_per_kwh=((0.0, 0.08), (5400.0, 0.24)),
        )
        payload = signals.to_json_dict()
        # Uncapped windows are null, never NaN/Infinity: the sweep layer
        # serialises requests with allow_nan=False.
        text = json.dumps(payload, allow_nan=False)
        restored = OperatingSignals.from_json_dict(json.loads(text))
        assert restored == signals

    def test_absent_series_omitted(self):
        payload = OperatingSignals.constant(power_cap_kw=10.0).to_json_dict()
        assert set(payload) == {"power_cap_kw"}

    def test_unknown_key_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown OperatingSignals keys"):
            OperatingSignals.from_json_dict({"power_cap": [[0.0, 10.0]]})

    def test_accepts_json_lists(self):
        restored = OperatingSignals.from_json_dict(
            {"power_cap_kw": [[0.0, 10.0], [60.0, None]]}
        )
        assert restored.cap_at(0.0) == 10.0
        assert restored.cap_at(60.0) == math.inf
