"""Tests for the node, loss and system power models."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import PowerLossConfig, get_system_config
from repro.exceptions import ConfigurationError
from repro.power import (
    ConversionLossModel,
    NodePowerModel,
    SystemPowerModel,
    system_idle_power_kw,
)
from repro.telemetry import Profile, constant_profile

from helpers import make_job


class TestNodePowerModel:
    @pytest.fixture
    def model(self, tiny_system):
        return NodePowerModel(tiny_system.partitions[0].node_power)

    def test_idle_power(self, model):
        assert model.power(0.0, 0.0, 0.0) == pytest.approx(model.idle_power)

    def test_max_power(self, model):
        assert model.power(1.0, 1.0, 1.0) == pytest.approx(model.max_power)

    def test_monotonic_in_cpu(self, model):
        assert model.power(0.8) > model.power(0.2)

    def test_monotonic_in_gpu(self, model):
        assert model.power(0.5, 0.9) > model.power(0.5, 0.1)

    def test_clipping(self, model):
        assert model.power(2.0, 2.0, 2.0) == pytest.approx(model.max_power)
        assert model.power(-1.0) == pytest.approx(model.power(0.0))

    def test_vectorised(self, model):
        utils = np.linspace(0, 1, 11)
        powers = model.power(utils)
        assert powers.shape == (11,)
        assert np.all(np.diff(powers) > 0)

    @given(
        cpu=st.floats(min_value=0, max_value=1),
        gpu=st.floats(min_value=0, max_value=1),
        mem=st.floats(min_value=0, max_value=1),
    )
    @settings(max_examples=50, deadline=None)
    def test_power_bounded_property(self, cpu, gpu, mem):
        model = NodePowerModel(get_system_config("tiny").partitions[0].node_power)
        p = model.power(cpu, gpu, mem)
        assert model.idle_power - 1e-9 <= p <= model.max_power + 1e-9


class TestSystemIdlePower:
    def test_scales_with_node_count(self):
        frontier = system_idle_power_kw(get_system_config("frontier"))
        tiny = system_idle_power_kw(get_system_config("tiny"))
        assert frontier > 100 * tiny

    def test_down_nodes_excluded(self):
        system = get_system_config("tiny").with_overrides(down_node_fraction=0.5)
        assert system_idle_power_kw(system) == pytest.approx(
            0.5 * system_idle_power_kw(system, include_down=True)
        )


class TestConversionLossModel:
    @pytest.fixture
    def model(self):
        return ConversionLossModel(PowerLossConfig(), peak_compute_power_kw=1000.0)

    def test_losses_positive(self, model):
        breakdown = model.evaluate(500.0)
        assert breakdown.sivoc_loss_kw > 0
        assert breakdown.rectifier_loss_kw > 0
        assert breakdown.switchgear_loss_kw > 0
        assert breakdown.facility_power_kw > 500.0

    def test_zero_power(self, model):
        breakdown = model.evaluate(0.0)
        assert breakdown.total_loss_kw == pytest.approx(0.0)
        assert breakdown.efficiency == pytest.approx(1.0)

    def test_efficiency_improves_with_load(self, model):
        low = model.evaluate(50.0).efficiency
        high = model.evaluate(900.0).efficiency
        assert high > low

    def test_efficiency_below_one(self, model):
        assert model.evaluate(800.0).efficiency < 1.0

    def test_loss_fraction_larger_at_low_load(self, model):
        low = model.evaluate(50.0)
        high = model.evaluate(900.0)
        assert low.total_loss_kw / low.compute_power_kw > high.total_loss_kw / high.compute_power_kw

    def test_stage_efficiency_curve_monotonic(self, model):
        loads = np.linspace(0.01, 1.0, 50)
        eff = model.rectifier_efficiency(loads)
        assert np.all(np.diff(eff) > 0)
        assert eff.max() <= PowerLossConfig().rectifier_efficiency_peak + 1e-9

    def test_negative_power_clamped(self, model):
        assert model.evaluate(-10.0).facility_power_kw == 0.0

    def test_invalid_peak_power(self):
        with pytest.raises(ConfigurationError):
            ConversionLossModel(PowerLossConfig(), peak_compute_power_kw=0.0)

    @given(power=st.floats(min_value=0.0, max_value=2000.0))
    @settings(max_examples=50, deadline=None)
    def test_facility_at_least_compute_property(self, power):
        model = ConversionLossModel(PowerLossConfig(), peak_compute_power_kw=1000.0)
        breakdown = model.evaluate(power)
        assert breakdown.facility_power_kw >= breakdown.compute_power_kw


class TestSystemPowerModel:
    @pytest.fixture
    def model(self, tiny_system):
        return SystemPowerModel(tiny_system)

    def test_idle_system_sample(self, model, tiny_system):
        sample = model.sample(0.0, [])
        assert sample.job_power_kw == 0.0
        assert sample.idle_power_kw == pytest.approx(tiny_system.idle_system_power_kw)
        assert sample.facility_power_kw > sample.compute_power_kw

    def test_job_power_from_utilization(self, model):
        job = make_job(nodes=4, cpu=1.0, gpu=1.0, mem=1.0)
        job.mark_queued(0.0)
        job.mark_running(0.0, (0, 1, 2, 3))
        node_max = model.system.partitions[0].node_power.max_w
        assert model.job_power_w(job, 10.0) == pytest.approx(4 * node_max)

    def test_recorded_power_trace_wins(self, model):
        job = make_job(nodes=2, cpu=0.0, node_power=constant_profile(1234.0, 600))
        job.mark_queued(0.0)
        job.mark_running(0.0, (0, 1))
        assert model.job_power_w(job, 5.0) == pytest.approx(2 * 1234.0)

    def test_sample_with_running_jobs(self, model):
        jobs = []
        for i in range(3):
            job = make_job(nodes=2, cpu=0.5, gpu=0.5)
            job.mark_queued(0.0)
            job.mark_running(0.0, (2 * i, 2 * i + 1))
            jobs.append(job)
        sample = model.sample(100.0, jobs)
        assert sample.allocated_nodes == 6
        assert sample.job_power_kw > 0
        assert 0 < sample.mean_cpu_util <= 1
        # Idle nodes: 32 - 6 = 26
        per_node_idle = model.system.partitions[0].node_power.min_w / 1000.0
        assert sample.idle_power_kw == pytest.approx(26 * per_node_idle)

    def test_more_load_more_power(self, model):
        def sample_for(util):
            job = make_job(nodes=8, cpu=util, gpu=util)
            job.mark_queued(0.0)
            job.mark_running(0.0, tuple(range(8)))
            return model.sample(10.0, [job])

        assert sample_for(0.9).facility_power_kw > sample_for(0.1).facility_power_kw

    def test_job_energy_constant_profile(self, model):
        job = make_job(nodes=2, duration=1000, node_power=constant_profile(500.0, 1000))
        assert model.job_energy_j(job) == pytest.approx(2 * 500.0 * 1000)

    def test_job_energy_from_utilization(self, model):
        job = make_job(nodes=1, duration=100, cpu=0.0, gpu=0.0, mem=0.0)
        node_min = model.system.partitions[0].node_power.min_w
        assert model.job_energy_j(job) == pytest.approx(node_min * 100)

    def test_job_energy_zero_duration(self, model, job_factory):
        job = job_factory(duration=0.0)
        assert model.job_energy_j(job) == 0.0

    def test_job_energy_piecewise_profile(self, model, tiny_system):
        node_cfg = tiny_system.partitions[0].node_power
        job = make_job(nodes=1, duration=200, cpu=0.0)
        job.cpu_util = Profile([0, 100], [0.0, 1.0])
        job.gpu_util = constant_profile(0.0, 200)
        job.mem_util = constant_profile(0.0, 200)
        low = node_cfg.min_w
        high = low + node_cfg.cpus_per_node * (node_cfg.cpu_max_w - node_cfg.cpu_idle_w)
        assert model.job_energy_j(job) == pytest.approx(low * 100 + high * 100)

    def test_down_nodes_reduce_idle_power(self, model):
        with_down = model.sample(0.0, [], down_nodes=16)
        without = model.sample(0.0, [])
        assert with_down.idle_power_kw < without.idle_power_kw


def _profile_from(draw_values, duration):
    times = np.linspace(0.0, max(duration, 1.0), num=len(draw_values))
    return Profile(times, draw_values)


class TestBatchedPowerStates:
    """Batched and per-job _JobPowerState construction must be bit-identical.

    The engine's ``vectorized`` flag only switches between these two paths,
    so bit equality here (grids, powers, weighted utilizations, cached
    current values and next-change bounds) is what guarantees the
    batched-vs-per-job benchmark gate can never drift.
    """

    @staticmethod
    def _assert_states_identical(batched, perjob):
        assert len(batched) == len(perjob)
        for got, want in zip(batched, perjob):
            assert got.job is want.job
            assert got.start == want.start
            assert np.array_equal(got.times, want.times)
            assert np.array_equal(got.power_w, want.power_w)
            assert np.array_equal(got.cpu_weighted, want.cpu_weighted)
            assert np.array_equal(got.gpu_weighted, want.gpu_weighted)
            assert got.current_power_w == want.current_power_w
            assert got.current_cpu_weighted == want.current_cpu_weighted
            assert got.current_gpu_weighted == want.current_gpu_weighted
            assert got.next_change == want.next_change

    def _build_jobs(self, rng, n_jobs, *, with_traces):
        jobs = []
        for i in range(n_jobs):
            kind = rng.integers(0, 4)
            duration = float(rng.choice([0.0, 120.0, 600.0, 3600.0]))
            nodes = int(rng.integers(1, 6))
            kwargs = {}
            if kind >= 1 and duration > 0:
                # Piecewise-constant profiles with repeated samples (the
                # repeats must not become breakpoints) and distinct grids
                # per component so the union is non-trivial.
                n = int(rng.integers(2, 6))
                kwargs["cpu_profile"] = _profile_from(
                    np.round(rng.random(n), 2), duration
                )
            if kind >= 2 and duration > 0:
                n = int(rng.integers(2, 7))
                kwargs["gpu_profile"] = _profile_from(
                    np.repeat(np.round(rng.random(max(1, n // 2)), 2), 2)[:n],
                    duration * 0.7,
                )
            if with_traces and kind == 3 and duration > 0:
                n = int(rng.integers(2, 5))
                kwargs["node_power"] = _profile_from(
                    500.0 + 300.0 * np.round(rng.random(n), 2), duration
                )
            job = make_job(
                nodes=nodes,
                submit=0.0,
                duration=duration,
                cpu=float(rng.random()),
                gpu=float(rng.random()),
                mem=float(rng.random()),
                **kwargs,
            )
            if rng.random() < 0.5:
                # Off-grid backdated start: elapsed-time indexing must agree.
                job.mark_queued(0.0)
                job.mark_running(float(rng.random() * 100.0), tuple(range(nodes)))
            jobs.append(job)
        return jobs

    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        n_jobs=st.integers(min_value=1, max_value=12),
        with_traces=st.booleans(),
        now=st.sampled_from([0.0, 7.5, 90.0, 1234.5]),
    )
    @settings(max_examples=40, deadline=None)
    def test_batched_matches_per_job_bitwise(self, seed, n_jobs, with_traces, now):
        from repro.power.system_power import _JobPowerState, build_power_states

        rng = np.random.default_rng(seed)
        system = get_system_config("tiny")
        model = SystemPowerModel(system)
        node_model = model.node_model(system.partitions[0].name)
        jobs = self._build_jobs(rng, n_jobs, with_traces=with_traces)
        pairs = [(job, node_model) for job in jobs]
        batched = build_power_states(pairs, now)
        perjob = [_JobPowerState.for_job(job, node_model, now) for job in jobs]
        self._assert_states_identical(batched, perjob)

    def test_mixed_constant_trace_and_piecewise_batch(self, tiny_system):
        from repro.power.system_power import _JobPowerState, build_power_states

        model = SystemPowerModel(tiny_system)
        node_model = model.node_model(tiny_system.partitions[0].name)
        jobs = [
            make_job(nodes=2, duration=600.0, cpu=0.4),  # all-constant
            make_job(nodes=1, duration=0.0),  # zero-duration
            make_job(
                nodes=3,
                duration=600.0,
                node_power=Profile([0.0, 60.0, 60.5, 180.0], [500.0, 500.0, 750.0, 750.0]),
            ),
            make_job(
                nodes=4,
                duration=600.0,
                cpu_profile=Profile([0.0, 120.0, 240.0], [0.2, 0.8, 0.5]),
                gpu_profile=Profile([0.0, 90.0], [0.1, 0.9]),
            ),
        ]
        pairs = [(job, node_model) for job in jobs]
        batched = build_power_states(pairs, 15.0)
        perjob = [_JobPowerState.for_job(job, node_model, 15.0) for job in jobs]
        self._assert_states_identical(batched, perjob)

    def test_multi_partition_models_grouped(self, two_partition_system):
        from repro.power.system_power import _JobPowerState, build_power_states

        model = SystemPowerModel(two_partition_system)
        jobs = [
            make_job(nodes=2, duration=600.0, cpu=0.6, partition="cpu"),
            make_job(nodes=1, duration=600.0, gpu=0.9, partition="gpu"),
            make_job(
                nodes=2, duration=600.0, partition="gpu",
                cpu_profile=Profile([0.0, 100.0], [0.3, 0.7]),
            ),
        ]
        pairs = [(job, model.node_model(job.partition)) for job in jobs]
        batched = build_power_states(pairs, 0.0)
        perjob = [
            _JobPowerState.for_job(job, model.node_model(job.partition), 0.0)
            for job in jobs
        ]
        self._assert_states_identical(batched, perjob)

    def test_aggregator_batched_matches_per_job_over_membership_churn(self, tiny_system):
        from repro.cluster import ResourceManager
        from repro.power import RunningSetPowerAggregator

        def run(batch):
            model = SystemPowerModel(tiny_system)
            rm = ResourceManager(tiny_system)
            agg = RunningSetPowerAggregator(model, rm, batch_states=batch)
            jobs = [
                make_job(nodes=2, submit=0.0, duration=300.0 * (i + 1),
                         cpu_profile=Profile([0.0, 100.0 + i], [0.2, 0.8]))
                for i in range(5)
            ]
            samples = []
            for job in jobs:
                job.mark_queued(0.0)
                rm.allocate(job, 0.0)
            for now in np.arange(0.0, 1600.0, 50.0):
                rm.complete_finished_jobs(now)
                samples.append(agg.sample(float(now)))
            return samples

        # Same op sequence either way: the only difference may be float
        # association order inside the batch, which these workloads keep
        # far below the engine's 1e-9 contract.
        for batched_sample, perjob_sample in zip(run(True), run(False)):
            assert batched_sample.job_power_kw == pytest.approx(
                perjob_sample.job_power_kw, rel=1e-12, abs=1e-15
            )
            assert batched_sample.mean_cpu_util == pytest.approx(
                perjob_sample.mean_cpu_util, rel=1e-12, abs=1e-15
            )

    def test_journal_fallback_resync_matches_scan(self, tiny_system):
        # A second consumer finds the journal already drained and must fall
        # back to the set-diff resync — and still match the scanning model.
        from repro.cluster import ResourceManager
        from repro.power import RunningSetPowerAggregator

        model = SystemPowerModel(tiny_system)
        rm = ResourceManager(tiny_system)
        first = RunningSetPowerAggregator(model, rm)
        second = RunningSetPowerAggregator(model, rm)
        jobs = [make_job(nodes=2, submit=0.0, duration=600.0, cpu=0.3 * (i + 1))
                for i in range(3)]
        for job in jobs:
            job.mark_queued(0.0)
            rm.allocate(job, 0.0)
        assert first.sample(0.0).job_power_kw > 0
        # ``first`` drained the journal; ``second`` starts behind it.
        reference = model.sample(0.0, rm.running_jobs)
        got = second.sample(0.0)
        assert got.job_power_kw == pytest.approx(reference.job_power_kw)
        rm.release(jobs[0], 100.0)
        reference = model.sample(100.0, rm.running_jobs)
        for aggregator in (first, second):
            assert aggregator.sample(100.0).job_power_kw == pytest.approx(
                reference.job_power_kw
            )


class TestRunningSetPowerAggregator:
    """The incremental aggregator must reproduce the scanning evaluation."""

    @pytest.fixture
    def system(self, tiny_system):
        return tiny_system

    @pytest.fixture
    def rig(self, system):
        from repro.cluster import ResourceManager
        from repro.power import RunningSetPowerAggregator

        model = SystemPowerModel(system)
        rm = ResourceManager(system)
        return model, rm, RunningSetPowerAggregator(model, rm)

    @staticmethod
    def _assert_matches(aggregated, reference):
        assert aggregated.allocated_nodes == reference.allocated_nodes
        for field in (
            "job_power_kw",
            "idle_power_kw",
            "loss_kw",
            "mean_cpu_util",
            "mean_gpu_util",
        ):
            assert getattr(aggregated, field) == pytest.approx(
                getattr(reference, field), rel=1e-12, abs=1e-15
            ), field

    def test_matches_scan_across_breakpoints_and_membership(self, rig):
        model, rm, agg = rig
        phased = Profile([0.0, 120.0, 240.0], [0.2, 0.8, 0.5])
        jobs = [
            make_job(nodes=4, submit=0.0, duration=600.0, cpu_profile=phased),
            make_job(nodes=2, submit=0.0, duration=600.0, cpu=0.6, gpu=0.3),
        ]
        for job in jobs:
            job.mark_queued(0.0)
            rm.allocate(job, 0.0)
        for now in np.arange(0.0, 360.0, 15.0):
            self._assert_matches(
                agg.sample(now), model.sample(now, rm.running_jobs)
            )
        rm.release(jobs[1], 360.0)
        for now in np.arange(360.0, 615.0, 15.0):
            self._assert_matches(
                agg.sample(now), model.sample(now, rm.running_jobs)
            )

    def test_recorded_power_trace_wins_over_model(self, rig):
        model, rm, agg = rig
        trace = Profile([0.0, 60.0, 60.5, 180.0], [500.0, 500.0, 750.0, 750.0])
        job = make_job(nodes=3, submit=0.0, duration=300.0, node_power=trace)
        job.mark_queued(0.0)
        rm.allocate(job, 0.0)
        for now in (0.0, 45.0, 60.0, 61.0, 200.0):
            sample = agg.sample(now)
            self._assert_matches(sample, model.sample(now, rm.running_jobs))
        # Past the trace end the last value is held (gap-filling rule).
        assert agg.sample(290.0).job_power_kw == pytest.approx(3 * 750.0 / 1000.0)

    def test_off_grid_backdated_start_shifts_breakpoints(self, rig):
        # Replay may backdate a start off the tick grid; elapsed-time
        # indexing must follow the shifted change points exactly.
        model, rm, agg = rig
        phased = Profile([0.0, 100.0], [0.1, 0.9])
        job = make_job(nodes=2, submit=0.0, duration=400.0, cpu_profile=phased)
        job.mark_queued(0.0)
        rm.allocate(job, 7.5)
        for now in (15.0, 105.0, 107.5, 120.0):
            self._assert_matches(agg.sample(now), model.sample(now, rm.running_jobs))

    def test_idle_system_reports_exact_zero_job_power(self, rig):
        model, rm, agg = rig
        job = make_job(nodes=4, submit=0.0, duration=300.0, cpu=0.7)
        job.mark_queued(0.0)
        rm.allocate(job, 0.0)
        assert agg.sample(0.0).job_power_kw > 0.0
        rm.release(job, 300.0)
        sample = agg.sample(300.0)
        assert sample.job_power_kw == 0.0
        assert sample.mean_cpu_util == 0.0
        assert sample.mean_gpu_util == 0.0
        assert sample.allocated_nodes == 0
        self._assert_matches(sample, model.sample(300.0, rm.running_jobs))

    def test_next_breakpoint_after_matches_per_job_bound(self, rig):
        # The engine's event bound: the aggregator's heap minimum must be
        # float-identical to the min of Job.next_power_change_after over
        # the running set, at every query time.
        model, rm, agg = rig
        jobs = [
            make_job(
                nodes=2, submit=0.0, duration=600.0,
                cpu_profile=Profile([0.0, 120.0, 240.0], [0.2, 0.8, 0.5]),
            ),
            make_job(
                nodes=1, submit=0.0, duration=600.0,
                gpu_profile=Profile([0.0, 90.0, 180.0, 200.0], [0.1, 0.1, 0.9, 0.4]),
            ),
            make_job(nodes=1, submit=0.0, duration=600.0, cpu=0.5),  # constant
        ]
        for job in jobs:
            job.mark_queued(0.0)
            rm.allocate(job, 0.0)
        for now in (0.0, 15.0, 90.0, 120.0, 185.0, 240.0, 500.0):
            agg.sample(now)
            expected = min(
                (
                    change
                    for job in rm.running_by_id.values()
                    if (change := job.next_power_change_after(now)) is not None
                ),
                default=None,
            )
            assert agg.next_breakpoint_after(now) == expected

    def test_next_breakpoint_none_for_constant_jobs(self, rig):
        _, rm, agg = rig
        job = make_job(nodes=2, submit=0.0, duration=600.0, cpu=0.7)
        job.mark_queued(0.0)
        rm.allocate(job, 0.0)
        assert agg.next_breakpoint_after(0.0) is None

    def test_next_breakpoint_discards_stale_entries_of_ended_jobs(self, rig):
        _, rm, agg = rig
        phased = Profile([0.0, 300.0], [0.2, 0.9])
        job = make_job(nodes=2, submit=0.0, duration=600.0, cpu_profile=phased)
        job.mark_queued(0.0)
        rm.allocate(job, 0.0)
        assert agg.next_breakpoint_after(0.0) == pytest.approx(300.0)
        rm.release(job, 100.0)
        # The heap entry of the ended job is stale; the query discards it
        # (permanently) instead of reporting a breakpoint for a job that no
        # longer runs.
        assert agg.next_breakpoint_after(100.0) is None
        assert agg._changes == []

    def test_next_breakpoint_is_strictly_after_now(self, rig):
        _, rm, agg = rig
        phased = Profile([0.0, 120.0, 240.0], [0.2, 0.8, 0.5])
        job = make_job(nodes=2, submit=0.0, duration=600.0, cpu_profile=phased)
        job.mark_queued(0.0)
        rm.allocate(job, 0.0)
        # Querying exactly on a breakpoint applies the crossing and reports
        # the following one.
        assert agg.next_breakpoint_after(120.0) == pytest.approx(240.0)
        assert agg.next_breakpoint_after(240.0) is None

    def test_unsampled_membership_churn_is_caught_up(self, rig):
        # Several allocations/releases between two samples (one epoch jump
        # spanning many changes) must still land on the scan result.
        model, rm, agg = rig
        jobs = [
            make_job(nodes=2, submit=0.0, duration=1000.0, cpu=0.1 * (i + 1))
            for i in range(4)
        ]
        for job in jobs:
            job.mark_queued(0.0)
            rm.allocate(job, 0.0)
        self._assert_matches(agg.sample(0.0), model.sample(0.0, rm.running_jobs))
        rm.release(jobs[0], 100.0)
        rm.release(jobs[2], 100.0)
        late = make_job(nodes=8, submit=0.0, duration=500.0, gpu=0.9)
        late.mark_queued(100.0)
        rm.allocate(late, 100.0)
        self._assert_matches(agg.sample(100.0), model.sample(100.0, rm.running_jobs))

    def test_breakpoint_on_rounding_boundary_does_not_spin(self, rig):
        # start + t can compare <= now while now - start < t in float64;
        # the due-change loop must re-arm such a crossing strictly in the
        # future instead of popping the identical heap entry forever.
        model, rm, agg = rig
        start = 1029209.9090649254
        change = 262.40098236712504
        boundary = start + change
        assert boundary - start < change  # the pathological rounding holds
        profile = Profile([0.0, change], [0.2, 0.9])
        job = make_job(nodes=2, submit=start, start=start, duration=600.0,
                       cpu_profile=profile)
        job.mark_queued(start)
        rm.allocate(job, start)
        # Sampling exactly on the rounded boundary must terminate and match
        # the scan (which still sees the pre-change value, elapsed < change).
        self._assert_matches(
            agg.sample(boundary), model.sample(boundary, rm.running_jobs)
        )
        # One ulp later the elapsed time crosses and the new value applies.
        later = np.nextafter(boundary + 15.0, np.inf)
        self._assert_matches(
            agg.sample(later), model.sample(later, rm.running_jobs)
        )
