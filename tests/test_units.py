"""Tests for duration parsing and unit helpers."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError
from repro.units import (
    ZERO_POWER_ATOL_KW,
    celsius_to_kelvin,
    format_duration,
    joules_to_kilowatt_hours,
    kelvin_to_celsius,
    kilowatt_hours_to_joules,
    kilowatts_to_megawatts,
    is_zero_kw,
    node_seconds_to_node_hours,
    parse_duration,
    watts_to_kilowatts,
)


class TestParseDuration:
    def test_plain_int_seconds(self):
        assert parse_duration(61000) == 61000

    def test_plain_float_seconds(self):
        assert parse_duration(61000.4) == 61000

    def test_numeric_string(self):
        assert parse_duration("4381000") == 4381000

    @pytest.mark.parametrize(
        "text,expected",
        [
            ("15s", 15),
            ("1h", 3600),
            ("7d", 7 * 86400),
            ("35d", 35 * 86400),
            ("2w", 2 * 604800),
            ("90min", 5400),
            ("1.5h", 5400),
            ("3 hours", 10800),
        ],
    )
    def test_suffixed(self, text, expected):
        assert parse_duration(text) == expected

    @pytest.mark.parametrize(
        "text,expected",
        [
            ("1:30:00", 5400),
            ("0:45", 45 * 60),
            ("2-12:00:00", 2 * 86400 + 12 * 3600),
            ("24:00:00", 86400),
        ],
    )
    def test_clock_strings(self, text, expected):
        assert parse_duration(text) == expected

    def test_none_with_default(self):
        assert parse_duration(None, default=100) == 100

    def test_none_without_default_raises(self):
        with pytest.raises(ConfigurationError):
            parse_duration(None)

    @pytest.mark.parametrize("bad", ["", "abc", "5 parsecs", "-5h", -10])
    def test_invalid(self, bad):
        with pytest.raises(ConfigurationError):
            parse_duration(bad)

    @given(st.integers(min_value=0, max_value=10**9))
    def test_roundtrip_integers(self, seconds):
        assert parse_duration(seconds) == seconds

    @given(st.integers(min_value=1, max_value=10**5))
    def test_suffix_consistency(self, hours):
        assert parse_duration(f"{hours}h") == hours * 3600


class TestFormatDuration:
    def test_seconds_only(self):
        assert format_duration(75) == "00:01:15"

    def test_with_days(self):
        assert format_duration(2 * 86400 + 3661) == "2d01:01:01"

    def test_negative(self):
        assert format_duration(-60) == "-00:01:00"

    @given(st.integers(min_value=0, max_value=10**7))
    def test_format_parse_roundtrip(self, seconds):
        text = format_duration(seconds)
        # The dDHH:MM:SS format is parseable back via the clock-string rule
        # once the day separator is normalised.
        normalised = text.replace("d", "-", 1) if "d" in text else text
        assert parse_duration(normalised) == seconds


class TestUnitConversions:
    def test_watts_kilowatts(self):
        assert watts_to_kilowatts(1500.0) == pytest.approx(1.5)

    def test_kilowatts_megawatts(self):
        assert kilowatts_to_megawatts(25000.0) == pytest.approx(25.0)

    def test_joules_kwh_roundtrip(self):
        assert kilowatt_hours_to_joules(joules_to_kilowatt_hours(7.2e9)) == pytest.approx(7.2e9)

    def test_one_kwh(self):
        assert joules_to_kilowatt_hours(3.6e6) == pytest.approx(1.0)

    def test_node_hours(self):
        assert node_seconds_to_node_hours(7200.0) == pytest.approx(2.0)

    def test_temperature_roundtrip(self):
        assert kelvin_to_celsius(celsius_to_kelvin(21.5)) == pytest.approx(21.5)

    def test_celsius_to_kelvin_zero(self):
        assert celsius_to_kelvin(0.0) == pytest.approx(273.15)


class TestParseDurationErrorPaths:
    """The failure modes callers rely on for CLI argument validation."""

    def test_unknown_suffix_names_the_unit(self):
        with pytest.raises(ConfigurationError, match="parsecs"):
            parse_duration("5 parsecs")

    def test_malformed_mixed_text(self):
        with pytest.raises(ConfigurationError, match="cannot parse"):
            parse_duration("h5")

    def test_negative_float_rejected(self):
        with pytest.raises(ConfigurationError, match="non-negative"):
            parse_duration(-0.5)

    def test_none_error_mentions_requirement(self):
        with pytest.raises(ConfigurationError, match="required"):
            parse_duration(None, default=None)

    def test_none_default_zero_is_honoured(self):
        # default=0 is falsy but valid — must not be confused with "missing".
        assert parse_duration(None, default=0) == 0

    def test_whitespace_only_is_empty(self):
        with pytest.raises(ConfigurationError, match="empty"):
            parse_duration("   ")


class TestConversionRoundTrips:
    @given(st.floats(min_value=0.0, max_value=1e12, allow_nan=False))
    def test_kwh_joules_roundtrip(self, joules):
        assert joules_to_kilowatt_hours(kilowatt_hours_to_joules(joules / 3.6e6)) == (
            pytest.approx(joules / 3.6e6)
        )

    @given(st.floats(min_value=-273.15, max_value=1e4, allow_nan=False))
    def test_temperature_roundtrip(self, celsius):
        assert kelvin_to_celsius(celsius_to_kelvin(celsius)) == pytest.approx(
            celsius, abs=1e-9
        )

    @given(st.floats(min_value=-273.15, max_value=1e4, allow_nan=False))
    def test_kelvin_is_never_negative_for_physical_celsius(self, celsius):
        assert celsius_to_kelvin(celsius) >= 0.0


class TestIsZeroKw:
    def test_exact_zero(self):
        assert is_zero_kw(0.0)

    def test_negative_zero(self):
        assert is_zero_kw(-0.0)

    def test_subtolerance_residue(self):
        # Round-off residue from a reordered summation counts as zero.
        assert is_zero_kw(ZERO_POWER_ATOL_KW / 2)
        assert is_zero_kw(-ZERO_POWER_ATOL_KW / 2)

    def test_real_power_is_not_zero(self):
        # A single idle node is tens of watts — far above the tolerance.
        assert not is_zero_kw(0.01)
        assert not is_zero_kw(-0.01)

    def test_custom_tolerance(self):
        assert is_zero_kw(0.5, atol_kw=1.0)
        assert not is_zero_kw(0.5, atol_kw=0.1)
