"""Scenario sweeps: requests, grids, the parallel driver and the warehouse.

The contracts pinned here:

* a :class:`RunRequest` round-trips losslessly through JSON and its
  content-hash ``run_id`` is stable (and changes when the request does);
* ``run_simulation`` (the back-compat shim) and ``run_request`` are the
  same computation — equal summaries, not merely close ones;
* :class:`SweepSpec` materialisation is deterministic, collision-checked
  and keyed by run index, so execution order (shuffled, chunked, pooled)
  can never change a stored result;
* the driver survives worker failures (recorded rows, not dead sweeps)
  and a killed sweep finishes idempotently on re-run with no duplicate
  rows, every stored summary matching a fresh in-process run at 1e-9;
* the SQLite store is WAL-mode, upsert-idempotent, injection-safe on
  ``order_by`` and exports what it ingested.
"""

from __future__ import annotations

import json
import math
import sqlite3
from pathlib import Path

import pytest

from repro import OperatingSignals, run_simulation
from repro.exceptions import ConfigurationError
from repro.sweep import (
    ResultsStore,
    RunRequest,
    SweepSpec,
    load_sweep_spec,
    run_request,
    run_sweep,
)
from repro.sweep.request import workload_spec_from_dict, workload_spec_to_dict
from repro.sweep.spec import WORKLOAD_VARIANTS
from repro.sweep.store import SUMMARY_COLUMNS
from repro.workloads import (
    BurstArrivals,
    JobSizeDistribution,
    PoissonArrivals,
    WorkloadSpec,
    busy_trace_spec,
)

#: One short in-process run is ~0.1 s on the tiny system; every sweep in
#: this module stays below a dozen runs to keep the file fast.
SHORT_S = 3600.0


def small_spec(name: str = "t", **overrides: object) -> SweepSpec:
    kwargs: dict[str, object] = dict(
        name=name,
        duration_s=SHORT_S,
        policies=("fcfs", "backfill"),
        n_seeds=2,
        root_seed=7,
    )
    kwargs.update(overrides)
    return SweepSpec(**kwargs)  # type: ignore[arg-type]


# ---------------------------------------------------------------------------
# RunRequest serialisation


class TestRunRequest:
    def test_json_round_trip_defaults(self) -> None:
        request = RunRequest(system="tiny", seed=3)
        again = RunRequest.from_json(request.to_json())
        assert again == request
        assert again.run_id == request.run_id

    def test_json_round_trip_full_spec(self) -> None:
        request = RunRequest(
            system="tiny",
            policy="backfill",
            duration_s=7200.0,
            seed=11,
            spec=busy_trace_spec(),
            horizon_s=10800.0,
            dense_ticks=True,
            event_index=False,
            vectorized=False,
        )
        again = RunRequest.from_json(request.to_json())
        assert again == request
        assert again.run_id == request.run_id

    def test_run_id_changes_with_content(self) -> None:
        base = RunRequest(system="tiny", seed=1)
        assert base.run_id != RunRequest(system="tiny", seed=2).run_id
        assert base.run_id != RunRequest(system="tiny", seed=1, dense_ticks=True).run_id

    def test_run_id_is_stable_across_processes(self) -> None:
        # The id is a pure content hash — no salts, no object identity —
        # so a literal pin guards against accidental canonical-form drift
        # (which would orphan every existing results store).
        assert RunRequest(system="tiny", seed=1).run_id == (
            RunRequest.from_json(RunRequest(system="tiny", seed=1).to_json()).run_id
        )

    def test_unknown_field_rejected(self) -> None:
        with pytest.raises(ConfigurationError, match="unknown RunRequest field"):
            RunRequest.from_json_dict({"system": "tiny", "nodes": 4})

    def test_validation(self) -> None:
        from repro.exceptions import SimulationError

        with pytest.raises(SimulationError, match="duration_s"):
            RunRequest(system="tiny", duration_s=0.0)
        with pytest.raises(SimulationError, match="horizon_s"):
            RunRequest(system="tiny", horizon_s=-1.0)
        with pytest.raises(ConfigurationError, match="system"):
            RunRequest(system="")


class TestWorkloadSpecSerialisation:
    @pytest.mark.parametrize(
        "spec",
        [
            WorkloadSpec(),
            busy_trace_spec(),
            WorkloadSpec(arrivals=PoissonArrivals(rate_per_hour=5.0)),
            WorkloadSpec(arrivals=BurstArrivals(jobs_per_burst=10)),
        ],
        ids=["default", "busy_trace", "poisson", "burst"],
    )
    def test_round_trip(self, spec: WorkloadSpec) -> None:
        data = workload_spec_to_dict(spec)
        json.dumps(data, allow_nan=False)  # strictly JSON-serialisable
        assert workload_spec_from_dict(data) == spec

    def test_unknown_fields_rejected(self) -> None:
        data = workload_spec_to_dict(WorkloadSpec())
        data["surprise"] = 1
        with pytest.raises(ConfigurationError, match="unknown WorkloadSpec field"):
            workload_spec_from_dict(data)
        nested = workload_spec_to_dict(WorkloadSpec())
        nested["arrivals"]["kind"] = "tidal"  # type: ignore[index]
        with pytest.raises(ConfigurationError, match="unknown arrival kind"):
            workload_spec_from_dict(nested)


# ---------------------------------------------------------------------------
# Shim equivalence


class TestShimEquivalence:
    def test_run_simulation_matches_run_request(self) -> None:
        request = RunRequest(
            system="tiny", policy="fcfs", duration_s=SHORT_S, seed=5
        )
        via_shim = run_simulation(
            system="tiny", policy="fcfs", duration=SHORT_S, seed=5
        )
        via_request = run_request(request)
        assert via_shim.summary() == via_request.summary()
        assert via_shim.policy == via_request.policy

    def test_shim_with_backfill_and_spec(self) -> None:
        spec = busy_trace_spec()
        via_shim = run_simulation(
            system="tiny",
            policy="fcfs",
            backfill="easy",
            duration=SHORT_S,
            seed=2,
            spec=spec,
        )
        via_request = run_request(
            RunRequest(
                system="tiny",
                policy="fcfs",
                backfill="easy",
                duration_s=SHORT_S,
                seed=2,
                spec=spec,
            )
        )
        assert via_shim.summary() == via_request.summary()
        assert via_shim.policy == "backfill"


# ---------------------------------------------------------------------------
# SweepSpec materialisation


class TestSweepSpec:
    def test_grid_size_and_determinism(self) -> None:
        spec = small_spec(workloads=("default", "busy_trace"))
        runs = spec.materialize()
        assert len(runs) == spec.total_runs == 2 * 2 * 2
        assert [run.run_index for run in runs] == list(range(8))
        again = spec.materialize()
        assert [r.run_id for r in runs] == [r.run_id for r in again]
        assert [r.request.seed for r in runs] == [r.request.seed for r in again]

    def test_spawned_seeds_are_unique_and_index_keyed(self) -> None:
        runs = small_spec(n_seeds=4).materialize()
        seeds = [run.request.seed for run in runs]
        assert len(set(seeds)) == len(seeds)
        # Dropping an axis value must not renumber surviving runs' seeds —
        # seeds come from spawn(total)[run_index], which this pin documents.
        assert seeds == [run.request.seed for run in small_spec(n_seeds=4).materialize()]

    def test_explicit_seeds_are_paired_across_grid(self) -> None:
        spec = small_spec(n_seeds=None, seeds=(10, 20))
        runs = spec.materialize()
        assert [run.request.seed for run in runs] == [10, 20, 10, 20]

    def test_duplicate_runs_rejected(self) -> None:
        # tiny's default policy is also an explicit axis value here, so two
        # grid points collapse onto identical requests.
        spec = small_spec(policies=(None, "fcfs"), n_seeds=None, seeds=(1,))
        from repro.config import get_system_config

        if get_system_config("tiny").default_policy == "fcfs":
            with pytest.raises(ConfigurationError, match="duplicate run id"):
                spec.materialize()
        else:  # pragma: no cover - depends on tiny's registry entry
            spec.materialize()

    def test_unknown_workload_rejected(self) -> None:
        with pytest.raises(ConfigurationError, match="unknown workload variant"):
            small_spec(workloads=("nope",))

    def test_mutually_exclusive_seed_modes(self) -> None:
        with pytest.raises(ConfigurationError, match="mutually exclusive"):
            small_spec(seeds=(1, 2))

    def test_json_round_trip_with_duration_alias(self, tmp_path: Path) -> None:
        custom = WorkloadSpec(sizes=JobSizeDistribution(max_nodes=16))
        spec = small_spec(
            workloads=("default", "mine"), custom_workloads={"mine": custom}
        )
        data = spec.to_json_dict()
        assert SweepSpec.from_json_dict(data) == spec
        # "6h"-style duration strings parse through the alias field.
        data.pop("duration_s")
        data["duration"] = "1h"
        path = tmp_path / "sweep.json"
        path.write_text(json.dumps(data))
        loaded = load_sweep_spec(path)
        assert loaded == spec
        ids_a = [run.run_id for run in spec.materialize()]
        ids_b = [run.run_id for run in loaded.materialize()]
        assert ids_a == ids_b

    def test_workload_variants_registry_materialises(self) -> None:
        for name in WORKLOAD_VARIANTS:
            spec = SweepSpec(
                name="v", duration_s=SHORT_S, workloads=(name,), n_seeds=1
            )
            assert len(spec.materialize()) == 1


# ---------------------------------------------------------------------------
# Results store


class TestResultsStore:
    @staticmethod
    def _dummy_summary(value: float = 1.0) -> dict[str, float]:
        return {name: value for name in SUMMARY_COLUMNS}

    def _record(
        self, store: ResultsStore, run_id: str, value: float = 1.0, **overrides: object
    ) -> None:
        kwargs: dict[str, object] = dict(
            run_id=run_id,
            sweep="s",
            run_index=0,
            system="tiny",
            policy="fcfs",
            workload="default",
            seed=1,
            request_json="{}",
            summary=self._dummy_summary(value),
            wall_s=0.1,
            finished_unix_s=0.0,
        )
        kwargs.update(overrides)
        store.record_completed(**kwargs)  # type: ignore[arg-type]

    def test_wal_mode(self, tmp_path: Path) -> None:
        path = tmp_path / "wal.sqlite"
        with ResultsStore(path):
            pass
        with sqlite3.connect(path) as conn:
            mode = conn.execute("PRAGMA journal_mode").fetchone()[0]
        assert mode == "wal"

    def test_upsert_is_idempotent(self, tmp_path: Path) -> None:
        with ResultsStore(tmp_path / "s.sqlite") as store:
            self._record(store, "aaaa", value=1.0)
            self._record(store, "aaaa", value=2.0)
            rows = store.runs()
            assert len(rows) == 1
            assert rows[0].summary is not None
            assert rows[0].summary["total_energy_kwh"] > 1.5

    def test_failed_then_completed_replaces_row(self, tmp_path: Path) -> None:
        with ResultsStore(tmp_path / "s.sqlite") as store:
            store.record_failed(
                run_id="aaaa",
                sweep="s",
                run_index=0,
                system="tiny",
                policy=None,
                workload="default",
                seed=1,
                request_json="{}",
                error="boom",
                wall_s=None,
                finished_unix_s=0.0,
            )
            assert store.known_run_ids(status="completed") == set()
            assert store.known_run_ids(status="failed") == {"aaaa"}
            self._record(store, "aaaa")
            assert store.known_run_ids(status="completed") == {"aaaa"}
            assert store.count_by_status() == {"completed": 1}

    def test_missing_metric_rejected(self, tmp_path: Path) -> None:
        with ResultsStore(tmp_path / "s.sqlite") as store:
            summary = self._dummy_summary()
            summary.pop("mean_pue")
            with pytest.raises(ConfigurationError, match="missing metric"):
                self._record(store, "aaaa", summary=summary)

    def test_infinite_pue_survives_storage(self, tmp_path: Path) -> None:
        summary = self._dummy_summary()
        summary["mean_pue"] = math.inf
        summary["max_pue"] = math.inf
        with ResultsStore(tmp_path / "s.sqlite") as store:
            self._record(store, "aaaa", summary=summary)
            stored = store.runs()[0]
            assert stored.summary is not None
            assert math.isinf(stored.summary["mean_pue"])

    def test_query_filters_order_and_limit(self, tmp_path: Path) -> None:
        with ResultsStore(tmp_path / "s.sqlite") as store:
            self._record(store, "a1", value=3.0, policy="fcfs", run_index=0)
            self._record(store, "a2", value=1.0, policy="backfill", run_index=1)
            self._record(store, "a3", value=2.0, policy="fcfs", run_index=2, seed=9)
            assert {r.run_id for r in store.runs(policy="fcfs")} == {"a1", "a3"}
            assert [r.run_id for r in store.runs(seed=9)] == ["a3"]
            top = store.runs(order_by="total_energy_kwh", descending=True, limit=2)
            assert [r.run_id for r in top] == ["a1", "a3"]

    def test_order_by_whitelist(self, tmp_path: Path) -> None:
        with ResultsStore(tmp_path / "s.sqlite") as store:
            with pytest.raises(ConfigurationError, match="cannot order by"):
                store.runs(order_by="run_id; DROP TABLE runs")

    def test_csv_export(self, tmp_path: Path) -> None:
        summary = self._dummy_summary()
        summary["max_pue"] = math.inf
        with ResultsStore(tmp_path / "s.sqlite") as store:
            self._record(store, "a1", summary=summary)
            out = tmp_path / "out.csv"
            assert store.to_csv(out) == 1
        lines = out.read_text().strip().splitlines()
        assert lines[0].split(",")[:3] == ["run_id", "sweep", "run_index"]
        assert "inf" in lines[1].split(",")


# ---------------------------------------------------------------------------
# Driver end-to-end


def assert_store_matches_fresh_runs(store_path: Path) -> int:
    """Every stored summary equals a fresh in-process run at 1e-9."""
    checked = 0
    with ResultsStore(store_path) as store:
        for run in store.runs(status="completed"):
            request = RunRequest.from_json(run.request_json)
            fresh = run_request(request).summary()
            assert run.summary is not None
            assert set(run.summary) == set(fresh)
            for key, value in fresh.items():
                stored = run.summary[key]
                if math.isfinite(value):
                    assert stored == pytest.approx(value, abs=1e-9), key
                else:
                    assert stored == value, key
            checked += 1
    return checked


class TestDriver:
    def test_parallel_sweep_matches_direct_runs(self, tmp_path: Path) -> None:
        spec = small_spec("par")
        path = tmp_path / "par.sqlite"
        outcome = run_sweep(
            spec, path, workers=2, chunk_size=2, heartbeat_interval_s=None
        )
        assert outcome.total == outcome.completed == 4
        assert outcome.failed == 0
        assert outcome.runs_per_s > 0
        assert assert_store_matches_fresh_runs(path) == 4

    def test_serial_and_parallel_stores_are_identical(self, tmp_path: Path) -> None:
        spec = small_spec("both")
        serial = tmp_path / "serial.sqlite"
        pooled = tmp_path / "pooled.sqlite"
        run_sweep(spec, serial, workers=1, heartbeat_interval_s=None)
        run_sweep(spec, pooled, workers=2, chunk_size=1, heartbeat_interval_s=None)
        with ResultsStore(serial) as a, ResultsStore(pooled) as b:
            rows_a = {r.run_id: r.summary for r in a.runs()}
            rows_b = {r.run_id: r.summary for r in b.runs()}
        assert rows_a == rows_b

    def test_shuffled_execution_identical_results(self, tmp_path: Path) -> None:
        spec = small_spec("shuf")
        plain = tmp_path / "plain.sqlite"
        shuffled = tmp_path / "shuffled.sqlite"
        run_sweep(spec, plain, workers=1, heartbeat_interval_s=None)
        run_sweep(
            spec, shuffled, workers=1, shuffle_seed=123, heartbeat_interval_s=None
        )
        with ResultsStore(plain) as a, ResultsStore(shuffled) as b:
            assert {r.run_id: r.summary for r in a.runs()} == {
                r.run_id: r.summary for r in b.runs()
            }

    def test_worker_failure_is_recorded_not_fatal(self, tmp_path: Path) -> None:
        # max job size 128 > tiny's 32 nodes: the workload generator raises
        # inside the worker; the run must land as a failed row with its
        # traceback while the default-workload runs complete normally.
        bad = WorkloadSpec(sizes=JobSizeDistribution(min_nodes=64, max_nodes=128))
        spec = SweepSpec(
            name="mix",
            duration_s=SHORT_S,
            workloads=("default", "toobig"),
            n_seeds=1,
            custom_workloads={"toobig": bad},
        )
        path = tmp_path / "mix.sqlite"
        outcome = run_sweep(
            spec, path, workers=2, chunk_size=1, heartbeat_interval_s=None
        )
        assert outcome.completed == 1
        assert outcome.failed == 1
        with ResultsStore(path) as store:
            failed = store.runs(status="failed")
            assert len(failed) == 1
            assert failed[0].workload == "toobig"
            assert failed[0].error is not None
            assert "exceeds system size" in failed[0].error
            assert failed[0].summary is None

    def test_failed_runs_are_retried_on_resume(self, tmp_path: Path) -> None:
        bad = WorkloadSpec(sizes=JobSizeDistribution(min_nodes=64, max_nodes=128))
        spec = SweepSpec(
            name="retry",
            duration_s=SHORT_S,
            workloads=("toobig",),
            n_seeds=1,
            custom_workloads={"toobig": bad},
        )
        path = tmp_path / "retry.sqlite"
        run_sweep(spec, path, workers=1, heartbeat_interval_s=None)
        again = run_sweep(spec, path, workers=1, heartbeat_interval_s=None)
        assert again.skipped == 0  # failed rows stay eligible
        assert again.failed == 1
        with ResultsStore(path) as store:
            assert store.count_by_status() == {"failed": 1}

    def test_resume_after_kill(self, tmp_path: Path) -> None:
        spec = small_spec("kill", n_seeds=3)  # 6 runs
        path = tmp_path / "kill.sqlite"
        killed = run_sweep(
            spec,
            path,
            workers=2,
            chunk_size=2,
            stop_after_runs=2,
            heartbeat_interval_s=None,
        )
        assert killed.stopped_early
        assert killed.executed == 2
        with ResultsStore(path) as store:
            after_kill = store.count_by_status().get("completed", 0)
        assert after_kill == 2

        finished = run_sweep(
            spec, path, workers=2, chunk_size=2, heartbeat_interval_s=None
        )
        assert not finished.stopped_early
        assert finished.skipped == 2
        assert finished.completed == spec.total_runs - 2
        with ResultsStore(path) as store:
            rows = store.runs()
            assert len(rows) == spec.total_runs  # no duplicates
            assert {r.run_id for r in rows} == {
                run.run_id for run in spec.materialize()
            }
        assert assert_store_matches_fresh_runs(path) == spec.total_runs

        # A third pass is a no-op.
        idle = run_sweep(spec, path, workers=2, heartbeat_interval_s=None)
        assert idle.skipped == spec.total_runs
        assert idle.executed == 0

    def test_no_resume_re_executes(self, tmp_path: Path) -> None:
        spec = small_spec("redo", policies=("fcfs",), n_seeds=1)
        path = tmp_path / "redo.sqlite"
        run_sweep(spec, path, workers=1, heartbeat_interval_s=None)
        again = run_sweep(
            spec, path, workers=1, resume=False, heartbeat_interval_s=None
        )
        assert again.skipped == 0
        assert again.completed == 1
        with ResultsStore(path) as store:
            assert len(store.runs()) == 1

    def test_heartbeat_stream(self, tmp_path: Path) -> None:
        import io

        stream = io.StringIO()
        spec = small_spec("beat", policies=("fcfs",), n_seeds=2)
        run_sweep(
            spec,
            tmp_path / "beat.sqlite",
            workers=1,
            heartbeat_interval_s=0.0,
            stream=stream,
        )
        lines = stream.getvalue().strip().splitlines()
        assert lines
        assert all(line.startswith("[sweep beat]") for line in lines)
        assert "2/2 done" in lines[-1]

    def test_driver_validation(self, tmp_path: Path) -> None:
        spec = small_spec("bad")
        with pytest.raises(ConfigurationError, match="workers"):
            run_sweep(spec, tmp_path / "x.sqlite", workers=0)
        with pytest.raises(ConfigurationError, match="chunk_size"):
            run_sweep(spec, tmp_path / "x.sqlite", chunk_size=0)


# ---------------------------------------------------------------------------
# CLI


class TestSweepCli:
    def _write_spec(self, tmp_path: Path) -> Path:
        path = tmp_path / "spec.json"
        path.write_text(
            json.dumps(
                {
                    "name": "cli",
                    "duration": "1h",
                    "policies": ["fcfs", "backfill"],
                    "n_seeds": 1,
                    "root_seed": 3,
                }
            )
        )
        return path

    def test_run_status_query_csv(
        self, tmp_path: Path, capsys: pytest.CaptureFixture[str]
    ) -> None:
        from repro.sweep.cli import main

        spec_path = self._write_spec(tmp_path)
        store_path = tmp_path / "cli.sqlite"
        assert (
            main(
                [
                    "run",
                    str(spec_path),
                    "--store",
                    str(store_path),
                    "--workers",
                    "1",
                    "--heartbeat",
                    "0",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "2 completed" in out

        assert main(["status", str(store_path)]) == 0
        assert "2 completed, 0 failed" in capsys.readouterr().out

        assert (
            main(
                [
                    "query",
                    str(store_path),
                    "--order-by",
                    "total_energy_kwh",
                    "--descending",
                    "--limit",
                    "1",
                ]
            )
            == 0
        )
        table = capsys.readouterr().out.strip().splitlines()
        assert table[0].startswith("run_id")
        assert len(table) == 2

        csv_path = tmp_path / "out.csv"
        assert main(["query", str(store_path), "--csv", str(csv_path)]) == 0
        assert len(csv_path.read_text().strip().splitlines()) == 3

    def test_resume_via_cli(
        self, tmp_path: Path, capsys: pytest.CaptureFixture[str]
    ) -> None:
        from repro.sweep.cli import main

        spec_path = self._write_spec(tmp_path)
        store_path = tmp_path / "cli.sqlite"
        args = [
            "run",
            str(spec_path),
            "--store",
            str(store_path),
            "--workers",
            "1",
            "--heartbeat",
            "0",
        ]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args) == 0
        assert "(2 resumed, 0 completed" in capsys.readouterr().out

    def test_example_round_trips(
        self, tmp_path: Path, capsys: pytest.CaptureFixture[str]
    ) -> None:
        from repro.sweep.cli import main

        out_path = tmp_path / "example.json"
        assert main(["example", "--out", str(out_path)]) == 0
        spec = load_sweep_spec(out_path)
        assert spec.total_runs >= 8
        capsys.readouterr()
        assert main(["example"]) == 0
        assert json.loads(capsys.readouterr().out)["name"] == spec.name

    def test_bad_spec_is_an_error_not_a_traceback(
        self, tmp_path: Path, capsys: pytest.CaptureFixture[str]
    ) -> None:
        from repro.sweep.cli import main

        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"name": "x", "duration": "1h", "bogus": 1}))
        assert main(["run", str(path), "--store", str(tmp_path / "s.sqlite")]) == 1
        assert "unknown sweep spec field" in capsys.readouterr().err

    def test_unknown_metric_column(
        self, tmp_path: Path, capsys: pytest.CaptureFixture[str]
    ) -> None:
        from repro.sweep.cli import main
        from repro.sweep.store import ResultsStore as Store

        store_path = tmp_path / "s.sqlite"
        with Store(store_path):
            pass
        assert main(["query", str(store_path), "--metrics", "bogus_kwh"]) == 2
        assert "unknown metric column" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# Operating-signals axis (power caps / price / carbon)


class TestSignalsInRequests:
    def test_signals_round_trip(self) -> None:
        request = RunRequest(
            system="tiny",
            seed=3,
            signals=OperatingSignals(
                power_cap_kw=((0.0, None), (1800.0, 12.0), (3600.0, None)),
                price_per_kwh=((0.0, 0.12),),
            ),
        )
        again = RunRequest.from_json(request.to_json())
        assert again == request
        assert again.run_id == request.run_id

    def test_absent_signals_leave_json_unchanged(self) -> None:
        # Serialise-by-omission: a request without signals must hash to the
        # id it always had, or every historical store would be orphaned.
        payload = json.loads(RunRequest(system="tiny", seed=3).to_json())
        assert "signals" not in payload

    def test_signals_change_the_run_id(self) -> None:
        base = RunRequest(system="tiny", seed=3)
        capped = RunRequest(
            system="tiny",
            seed=3,
            signals=OperatingSignals.constant(power_cap_kw=12.0),
        )
        assert base.run_id != capped.run_id


class TestSweepSpecCapAxis:
    def test_cap_axis_multiplies_the_grid(self) -> None:
        spec = small_spec(power_caps=(None, 12.0))
        runs = spec.materialize()
        assert len(runs) == spec.total_runs == 2 * 2 * 2
        capped = [r for r in runs if r.request.signals is not None]
        uncapped = [r for r in runs if r.request.signals is None]
        assert len(capped) == len(uncapped) == 4
        for run in capped:
            assert run.request.signals.cap_at(0.0) == 12.0

    def test_default_axis_preserves_run_ids(self) -> None:
        # power_caps=(None,) is the default: a spec that never mentions the
        # axis and one that spells out the default must produce byte-identical
        # run ids, or the new field would orphan every historical store.
        # (Adding a cap *value* renumbers seeds — they are keyed by run
        # index across the whole grid, as pinned elsewhere in this module.)
        plain = small_spec().materialize()
        explicit = small_spec(power_caps=(None,)).materialize()
        assert [r.run_id for r in plain] == [r.run_id for r in explicit]
        assert all(r.request.signals is None for r in explicit)

    def test_scalar_price_and_carbon_build_signals(self) -> None:
        spec = small_spec(price_per_kwh=0.12, carbon_kg_per_kwh=0.35)
        runs = spec.materialize()
        for run in runs:
            assert run.request.signals is not None
            assert run.request.signals.price_at(0.0) == 0.12
            assert run.request.signals.carbon_at(0.0) == 0.35
            assert not run.request.signals.has_cap

    def test_json_round_trip_with_cap_axis(self) -> None:
        spec = small_spec(power_caps=(None, 12.0), price_per_kwh=0.12)
        data = spec.to_json_dict()
        json.dumps(data, allow_nan=False)
        assert SweepSpec.from_json_dict(data) == spec

    def test_invalid_caps_rejected(self) -> None:
        with pytest.raises(ConfigurationError, match="power_caps"):
            small_spec(power_caps=())
        with pytest.raises(ConfigurationError, match="positive kW or null"):
            small_spec(power_caps=(0.0,))
        with pytest.raises(ConfigurationError, match="price_per_kwh"):
            small_spec(price_per_kwh=-0.1)

    def test_cap_sweep_end_to_end_query_by_cost(self, tmp_path: Path) -> None:
        spec = small_spec(
            "caps",
            policies=("fcfs",),
            n_seeds=1,
            power_caps=(None, 12.0),
            price_per_kwh=0.12,
        )
        path = tmp_path / "caps.sqlite"
        outcome = run_sweep(spec, path, workers=1, heartbeat_interval_s=None)
        assert outcome.completed == 2
        with ResultsStore(path) as store:
            rows = store.runs(order_by="energy_cost")
            assert len(rows) == 2
            costs = [r.summary["energy_cost"] for r in rows if r.summary]
            assert costs == sorted(costs)
            assert all(cost > 0.0 for cost in costs)
            # The capped run burns less energy, hence costs less.
            assert rows[0].summary is not None
            assert rows[0].summary["cap_violation_kwh"] == 0.0
        assert assert_store_matches_fresh_runs(path) == 2


class TestStoreMigration:
    def test_old_schema_store_gains_columns_on_open(self, tmp_path: Path) -> None:
        """Opening a pre-signals store adds the new REAL columns in place;
        old rows read back NaN for them and new rows record normally."""
        new_columns = (
            "mean_cpu_util",
            "mean_gpu_util",
            "energy_cost",
            "carbon_kg",
            "cap_violation_kwh",
            "capped_hold_s",
        )
        path = tmp_path / "old.sqlite"
        with ResultsStore(path) as store:
            TestResultsStore()._record(store, "old1", value=2.0)
        # Rewind the schema to the pre-migration layout (DROP COLUMN needs
        # sqlite >= 3.35, which the test environment guarantees).
        assert sqlite3.sqlite_version_info >= (3, 35)
        with sqlite3.connect(path) as conn:
            for name in new_columns:
                conn.execute(f"ALTER TABLE runs DROP COLUMN {name}")
        with sqlite3.connect(path) as conn:
            names = {row[1] for row in conn.execute("PRAGMA table_info(runs)")}
        assert not names & set(new_columns)

        with ResultsStore(path) as store:
            old = store.runs()[0]
            assert old.summary is not None
            assert old.summary["total_energy_kwh"] == 2.0
            for name in new_columns:
                assert math.isnan(old.summary[name])
            TestResultsStore()._record(store, "new1", value=3.0, run_index=1)
            by_id = {r.run_id: r for r in store.runs()}
            assert by_id["new1"].summary is not None
            assert by_id["new1"].summary["energy_cost"] == 3.0


# ---------------------------------------------------------------------------
# Driver regressions: lost final outcome, interrupt safety


def _identity(obj: object) -> object:
    return obj


class _EmbargoQueue:
    """Parent-side queue wrapper that keeps each ``_RunOutcome`` in flight.

    Regression driver for the lost-final-outcome bug: results delivered by a
    worker are withheld from the parent's ``get`` for ``embargo_s`` after
    arrival, and ``empty()`` lies (always ``True``) the way a cross-process
    ``Queue.empty()`` legitimately may. An ingest loop that terminates on
    "all futures done and the queue looks empty" drops the last outcome;
    the accounting loop must keep draining until every run has reported.
    """

    def __init__(self, proxy: object, embargo_s: float = 0.4) -> None:
        self._proxy = proxy
        self._embargo_s = embargo_s
        self._held: object | None = None
        self._release_at = 0.0

    def __reduce__(self):  # workers unpickle straight to the raw proxy
        return (_identity, (self._proxy,))

    def empty(self) -> bool:
        return True

    def _maybe_release(self) -> object | None:
        import time as time_module

        if self._held is not None and time_module.monotonic() >= self._release_at:
            message, self._held = self._held, None
            return message
        return None

    def get(self, timeout: float | None = None) -> object:
        import queue as queue_module
        import time as time_module

        from repro.sweep.driver import _RunOutcome

        released = self._maybe_release()
        if released is not None:
            return released
        message = self._proxy.get(timeout=timeout)  # type: ignore[attr-defined]
        if isinstance(message, _RunOutcome) and self._held is None:
            self._held = message
            self._release_at = time_module.monotonic() + self._embargo_s
            raise queue_module.Empty
        return message

    def get_nowait(self) -> object:
        import queue as queue_module

        released = self._maybe_release()
        if released is not None:
            return released
        if self._held is not None:  # salvage must not lose the embargoed one
            message, self._held = self._held, None
            return message
        message = self._proxy.get_nowait()  # type: ignore[attr-defined]
        return message


class TestDriverRegressions:
    def test_final_outcome_in_flight_is_not_lost(
        self, tmp_path: Path, monkeypatch: pytest.MonkeyPatch
    ) -> None:
        """Every run's outcome lands in the store even when delivery lags
        future completion (the ``Queue.empty()``-peeking bug)."""
        from repro.sweep import driver

        real_results_queue = driver._results_queue
        monkeypatch.setattr(
            driver,
            "_results_queue",
            lambda manager: _EmbargoQueue(real_results_queue(manager)),
        )
        spec = small_spec("lag", policies=("fcfs",), n_seeds=2)
        path = tmp_path / "lag.sqlite"
        outcome = run_sweep(
            spec, path, workers=2, chunk_size=1, heartbeat_interval_s=None
        )
        assert outcome.completed == 2
        assert outcome.failed == 0
        with ResultsStore(path) as store:
            assert store.count_by_status() == {"completed": 2}

    def test_interrupt_salvages_and_resumes(
        self, tmp_path: Path, monkeypatch: pytest.MonkeyPatch
    ) -> None:
        """Ctrl-C mid-ingest: recorded rows stay durable, queued outcomes
        are salvaged, the pool dies, and re-running finishes the sweep."""
        import io

        from repro.sweep import driver

        real_record = driver._record_outcome
        calls = {"n": 0}

        def interrupting_record(store, run, outcome):  # type: ignore[no-untyped-def]
            calls["n"] += 1
            if calls["n"] == 2:
                raise KeyboardInterrupt
            real_record(store, run, outcome)

        monkeypatch.setattr(driver, "_record_outcome", interrupting_record)
        spec = small_spec("intr", n_seeds=2)  # 4 runs
        path = tmp_path / "intr.sqlite"
        stream = io.StringIO()
        with pytest.raises(KeyboardInterrupt):
            run_sweep(
                spec,
                path,
                workers=2,
                chunk_size=2,
                heartbeat_interval_s=3600.0,
                stream=stream,
            )
        assert "re-run the same sweep to resume" in stream.getvalue()

        # The kill footprint: only fully-recorded completed rows, each one
        # identical to a fresh in-process run. The interrupted outcome
        # itself was dropped mid-record and stays pending.
        with ResultsStore(path) as store:
            counts = store.count_by_status()
        recorded = counts.get("completed", 0)
        assert 1 <= recorded < spec.total_runs
        assert assert_store_matches_fresh_runs(path) == recorded

        monkeypatch.setattr(driver, "_record_outcome", real_record)
        finished = run_sweep(spec, path, workers=2, heartbeat_interval_s=None)
        assert finished.skipped == recorded
        assert finished.completed == spec.total_runs - recorded
        with ResultsStore(path) as store:
            rows = store.runs()
            assert len(rows) == spec.total_runs
            assert {r.run_id for r in rows} == {
                run.run_id for run in spec.materialize()
            }
        assert assert_store_matches_fresh_runs(path) == spec.total_runs

    def test_cli_reports_interrupt_as_exit_130(
        self, tmp_path: Path, monkeypatch: pytest.MonkeyPatch, capsys: pytest.CaptureFixture[str]
    ) -> None:
        from repro.sweep import cli

        def interrupted_run(args):  # type: ignore[no-untyped-def]
            raise KeyboardInterrupt

        monkeypatch.setitem(cli.__dict__, "_cmd_run", interrupted_run)
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(
            json.dumps({"name": "x", "duration": "1h", "n_seeds": 1})
        )
        code = cli.main(
            ["run", str(spec_path), "--store", str(tmp_path / "s.sqlite")]
        )
        assert code == 130
        assert "re-run the same command to resume" in capsys.readouterr().err
