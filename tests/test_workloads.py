"""Tests for synthetic workload distributions and the generator."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import get_system_config
from repro.exceptions import ConfigurationError
from repro.workloads import (
    JobSizeDistribution,
    PoissonArrivals,
    RuntimeDistribution,
    SyntheticWorkloadGenerator,
    UserPopulation,
    WaveArrivals,
    WorkloadSpec,
)


class TestJobSizeDistribution:
    def test_within_bounds(self, rng):
        dist = JobSizeDistribution(min_nodes=2, max_nodes=100)
        sizes = dist.sample(rng, 500)
        assert sizes.min() >= 2
        assert sizes.max() <= 100

    def test_full_system_fraction(self, rng):
        dist = JobSizeDistribution(min_nodes=1, max_nodes=64, full_system_fraction=1.0)
        assert np.all(dist.sample(rng, 50) == 64)

    def test_skew_towards_small_jobs(self, rng):
        dist = JobSizeDistribution(min_nodes=1, max_nodes=1024, small_job_skew=2.0)
        sizes = dist.sample(rng, 2000)
        assert np.median(sizes) < 64

    def test_invalid_range(self):
        with pytest.raises(ConfigurationError):
            JobSizeDistribution(min_nodes=10, max_nodes=5)

    def test_invalid_bias(self):
        with pytest.raises(ConfigurationError):
            JobSizeDistribution(power_of_two_bias=1.5)

    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_always_positive_integers(self, seed):
        rng = np.random.default_rng(seed)
        sizes = JobSizeDistribution(min_nodes=1, max_nodes=256).sample(rng, 100)
        assert sizes.dtype.kind == "i"
        assert (sizes >= 1).all()


class TestRuntimeDistribution:
    def test_within_bounds(self, rng):
        dist = RuntimeDistribution(median_s=3600, min_s=60, max_s=7200)
        runtimes = dist.sample(rng, 1000)
        assert runtimes.min() >= 60
        assert runtimes.max() <= 7200

    def test_wall_limits_at_least_runtime(self, rng):
        dist = RuntimeDistribution()
        runtimes = dist.sample(rng, 200)
        limits = dist.sample_wall_limits(rng, runtimes)
        assert np.all(limits >= runtimes)

    def test_wall_limits_granularity(self, rng):
        dist = RuntimeDistribution(limit_granularity_s=1800)
        runtimes = dist.sample(rng, 100)
        limits = dist.sample_wall_limits(rng, runtimes)
        np.testing.assert_allclose(np.mod(limits, 1800), 0, atol=1e-9)

    def test_invalid_overestimate(self):
        with pytest.raises(ConfigurationError):
            RuntimeDistribution(overestimate_max=0.5)


class TestArrivals:
    def test_poisson_in_window(self, rng):
        arrivals = PoissonArrivals(rate_per_hour=60).sample(rng, 3600.0, start_s=100.0)
        assert np.all(arrivals >= 100.0)
        assert np.all(arrivals < 3700.0)
        assert np.all(np.diff(arrivals) >= 0)

    def test_poisson_rate_scaling(self, rng):
        low = PoissonArrivals(rate_per_hour=5).sample(rng, 48 * 3600.0).size
        high = PoissonArrivals(rate_per_hour=50).sample(rng, 48 * 3600.0).size
        assert high > low * 3

    def test_wave_intensity_oscillates(self):
        arrivals = WaveArrivals(rate_per_hour=10, amplitude=0.9)
        t = np.linspace(0, 86400, 200)
        intensity = arrivals.intensity(t)
        assert intensity.max() > 1.5 * intensity.min()
        assert intensity.min() > 0

    def test_wave_sample_sorted_in_window(self, rng):
        times = WaveArrivals(rate_per_hour=30).sample(rng, 86400.0)
        assert np.all(np.diff(times) >= 0)
        assert times.min() >= 0.0
        assert times.max() < 86400.0

    def test_invalid_amplitude(self):
        with pytest.raises(ConfigurationError):
            WaveArrivals(amplitude=1.0)


class TestUserPopulation:
    def test_user_names_within_pool(self, rng):
        pop = UserPopulation(n_users=5, n_accounts=2)
        users = pop.sample_users(rng, 100)
        assert set(users) <= {f"user{i:03d}" for i in range(5)}

    def test_account_mapping_stable(self):
        pop = UserPopulation(n_accounts=4)
        assert pop.account_of("user013") == pop.account_of("user013")
        assert pop.account_of("user013").startswith("acct")

    def test_zipf_concentration(self, rng):
        pop = UserPopulation(n_users=50, zipf_exponent=1.5)
        users = pop.sample_users(rng, 2000)
        counts = {}
        for user in users:
            counts[user] = counts.get(user, 0) + 1
        top = max(counts.values())
        assert top > 2000 / 50  # far more than uniform share


class TestSyntheticWorkloadGenerator:
    def test_deterministic_given_seed(self, tiny_system):
        spec = WorkloadSpec(sizes=JobSizeDistribution(max_nodes=16))
        a = SyntheticWorkloadGenerator(tiny_system, spec, seed=3).generate(4 * 3600)
        b = SyntheticWorkloadGenerator(tiny_system, spec, seed=3).generate(4 * 3600)
        assert len(a) == len(b)
        assert [j.nodes_required for j in a] == [j.nodes_required for j in b]
        assert [j.submit_time for j in a] == [j.submit_time for j in b]

    def test_different_seeds_differ(self, tiny_system):
        spec = WorkloadSpec(sizes=JobSizeDistribution(max_nodes=16))
        a = SyntheticWorkloadGenerator(tiny_system, spec, seed=1).generate(4 * 3600)
        b = SyntheticWorkloadGenerator(tiny_system, spec, seed=2).generate(4 * 3600)
        assert [j.submit_time for j in a] != [j.submit_time for j in b]

    def test_jobs_fit_system(self, tiny_workload, tiny_system):
        assert all(1 <= j.nodes_required <= tiny_system.total_nodes for j in tiny_workload)

    def test_jobs_sorted_by_submit(self, tiny_workload):
        submits = [j.submit_time for j in tiny_workload]
        assert submits == sorted(submits)

    def test_time_ordering_invariants(self, tiny_workload):
        for job in tiny_workload:
            assert job.submit_time <= job.start_time < job.end_time
            assert job.wall_time_limit is None or job.wall_time_limit > 0

    def test_prehistory_jobs_present(self, tiny_workload):
        assert any(j.submit_time < 0 for j in tiny_workload)

    def test_no_prehistory_when_disabled(self, tiny_system):
        gen = SyntheticWorkloadGenerator(
            tiny_system, WorkloadSpec(sizes=JobSizeDistribution(max_nodes=8)), seed=5
        )
        jobs = gen.generate(3600.0, include_prehistory=False)
        assert all(j.submit_time >= 0 for j in jobs)

    def test_power_trace_generated(self, tiny_workload):
        assert all(j.node_power is not None for j in tiny_workload)

    def test_power_trace_consistent_with_node_model(self, tiny_workload, tiny_system):
        node = tiny_system.partitions[0].node_power
        for job in tiny_workload[:10]:
            assert job.node_power.minimum() >= node.min_w - 1e-6
            assert job.node_power.maximum() <= node.max_w + 1e-6

    def test_scalar_telemetry_mode(self, tiny_system):
        spec = WorkloadSpec(
            sizes=JobSizeDistribution(max_nodes=8), trace_interval_s=None
        )
        jobs = SyntheticWorkloadGenerator(tiny_system, spec, seed=2).generate(3600.0)
        assert all(len(j.cpu_util) <= 2 for j in jobs)

    def test_generate_job_count_approximate(self, tiny_system):
        gen = SyntheticWorkloadGenerator(
            tiny_system,
            WorkloadSpec(
                sizes=JobSizeDistribution(max_nodes=8),
                arrivals=WaveArrivals(rate_per_hour=30),
            ),
            seed=11,
        )
        jobs = gen.generate_job_count(200)
        assert 100 <= len(jobs) <= 350

    def test_oversized_workload_rejected(self, tiny_system):
        spec = WorkloadSpec(sizes=JobSizeDistribution(max_nodes=10_000))
        with pytest.raises(ConfigurationError):
            SyntheticWorkloadGenerator(tiny_system, spec)

    def test_utilization_profiles_in_unit_range(self, tiny_workload):
        for job in tiny_workload[:20]:
            for profile in (job.cpu_util, job.gpu_util, job.mem_util):
                assert profile.minimum() >= 0.0
                assert profile.maximum() <= 1.0

    def test_accounts_assigned(self, tiny_workload):
        assert all(j.account.startswith("acct") for j in tiny_workload)
        assert all(j.user.startswith("user") for j in tiny_workload)

    def test_full_scale_system_generation(self):
        """Generating a Frontier-sized workload works and scales to 9,216-node jobs."""
        frontier = get_system_config("frontier")
        spec = WorkloadSpec(
            sizes=JobSizeDistribution(min_nodes=1, max_nodes=9216, full_system_fraction=0.01),
            arrivals=WaveArrivals(rate_per_hour=20),
            trace_interval_s=None,
        )
        jobs = SyntheticWorkloadGenerator(frontier, spec, seed=9).generate(
            6 * 3600, include_prehistory=False
        )
        assert len(jobs) > 50
        assert max(j.nodes_required for j in jobs) <= 9216


class TestSampleNoise:
    def _spec(self, sample_noise):
        return WorkloadSpec(
            sizes=JobSizeDistribution(max_nodes=8),
            arrivals=WaveArrivals(rate_per_hour=10),
            trace_interval_s=60.0,
            phase_count_range=(2, 4),
            sample_noise=sample_noise,
        )

    def test_zero_noise_yields_piecewise_constant_profiles(self, tiny_system):
        jobs = SyntheticWorkloadGenerator(tiny_system, self._spec(0.0), seed=3).generate(
            4 * 3600.0
        )
        assert jobs
        for job in jobs:
            for profile in (job.cpu_util, job.gpu_util, job.mem_util):
                # At most phases-1 = 3 value changes, regardless of how many
                # 60 s samples spell the phases out.
                assert profile.change_points().size <= 3

    def test_noise_scale_does_not_perturb_other_draws(self, tiny_system):
        noisy = SyntheticWorkloadGenerator(tiny_system, self._spec(1.0), seed=3).generate(
            4 * 3600.0
        )
        flat = SyntheticWorkloadGenerator(tiny_system, self._spec(0.0), seed=3).generate(
            4 * 3600.0
        )
        assert [j.submit_time for j in noisy] == [j.submit_time for j in flat]
        assert [j.nodes_required for j in noisy] == [j.nodes_required for j in flat]
        assert [j.duration for j in noisy] == [j.duration for j in flat]

    def test_negative_noise_rejected(self):
        with pytest.raises(ConfigurationError):
            self._spec(-0.1)


class TestBurstArrivals:
    """The deterministic same-instant burst process behind burst_arrival_spec."""

    def test_bursts_repeat_within_window(self, rng):
        from repro.workloads.distributions import BurstArrivals

        times = BurstArrivals(jobs_per_burst=5, burst_interval_s=3600.0).sample(
            rng, 2.5 * 3600.0
        )
        assert times.tolist() == [0.0] * 5 + [3600.0] * 5 + [7200.0] * 5

    def test_draws_nothing_from_rng(self, rng):
        import numpy as np

        from repro.workloads.distributions import BurstArrivals

        before = rng.bit_generator.state
        BurstArrivals(jobs_per_burst=3).sample(rng, 7200.0)
        assert rng.bit_generator.state == before  # seed only shapes job bodies

    def test_float_boundary_burst_is_kept(self, rng):
        # (start_s - first)/interval can round just above an integer; the
        # bare ceil used to clip the burst sitting exactly on the window
        # start. Chunked windows must partition the bursts exactly.
        import numpy as np

        from repro.workloads.distributions import BurstArrivals

        arrivals = BurstArrivals(jobs_per_burst=1, burst_interval_s=0.1)
        got = arrivals.sample(rng, 0.25, start_s=3 * 0.1)
        assert len(got) == 3 and got[0] == 3 * 0.1
        chunked = np.concatenate([
            arrivals.sample(rng, 0.3, start_s=0.0),
            arrivals.sample(rng, 0.3, start_s=0.3),
        ])
        assert np.array_equal(arrivals.sample(rng, 0.6), chunked)

    def test_validation(self):
        from repro.exceptions import ConfigurationError
        from repro.workloads.distributions import BurstArrivals

        with pytest.raises(ConfigurationError):
            BurstArrivals(jobs_per_burst=0)
        with pytest.raises(ConfigurationError):
            BurstArrivals(burst_interval_s=0.0)
