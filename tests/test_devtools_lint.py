"""Tests for the ``repro-lint`` domain linter and the ``hot_path`` marker.

Every rule gets positive fixtures (code that must be flagged) and negative
fixtures (idiomatic code that must pass), plus suppression-comment tests,
CLI exit-status tests and the meta-test that the shipped tree itself lints
clean.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.devtools import HOT_PATH_ATTRIBUTE, hot_path
from repro.devtools.lint import RULES, Finding, lint_paths, lint_source, main

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Minimal README stand-in for fixtures that exercise the glossary rule.
GLOSSARY = """
| `engine_steps_total` | counter | engine steps |
| `rm_end_heap_pops_total` | counter | heap pops |
| `engine_phase_<phase>_us` | histogram | phase wall time |
"""


def rules_of(findings: list[Finding]) -> list[str]:
    return [finding.rule for finding in findings]


# ---------------------------------------------------------------------------
# unit-suffix
# ---------------------------------------------------------------------------


class TestUnitSuffixRule:
    @pytest.mark.parametrize(
        "snippet",
        [
            "power_watts = 5.0\n",
            "def f(runtime_seconds):\n    return runtime_seconds\n",
            "self.temp_celsius = 20.0\n",
            "def duration_hours():\n    return 1\n",
            "x = obj.energy_joules\n",
        ],
    )
    def test_long_form_suffixes_flagged(self, snippet):
        findings = lint_source(snippet)
        assert "unit-suffix" in rules_of(findings)

    def test_message_names_the_canonical_suffix(self):
        (finding,) = lint_source("idle_watts = 1.0\n")
        assert finding.rule == "unit-suffix"
        assert "'_w'" in finding.message

    @pytest.mark.parametrize(
        "snippet",
        [
            "power_w = 5.0\n",
            "energy_kwh = 1.0\n",
            "dt_s = 0.5\n",
            "wall_us = 12\n",
            "approach_c = 4.0\n",
            # Not a unit suffix at all.
            "watts = 5.0\n",
            "total = 3\n",
            # The repro.units helpers spell units long-form by design.
            "x = joules_to_kilowatt_hours(3.6e6)\n",
            "y = node_seconds_to_node_hours(7200)\n",
        ],
    )
    def test_canonical_and_unrelated_names_pass(self, snippet):
        assert lint_source(snippet) == []


# ---------------------------------------------------------------------------
# unit-crossing
# ---------------------------------------------------------------------------


class TestUnitCrossingRule:
    @pytest.mark.parametrize(
        "snippet",
        [
            "power_kw = power_w\n",
            "total_j = energy_kwh\n",
            "elapsed_s = elapsed_h\n",
            "total_kw += extra_w\n",
            "x = power_w + power_kw\n",
            "y = end_s - start_h\n",
        ],
    )
    def test_cross_unit_assignment_flagged(self, snippet):
        assert "unit-crossing" in rules_of(lint_source(snippet))

    @pytest.mark.parametrize(
        "snippet",
        [
            "power_kw = other_kw\n",
            "total_s = a_s + b_s\n",
            "power_kw = watts_to_kilowatts(power_w)\n",
            # Multiplication/division legitimately changes unit.
            "power_kw = power_w / 1000.0\n",
            "energy_j = power_w * dt_s\n",
            # Unsuffixed names carry no unit claim.
            "total = power_w\n",
        ],
    )
    def test_same_unit_and_converted_pass(self, snippet):
        findings = [f for f in lint_source(snippet) if f.rule == "unit-crossing"]
        assert findings == []


# ---------------------------------------------------------------------------
# float-compare
# ---------------------------------------------------------------------------


class TestFloatCompareRule:
    @pytest.mark.parametrize(
        "snippet",
        [
            "flag = facility_power_kw == 0.0\n",
            "flag = now_s != end_s\n",
            "flag = x == 1.0\n",
            "flag = y != -1.0\n",
            "flag = obj.loss_kw == other\n",
        ],
    )
    def test_exact_compare_flagged(self, snippet):
        assert "float-compare" in rules_of(lint_source(snippet))

    @pytest.mark.parametrize(
        "snippet",
        [
            # Ordering comparisons are fine.
            "flag = facility_power_kw > 0.0\n",
            "flag = now_s <= end_s\n",
            # Integer-literal equality is fine.
            "flag = count == 0\n",
            # Unsuffixed float names against non-literals are fine.
            "flag = ratio == other\n",
            # The sanctioned zero-guard.
            "flag = is_zero_kw(facility_power_kw)\n",
        ],
    )
    def test_tolerant_patterns_pass(self, snippet):
        findings = [f for f in lint_source(snippet) if f.rule == "float-compare"]
        assert findings == []


# ---------------------------------------------------------------------------
# hot-path
# ---------------------------------------------------------------------------


HOT_PREFIX = "@hot_path\ndef step(self):\n"


class TestHotPathRule:
    @pytest.mark.parametrize(
        "body",
        [
            "    snapshot = list(self.running_by_id)\n",
            "    ordered = sorted(self.queue)\n",
            "    job = self.queue.pop(0)\n",
            "    for job in self.running_jobs:\n        pass\n",
            "    total = sum(j.n for j in self.queue)\n",
            "    ids = [j.id for j in jobs]\n",
        ],
    )
    def test_scaling_patterns_flagged(self, body):
        assert "hot-path" in rules_of(lint_source(HOT_PREFIX + body))

    @pytest.mark.parametrize(
        "body",
        [
            "    job = self.queue_head\n",
            "    end = self.end_heap[0]\n",
            "    item = self.pending.pop()\n",  # tail pop is O(1)
            "    for name in self.columns:\n        pass\n",
        ],
    )
    def test_constant_time_patterns_pass(self, body):
        findings = [f for f in lint_source(HOT_PREFIX + body) if f.rule == "hot-path"]
        assert findings == []

    def test_undecorated_function_unrestricted(self):
        source = "def cold():\n    return sorted(list(self.queue))\n"
        assert lint_source(source) == []

    def test_nested_function_inherits_hotness(self):
        source = (
            "@hot_path\n"
            "def outer():\n"
            "    def inner():\n"
            "        return list(queue)\n"
            "    return inner\n"
        )
        assert "hot-path" in rules_of(lint_source(source))


# ---------------------------------------------------------------------------
# metrics-glossary
# ---------------------------------------------------------------------------


class TestMetricsGlossaryRule:
    def test_documented_name_passes(self):
        source = 'metrics.counter("engine_steps_total", "steps").inc()\n'
        assert lint_source(source, readme_text=GLOSSARY) == []

    def test_undocumented_name_flagged(self):
        source = 'metrics.counter("engine_bogus_total", "nope").inc()\n'
        (finding,) = lint_source(source, readme_text=GLOSSARY)
        assert finding.rule == "metrics-glossary"
        assert "engine_bogus_total" in finding.message

    def test_fstring_checked_by_fragments(self):
        good = 'metrics.histogram(f"engine_phase_{name}_us", "t")\n'
        assert lint_source(good, readme_text=GLOSSARY) == []
        bad = 'metrics.histogram(f"engine_bogus_{name}_us", "t")\n'
        assert "metrics-glossary" in rules_of(lint_source(bad, readme_text=GLOSSARY))

    def test_observability_counters_keys_checked(self):
        source = (
            "def observability_counters(self):\n"
            '    return {"end_heap_pops": self.pops, "mystery": 1}\n'
        )
        findings = lint_source(source, readme_text=GLOSSARY)
        assert rules_of(findings) == ["metrics-glossary"]
        assert "mystery" in findings[0].message

    def test_rule_disabled_without_readme(self):
        source = 'metrics.counter("engine_bogus_total", "nope")\n'
        assert lint_source(source, readme_text=None) == []


# ---------------------------------------------------------------------------
# public-exceptions
# ---------------------------------------------------------------------------


class TestPublicExceptionsRule:
    def test_public_function_builtin_raise_flagged(self):
        source = 'def load(path):\n    raise ValueError("bad")\n'
        (finding,) = lint_source(source)
        assert finding.rule == "public-exceptions"

    def test_public_method_flagged(self):
        source = (
            "class Engine:\n"
            "    def run(self):\n"
            '        raise RuntimeError("boom")\n'
        )
        assert "public-exceptions" in rules_of(lint_source(source))

    @pytest.mark.parametrize(
        "snippet",
        [
            # Private function: free to use builtins.
            'def _helper():\n    raise ValueError("internal")\n',
            # Private class makes the whole context private.
            'class _Impl:\n    def get(self):\n        raise KeyError("k")\n',
            # Domain exception types pass anywhere.
            'def load(path):\n    raise ConfigurationError("bad")\n',
            # The abstract-method idiom is exempt.
            "def load(path):\n    raise NotImplementedError\n",
            # Module-level re-raise has no enclosing function.
            'raise RuntimeError("startup")\n',
        ],
    )
    def test_allowed_raises_pass(self, snippet):
        findings = [f for f in lint_source(snippet) if f.rule == "public-exceptions"]
        assert findings == []

    def test_dunder_counts_as_public(self):
        source = (
            "class Window:\n"
            "    def __post_init__(self):\n"
            '        raise ValueError("bad window")\n'
        )
        assert "public-exceptions" in rules_of(lint_source(source))


# ---------------------------------------------------------------------------
# Suppressions, exemptions, output plumbing
# ---------------------------------------------------------------------------


class TestSuppressions:
    def test_single_rule_suppressed(self):
        source = "x = power_kw == 0.0  # repro-lint: disable=float-compare\n"
        assert lint_source(source) == []

    def test_multiple_rules_on_one_line(self):
        source = (
            "power_kw = power_watts  "
            "# repro-lint: disable=unit-suffix,unit-crossing\n"
        )
        assert lint_source(source) == []

    def test_disable_all(self):
        source = "power_kw = power_watts  # repro-lint: disable=all\n"
        assert lint_source(source) == []

    def test_wrong_rule_does_not_suppress(self):
        source = "x = power_kw == 0.0  # repro-lint: disable=hot-path\n"
        assert "float-compare" in rules_of(lint_source(source))

    def test_suppression_is_line_scoped(self):
        source = (
            "# repro-lint: disable=float-compare\n"
            "x = power_kw == 0.0\n"
        )
        assert "float-compare" in rules_of(lint_source(source))


class TestFileExemptionsAndErrors:
    def test_skip_rules_filter(self):
        source = "power_watts = 1.0\n"
        assert lint_source(source, skip_rules=frozenset({"unit-suffix"})) == []

    def test_syntax_error_becomes_finding(self):
        findings = lint_source("def broken(:\n")
        assert rules_of(findings) == ["syntax-error"]

    def test_finding_format(self):
        (finding,) = lint_source("idle_watts = 1.0\n", path="mod.py")
        assert finding.format().startswith("mod.py:1:1: [unit-suffix]")


# ---------------------------------------------------------------------------
# The decorator
# ---------------------------------------------------------------------------


class TestHotPathDecorator:
    def test_identity_and_marker(self):
        def f(x: int) -> int:
            return x + 1

        marked = hot_path(f)
        assert marked is f
        assert getattr(marked, HOT_PATH_ATTRIBUTE) is True
        assert marked(2) == 3

    def test_unmarked_function_lacks_attribute(self):
        def g() -> None:
            pass

        assert not hasattr(g, HOT_PATH_ATTRIBUTE)


# ---------------------------------------------------------------------------
# Whole-tree + CLI
# ---------------------------------------------------------------------------


class TestTreeAndCli:
    def test_shipped_tree_is_clean(self):
        readme = (REPO_ROOT / "README.md").read_text()
        findings, checked = lint_paths(
            [REPO_ROOT / "src" / "repro"], readme_text=readme
        )
        assert checked > 30
        assert [f.format() for f in findings] == []

    def test_rule_catalogue_has_all_rules(self):
        assert set(RULES) == {
            "unit-suffix",
            "unit-crossing",
            "float-compare",
            "hot-path",
            "metrics-glossary",
            "public-exceptions",
        }

    def test_cli_clean_run_exits_zero(self, tmp_path, capsys):
        target = tmp_path / "ok.py"
        target.write_text("power_kw = 1.0\n")
        readme = tmp_path / "README.md"
        readme.write_text(GLOSSARY)
        assert main([str(target)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_cli_findings_exit_one_and_report(self, tmp_path, capsys):
        target = tmp_path / "bad.py"
        target.write_text("idle_watts = 1.0\n")
        (tmp_path / "README.md").write_text(GLOSSARY)
        report = tmp_path / "report.txt"
        assert main([str(target), "--report", str(report)]) == 1
        out = capsys.readouterr().out
        assert "unit-suffix" in out
        assert "unit-suffix" in report.read_text()

    def test_cli_json_format(self, tmp_path, capsys):
        target = tmp_path / "bad.py"
        target.write_text("idle_watts = 1.0\n")
        (tmp_path / "README.md").write_text(GLOSSARY)
        assert main([str(target), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["checked_files"] == 1
        assert payload["findings"][0]["rule"] == "unit-suffix"

    def test_cli_missing_path_exits_two(self, tmp_path, capsys):
        assert main([str(tmp_path / "nope.py")]) == 2

    def test_cli_missing_readme_exits_two(self, tmp_path, capsys):
        target = tmp_path / "ok.py"
        target.write_text("x = 1\n")
        assert main([str(target)]) == 2

    def test_cli_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in RULES:
            assert rule in out
