"""Tests for Standard Workload Format reading and writing."""

from __future__ import annotations

import pytest

from repro.exceptions import DataLoaderError
from repro.telemetry import jobs_to_swf, parse_swf, read_swf, write_swf

from helpers import make_job

SAMPLE_SWF = """\
; Header comment
; MaxProcs: 128
1 0 10 3600 16 -1 -1 16 7200 -1 1 3 5 -1 1 -1 -1 -1
2 100 0 1800 32 -1 -1 32 3600 -1 1 4 5 -1 2 -1 -1 -1
3 200 50 -1 8 -1 -1 8 3600 -1 0 5 6 -1 1 -1 -1 -1
"""


class TestParseSwf:
    def test_parses_valid_jobs(self):
        jobs = parse_swf(SAMPLE_SWF)
        # Job 3 has run_time == -1 (never ran) and is skipped.
        assert len(jobs) == 2

    def test_fields_mapped(self):
        job = parse_swf(SAMPLE_SWF)[0]
        assert job.submit_time == 0
        assert job.start_time == 10
        assert job.end_time == 10 + 3600
        assert job.nodes_required == 16
        assert job.wall_time_limit == 7200
        assert job.user == "user3"
        assert job.account == "group5"

    def test_processors_per_node_ceil(self):
        jobs = parse_swf(SAMPLE_SWF, processors_per_node=10)
        assert jobs[0].nodes_required == 2  # ceil(16/10)

    def test_comments_and_blank_lines_ignored(self):
        assert parse_swf("; only comments\n\n") == []

    def test_truncated_line_rejected(self):
        with pytest.raises(DataLoaderError):
            parse_swf("1 0 10 3600 16\n")

    def test_swf_metadata_preserved(self):
        job = parse_swf(SAMPLE_SWF)[0]
        assert job.metadata["swf"]["queue_number"] == 1


class TestRoundTrip:
    def test_export_then_parse(self):
        original = [
            make_job(nodes=4, submit=0, start=50, duration=600, user="user007", account="acct003"),
            make_job(nodes=2, submit=100, start=150, duration=1200, wall_limit=3600),
        ]
        text = jobs_to_swf(original)
        parsed = parse_swf(text)
        assert len(parsed) == len(original)
        assert [j.nodes_required for j in parsed] == [4, 2]
        assert parsed[0].submit_time == 0
        assert parsed[0].duration == pytest.approx(600, abs=1)
        assert parsed[1].wall_time_limit == pytest.approx(3600)

    def test_export_sorted_by_submit(self):
        jobs = [
            make_job(submit=500, start=500),
            make_job(submit=0, start=10),
        ]
        parsed = parse_swf(jobs_to_swf(jobs))
        assert parsed[0].submit_time <= parsed[1].submit_time

    def test_file_roundtrip(self, tmp_path):
        jobs = [make_job(nodes=8, submit=0, start=10, duration=300)]
        path = tmp_path / "workload.swf"
        write_swf(jobs, path)
        loaded = read_swf(path)
        assert len(loaded) == 1
        assert loaded[0].nodes_required == 8

    def test_header_contains_maxprocs(self):
        text = jobs_to_swf([make_job(nodes=64)])
        assert "MaxProcs: 64" in text


class TestMalformedLines:
    def test_non_numeric_field_names_the_line(self):
        text = SAMPLE_SWF + "4 0 xx 3600 16 -1 -1 16 7200 -1 1 3 5 -1 1 -1 -1 -1\n"
        with pytest.raises(DataLoaderError, match="line 6"):
            parse_swf(text)

    def test_truncated_line_names_the_line_and_count(self):
        with pytest.raises(DataLoaderError, match="line 2.*expected 18 fields, got 5"):
            parse_swf("; header\n1 0 10 3600 16\n")

    def test_extra_trailing_fields_tolerated(self):
        # Some archive files append site-specific columns; the standard 18
        # are parsed and the extras ignored.
        line = "1 0 10 3600 16 -1 -1 16 7200 -1 1 3 5 -1 1 -1 -1 -1 999 888\n"
        jobs = parse_swf(line)
        assert len(jobs) == 1
        assert jobs[0].nodes_required == 16

    def test_missing_wait_time_clamped(self):
        line = "1 100 -1 3600 8 -1 -1 8 -1 -1 1 3 5 -1 1 -1 -1 -1\n"
        job = parse_swf(line)[0]
        assert job.start_time == job.submit_time == 100.0
        # requested_time of -1 means no wall limit at all.
        assert job.wall_time_limit is None

    def test_missing_user_and_group_become_unknown(self):
        line = "1 0 10 3600 8 -1 -1 8 -1 -1 1 -1 -1 -1 -1 -1 -1 -1\n"
        job = parse_swf(line)[0]
        assert job.user == "unknown"
        assert job.account == "unknown"
        assert job.priority == 0.0


class TestProcessorsPerNode:
    def test_exact_division(self):
        jobs = parse_swf(SAMPLE_SWF, processors_per_node=16)
        assert jobs[0].nodes_required == 1  # 16 procs / 16 per node
        assert jobs[1].nodes_required == 2  # 32 procs / 16 per node

    def test_fewer_procs_than_node_rounds_up_to_one(self):
        jobs = parse_swf(SAMPLE_SWF, processors_per_node=1000)
        assert all(j.nodes_required == 1 for j in jobs)

    @pytest.mark.parametrize("ppn", [0, -4])
    def test_non_positive_rejected(self, ppn):
        with pytest.raises(DataLoaderError, match="processors_per_node"):
            parse_swf(SAMPLE_SWF, processors_per_node=ppn)

    def test_allocated_procs_fall_back_to_requested(self):
        # allocated_processors == -1: the requested count is used instead.
        line = "1 0 10 3600 -1 -1 -1 24 -1 -1 1 3 5 -1 1 -1 -1 -1\n"
        job = parse_swf(line, processors_per_node=8)[0]
        assert job.nodes_required == 3

    def test_job_without_any_processor_count_skipped(self):
        line = "1 0 10 3600 -1 -1 -1 -1 -1 -1 1 3 5 -1 1 -1 -1 -1\n"
        assert parse_swf(line) == []


class TestFullRoundTripIdentity:
    """parse_swf -> jobs_to_swf -> parse_swf is the identity on SWF fields.

    SWF stores integral seconds, so starting from a parsed SWF (rather than
    arbitrary float-timed jobs) the second parse must reproduce the first
    exactly — the CLI replay path depends on this to re-export workloads
    without drift.
    """

    def _roundtrip(self, text, **kwargs):
        first = parse_swf(text, **kwargs)
        second = parse_swf(jobs_to_swf(first, **kwargs), **kwargs)
        return first, second

    @pytest.mark.parametrize("ppn", [1, 4])
    def test_identity_on_scheduling_fields(self, ppn):
        first, second = self._roundtrip(SAMPLE_SWF, processors_per_node=ppn)
        assert len(first) == len(second)
        for a, b in zip(first, second):
            assert a.submit_time == b.submit_time
            assert a.start_time == b.start_time
            assert a.end_time == b.end_time
            assert a.duration == b.duration
            assert a.nodes_required == b.nodes_required
            assert a.wall_time_limit == b.wall_time_limit
            assert a.user == b.user
            assert a.account == b.account
            assert a.priority == b.priority

    def test_identity_is_stable_under_iteration(self):
        # A second round-trip changes nothing further (idempotence).
        first, second = self._roundtrip(SAMPLE_SWF)
        third = parse_swf(jobs_to_swf(second))
        for b, c in zip(second, third):
            assert (b.submit_time, b.start_time, b.end_time, b.nodes_required) == (
                c.submit_time, c.start_time, c.end_time, c.nodes_required
            )

    def test_zero_wait_and_zero_priority_preserved(self):
        line = "1 50 0 600 4 -1 -1 4 1200 -1 1 2 2 -1 0 -1 -1 -1\n"
        first, second = self._roundtrip(line)
        assert second[0].submit_time == 50.0
        assert second[0].start_time == 50.0
        # queue_number 0 exports as missing (-1) and parses back to the
        # 0.0 default — the one lossy corner, pinned here on purpose.
        assert first[0].priority == 0.0
        assert second[0].priority == 0.0

    def test_file_roundtrip_identity(self, tmp_path):
        path = tmp_path / "rt.swf"
        first = parse_swf(SAMPLE_SWF)
        write_swf(first, path)
        second = read_swf(path)
        assert [j.nodes_required for j in first] == [j.nodes_required for j in second]
        assert [j.duration for j in first] == [j.duration for j in second]
