"""Tests for Standard Workload Format reading and writing."""

from __future__ import annotations

import pytest

from repro.exceptions import DataLoaderError
from repro.telemetry import jobs_to_swf, parse_swf, read_swf, write_swf

from helpers import make_job

SAMPLE_SWF = """\
; Header comment
; MaxProcs: 128
1 0 10 3600 16 -1 -1 16 7200 -1 1 3 5 -1 1 -1 -1 -1
2 100 0 1800 32 -1 -1 32 3600 -1 1 4 5 -1 2 -1 -1 -1
3 200 50 -1 8 -1 -1 8 3600 -1 0 5 6 -1 1 -1 -1 -1
"""


class TestParseSwf:
    def test_parses_valid_jobs(self):
        jobs = parse_swf(SAMPLE_SWF)
        # Job 3 has run_time == -1 (never ran) and is skipped.
        assert len(jobs) == 2

    def test_fields_mapped(self):
        job = parse_swf(SAMPLE_SWF)[0]
        assert job.submit_time == 0
        assert job.start_time == 10
        assert job.end_time == 10 + 3600
        assert job.nodes_required == 16
        assert job.wall_time_limit == 7200
        assert job.user == "user3"
        assert job.account == "group5"

    def test_processors_per_node_ceil(self):
        jobs = parse_swf(SAMPLE_SWF, processors_per_node=10)
        assert jobs[0].nodes_required == 2  # ceil(16/10)

    def test_comments_and_blank_lines_ignored(self):
        assert parse_swf("; only comments\n\n") == []

    def test_truncated_line_rejected(self):
        with pytest.raises(DataLoaderError):
            parse_swf("1 0 10 3600 16\n")

    def test_swf_metadata_preserved(self):
        job = parse_swf(SAMPLE_SWF)[0]
        assert job.metadata["swf"]["queue_number"] == 1


class TestRoundTrip:
    def test_export_then_parse(self):
        original = [
            make_job(nodes=4, submit=0, start=50, duration=600, user="user007", account="acct003"),
            make_job(nodes=2, submit=100, start=150, duration=1200, wall_limit=3600),
        ]
        text = jobs_to_swf(original)
        parsed = parse_swf(text)
        assert len(parsed) == len(original)
        assert [j.nodes_required for j in parsed] == [4, 2]
        assert parsed[0].submit_time == 0
        assert parsed[0].duration == pytest.approx(600, abs=1)
        assert parsed[1].wall_time_limit == pytest.approx(3600)

    def test_export_sorted_by_submit(self):
        jobs = [
            make_job(submit=500, start=500),
            make_job(submit=0, start=10),
        ]
        parsed = parse_swf(jobs_to_swf(jobs))
        assert parsed[0].submit_time <= parsed[1].submit_time

    def test_file_roundtrip(self, tmp_path):
        jobs = [make_job(nodes=8, submit=0, start=10, duration=300)]
        path = tmp_path / "workload.swf"
        write_swf(jobs, path)
        loaded = read_swf(path)
        assert len(loaded) == 1
        assert loaded[0].nodes_required == 8

    def test_header_contains_maxprocs(self):
        text = jobs_to_swf([make_job(nodes=64)])
        assert "MaxProcs: 64" in text
