"""Tests for the statistics collector and its exports."""

from __future__ import annotations

import csv
import json

import pytest

from repro.engine import SimulationEngine
from repro.engine.stats import StatsCollector, TickSample

from helpers import make_job


@pytest.fixture
def finished_run(tiny_system, tiny_workload):
    return SimulationEngine(tiny_system, tiny_workload, "fcfs").run()


class TestDerivedMetrics:
    def test_energy_is_power_times_time(self, tiny_system):
        # One 4-node job at constant utilization for exactly 1 hour.
        jobs = [make_job(nodes=4, submit=0.0, duration=3600.0, cpu=1.0, gpu=1.0, mem=1.0)]
        result = SimulationEngine(tiny_system, jobs, "fcfs").run()
        stats = result.stats
        # Left-Riemann integral of the per-tick facility power.
        dt_h = tiny_system.timestep_s / 3600.0
        expected = sum(t.facility_power_kw for t in stats.ticks) * dt_h
        assert stats.total_energy_kwh == pytest.approx(expected)
        assert stats.it_energy_kwh <= stats.total_energy_kwh

    def test_mean_pue_is_energy_weighted(self, finished_run):
        stats = finished_run.stats
        assert stats.mean_pue == pytest.approx(
            stats.total_energy_kwh / stats.it_energy_kwh
        )
        assert stats.mean_pue <= stats.max_pue

    def test_wait_and_node_hours(self, finished_run):
        stats = finished_run.stats
        waits = [j.wait_time for j in stats.completed_jobs]
        assert stats.mean_wait_s == pytest.approx(sum(waits) / len(waits))
        assert stats.max_wait_s == pytest.approx(max(waits))
        assert stats.node_hours == pytest.approx(
            sum(j.nodes_required * (j.sim_duration or 0.0) for j in stats.completed_jobs)
            / 3600.0
        )

    def test_empty_collector_summary(self):
        summary = StatsCollector().summary()
        assert summary["total_energy_kwh"] == 0.0
        assert summary["mean_pue"] == 1.0
        assert summary["jobs_completed"] == 0.0


class TestExports:
    def test_csv_round_trip(self, finished_run, tmp_path):
        path = tmp_path / "timeseries.csv"
        finished_run.stats.to_csv(path)
        with open(path, newline="") as fh:
            rows = list(csv.reader(fh))
        assert rows[0] == list(TickSample.FIELDS)
        assert len(rows) - 1 == len(finished_run.stats.ticks)
        first = dict(zip(rows[0], map(float, rows[1])))
        assert first["time_s"] == finished_run.stats.ticks[0].time_s
        assert first["facility_power_kw"] == pytest.approx(
            finished_run.stats.ticks[0].facility_power_kw
        )

    def test_json_round_trip(self, finished_run, tmp_path):
        path = tmp_path / "run.json"
        finished_run.stats.to_json(path)
        payload = json.loads(path.read_text())
        assert payload["summary"] == finished_run.summary()
        series = payload["timeseries"]
        assert set(series) == set(TickSample.FIELDS)
        assert len(series["pue"]) == len(finished_run.stats.ticks)

    def test_json_summary_only(self, finished_run, tmp_path):
        path = tmp_path / "summary.json"
        finished_run.stats.to_json(path, include_timeseries=False)
        assert "timeseries" not in json.loads(path.read_text())


class TestCLI:
    def test_cli_end_to_end(self, capsys, tmp_path):
        from repro.engine.cli import main

        csv_path = tmp_path / "ts.csv"
        json_path = tmp_path / "run.json"
        code = main(
            [
                "--system", "tiny",
                "--mode", "backfill",
                "--duration", "2h",
                "--seed", "1",
                "--csv", str(csv_path),
                "--json", str(json_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "mean PUE" in out
        assert "total energy" in out
        assert "mean wait" in out
        assert csv_path.exists() and json_path.exists()

    def test_cli_list_systems(self, capsys):
        from repro.engine.cli import main

        assert main(["--list-systems"]) == 0
        out = capsys.readouterr().out
        assert "frontier" in out and "tiny" in out

    def test_cli_rejects_unknown_system(self, capsys):
        from repro.engine.cli import main

        assert main(["--system", "doesnotexist", "--duration", "1h"]) == 1
        assert "unknown system" in capsys.readouterr().err

    def test_cli_swf_workload(self, tmp_path, capsys):
        from repro.engine.cli import main
        from repro.telemetry import jobs_to_swf

        jobs = [
            make_job(nodes=2, submit=0.0, start=60.0, duration=600.0, wall_limit=900.0),
            make_job(nodes=4, submit=120.0, start=300.0, duration=1200.0, wall_limit=1800.0),
        ]
        swf_path = tmp_path / "workload.swf"
        swf_path.write_text(jobs_to_swf(jobs))
        code = main(
            ["--system", "tiny", "--mode", "fcfs", "--swf", str(swf_path)]
        )
        assert code == 0
        assert "jobs completed    2" in capsys.readouterr().out
