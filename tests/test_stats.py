"""Tests for the statistics collector and its exports."""

from __future__ import annotations

import csv
import json

import pytest

from repro.engine import SimulationEngine
from repro.engine.stats import StatsCollector, TickSample

from helpers import make_job


@pytest.fixture
def finished_run(tiny_system, tiny_workload):
    return SimulationEngine(tiny_system, tiny_workload, "fcfs").run()


class TestDerivedMetrics:
    def test_energy_is_power_times_time(self, tiny_system):
        # One 4-node job at constant utilization for exactly 1 hour.
        jobs = [make_job(nodes=4, submit=0.0, duration=3600.0, cpu=1.0, gpu=1.0, mem=1.0)]
        result = SimulationEngine(tiny_system, jobs, "fcfs").run()
        stats = result.stats
        # Interval-aware left-Riemann integral of the per-sample facility
        # power (event-driven samples carry their own dt_s).
        expected = sum(t.facility_power_kw * t.dt_s for t in stats.ticks) / 3600.0
        assert stats.total_energy_kwh == pytest.approx(expected)
        assert stats.it_energy_kwh <= stats.total_energy_kwh
        assert stats.elapsed_s == pytest.approx(sum(t.dt_s for t in stats.ticks))

    def test_mean_pue_is_energy_weighted(self, finished_run):
        stats = finished_run.stats
        assert stats.mean_pue == pytest.approx(
            stats.total_energy_kwh / stats.it_energy_kwh
        )
        assert stats.mean_pue <= stats.max_pue

    def test_wait_and_node_h(self, finished_run):
        stats = finished_run.stats
        waits = [j.wait_time for j in stats.completed_jobs]
        assert stats.mean_wait_s == pytest.approx(sum(waits) / len(waits))
        assert stats.max_wait_s == pytest.approx(max(waits))
        assert stats.node_h == pytest.approx(
            sum(j.nodes_required * (j.sim_duration or 0.0) for j in stats.completed_jobs)
            / 3600.0
        )

    def test_empty_collector_summary(self):
        summary = StatsCollector().summary()
        assert summary["total_energy_kwh"] == 0.0
        assert summary["mean_pue"] == 1.0
        assert summary["jobs_completed"] == 0.0


def _power_sample(compute_kw: float, loss_kw: float) -> "SystemPowerSample":
    from repro.power.system_power import SystemPowerSample

    return SystemPowerSample(
        time_s=0.0,
        job_power_kw=compute_kw,
        idle_power_kw=0.0,
        loss_kw=loss_kw,
        allocated_nodes=0,
        mean_cpu_util=0.0,
        mean_gpu_util=0.0,
    )


class TestPueAtZeroItPower:
    def test_zero_it_tick_reports_inf_pue(self):
        stats = StatsCollector()
        tick = stats.record_tick(
            0.0, 15.0, _power_sample(0.0, 25.0), None,
            utilization=0.0, running_jobs=0, queued_jobs=0,
        )
        assert tick.pue == float("inf")

    def test_zero_it_ticks_excluded_from_max_pue(self):
        stats = StatsCollector()
        stats.record_tick(
            0.0, 15.0, _power_sample(0.0, 25.0), None,
            utilization=0.0, running_jobs=0, queued_jobs=0,
        )
        stats.record_tick(
            15.0, 15.0, _power_sample(100.0, 5.0), None,
            utilization=0.5, running_jobs=1, queued_jobs=0,
        )
        # The inf sentinel of the idle tick must not swamp the meaningful
        # maximum of the loaded ticks.
        assert stats.max_pue == pytest.approx(105.0 / 100.0)

    def test_all_idle_run_has_inf_mean_pue(self):
        stats = StatsCollector()
        stats.record_tick(
            0.0, 15.0, _power_sample(0.0, 25.0), None,
            utilization=0.0, running_jobs=0, queued_jobs=0,
        )
        assert stats.mean_pue == float("inf")
        assert stats.max_pue == 1.0  # no tick with IT power at all

    def test_inf_pue_exports_as_null_in_strict_json(self, tmp_path):
        stats = StatsCollector()
        stats.record_tick(
            0.0, 15.0, _power_sample(0.0, 25.0), None,
            utilization=0.0, running_jobs=0, queued_jobs=0,
        )
        path = tmp_path / "idle.json"
        stats.to_json(path)
        text = path.read_text()
        assert "Infinity" not in text  # RFC 8259 strictness
        payload = json.loads(text)
        assert payload["summary"]["mean_pue"] is None
        assert payload["timeseries"]["pue"] == [None]

    def test_truly_dead_tick_keeps_unit_pue(self):
        stats = StatsCollector()
        tick = stats.record_tick(
            0.0, 15.0, _power_sample(0.0, 0.0), None,
            utilization=0.0, running_jobs=0, queued_jobs=0,
        )
        assert tick.pue == pytest.approx(1.0)
        assert stats.mean_pue == pytest.approx(1.0)


class TestExports:
    def test_csv_round_trip(self, finished_run, tmp_path):
        path = tmp_path / "timeseries.csv"
        finished_run.stats.to_csv(path)
        with open(path, newline="") as fh:
            rows = list(csv.reader(fh))
        assert rows[0] == list(TickSample.FIELDS)
        assert len(rows) - 1 == len(finished_run.stats.ticks)
        first = dict(zip(rows[0], map(float, rows[1])))
        assert first["time_s"] == finished_run.stats.ticks[0].time_s
        assert first["facility_power_kw"] == pytest.approx(
            finished_run.stats.ticks[0].facility_power_kw
        )

    def test_json_round_trip(self, finished_run, tmp_path):
        path = tmp_path / "run.json"
        finished_run.stats.to_json(path)
        payload = json.loads(path.read_text())
        assert payload["summary"] == finished_run.summary()
        series = payload["timeseries"]
        assert set(series) == set(TickSample.FIELDS)
        assert len(series["pue"]) == len(finished_run.stats.ticks)

    def test_json_summary_only(self, finished_run, tmp_path):
        path = tmp_path / "summary.json"
        finished_run.stats.to_json(path, include_timeseries=False)
        assert "timeseries" not in json.loads(path.read_text())


class TestCLI:
    def test_cli_end_to_end(self, capsys, tmp_path):
        from repro.engine.cli import main

        csv_path = tmp_path / "ts.csv"
        json_path = tmp_path / "run.json"
        code = main(
            [
                "--system", "tiny",
                "--mode", "backfill",
                "--duration", "2h",
                "--seed", "1",
                "--csv", str(csv_path),
                "--json", str(json_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "mean PUE" in out
        assert "total energy" in out
        assert "mean wait" in out
        assert csv_path.exists() and json_path.exists()

    def test_cli_list_systems(self, capsys):
        from repro.engine.cli import main

        assert main(["--list-systems"]) == 0
        out = capsys.readouterr().out
        assert "frontier" in out and "tiny" in out

    def test_cli_rejects_unknown_system(self, capsys):
        from repro.engine.cli import main

        assert main(["--system", "doesnotexist", "--duration", "1h"]) == 1
        assert "unknown system" in capsys.readouterr().err

    def test_cli_swf_workload(self, tmp_path, capsys):
        from repro.engine.cli import main
        from repro.telemetry import jobs_to_swf

        jobs = [
            make_job(nodes=2, submit=0.0, start=60.0, duration=600.0, wall_limit=900.0),
            make_job(nodes=4, submit=120.0, start=300.0, duration=1200.0, wall_limit=1800.0),
        ]
        swf_path = tmp_path / "workload.swf"
        swf_path.write_text(jobs_to_swf(jobs))
        code = main(
            ["--system", "tiny", "--mode", "fcfs", "--swf", str(swf_path)]
        )
        assert code == 0
        assert "jobs completed    2" in capsys.readouterr().out


class TestColumnarStorage:
    """The columnar tick store and its lazy TickSample view."""

    def _fill(self, count):
        stats = StatsCollector()
        for i in range(count):
            stats.record_tick(
                15.0 * i, 15.0, _power_sample(100.0 + i, 5.0), None,
                utilization=0.5, running_jobs=i % 7, queued_jobs=i % 3,
            )
        return stats

    def test_growth_beyond_initial_capacity(self):
        from repro.engine.stats import _INITIAL_CAPACITY

        count = 2 * _INITIAL_CAPACITY + 17
        stats = self._fill(count)
        assert len(stats.ticks) == count
        assert stats.ticks[0].compute_power_kw == pytest.approx(100.0)
        assert stats.ticks[-1].compute_power_kw == pytest.approx(100.0 + count - 1)
        assert stats.summary()["ticks"] == float(count)

    def test_ticks_view_indexing_and_types(self):
        stats = self._fill(10)
        ticks = stats.ticks
        assert len(ticks) == 10
        assert isinstance(ticks[3], TickSample)
        assert ticks[-1].time_s == pytest.approx(15.0 * 9)
        assert isinstance(ticks[2].running_jobs, int)
        assert isinstance(ticks[2].utilization, float)
        sliced = ticks[2:5]
        assert [t.time_s for t in sliced] == [30.0, 45.0, 60.0]
        with pytest.raises(IndexError):
            ticks[10]
        assert [t.running_jobs for t in ticks] == [i % 7 for i in range(10)]

    def test_record_tick_returns_the_recorded_sample(self):
        stats = StatsCollector()
        tick = stats.record_tick(
            0.0, 15.0, _power_sample(50.0, 2.0), None,
            utilization=0.25, running_jobs=2, queued_jobs=1,
        )
        assert tick == stats.ticks[0]

    def test_timeseries_types_match_fields(self):
        stats = self._fill(4)
        series = stats.timeseries()
        assert set(series) == set(TickSample.FIELDS)
        assert all(isinstance(v, int) for v in series["running_jobs"])
        assert all(isinstance(v, float) for v in series["facility_power_kw"])


class TestIncrementalSummary:
    """summary() is O(1): every metric matches an explicit recomputation."""

    def test_max_pue_matches_scan(self):
        stats = StatsCollector()
        for compute, loss in ((0.0, 25.0), (100.0, 5.0), (50.0, 20.0), (80.0, 2.0)):
            stats.record_tick(
                0.0, 15.0, _power_sample(compute, loss), None,
                utilization=0.0, running_jobs=0, queued_jobs=0,
            )
        import math

        expected = max(
            t.pue for t in stats.ticks
            if t.compute_power_kw > 0 and math.isfinite(t.pue)
        )
        assert stats.max_pue == pytest.approx(expected)

    def test_job_metrics_match_scan(self, finished_run):
        stats = finished_run.stats
        jobs = stats.completed_jobs
        waits = [j.wait_time for j in jobs if j.wait_time is not None]
        starts = [j.sim_start_time for j in jobs if j.sim_start_time is not None]
        ends = [j.sim_end_time for j in jobs if j.sim_end_time is not None]
        assert stats.node_h == pytest.approx(
            sum(j.nodes_required * (j.sim_duration or 0.0) for j in jobs) / 3600.0
        )
        assert stats.mean_wait_s == pytest.approx(sum(waits) / len(waits))
        assert stats.max_wait_s == pytest.approx(max(waits))
        assert stats.makespan_s == pytest.approx(max(ends) - min(starts))

    def test_empty_job_metrics(self):
        stats = StatsCollector()
        assert stats.node_h == 0.0
        assert stats.mean_wait_s == 0.0
        assert stats.max_wait_s == 0.0
        assert stats.makespan_s == 0.0


class TestJsonSafe:
    """The iterative, numpy-aware json_safe conversion."""

    def test_numpy_scalars_and_arrays(self):
        import numpy as np

        from repro.engine.stats import json_safe

        converted = json_safe(
            {
                "f": np.float64(1.5),
                "inf": np.float64("inf"),
                "i": np.int64(7),
                "b": np.bool_(True),
                "arr": np.array([1.0, float("inf"), float("nan"), 2.0]),
                "ints": np.array([1, 2, 3]),
                "nested": {"deep": [np.float32(0.25), float("-inf")]},
            }
        )
        assert converted == {
            "f": 1.5,
            "inf": None,
            "i": 7,
            "b": True,
            "arr": [1.0, None, None, 2.0],
            "ints": [1, 2, 3],
            "nested": {"deep": [0.25, None]},
        }
        json.dumps(converted, allow_nan=False)  # strict-JSON clean

    def test_key_order_preserved_with_nested_containers(self):
        from repro.engine.stats import json_safe

        value = {"first": [1.0], "second": 2.0, "third": {"a": 1}}
        assert list(json_safe(value)) == ["first", "second", "third"]

    def test_deeply_nested_does_not_recurse(self):
        import sys

        from repro.engine.stats import json_safe

        depth = sys.getrecursionlimit() + 100
        value = current = []
        for _ in range(depth):
            nested = []
            current.append(nested)
            current = nested
        current.append(float("inf"))
        converted = json_safe(value)
        for _ in range(depth):
            converted = converted[0]
        assert converted == [None]


class TestColumnAccessor:
    def test_column_matches_view_without_boxing(self):
        import numpy as np

        stats = StatsCollector()
        for i in range(5):
            stats.record_tick(
                15.0 * i, 15.0, _power_sample(100.0, 5.0), None,
                utilization=0.5, running_jobs=i, queued_jobs=0,
            )
        column = stats.column("running_jobs")
        assert isinstance(column, np.ndarray)
        assert column.tolist() == [0, 1, 2, 3, 4]
        assert int(column.max()) == 4
        with pytest.raises(KeyError):
            stats.column("nope")
