"""Shared pytest fixtures for the S-RAPS reproduction test-suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import get_system_config
from repro.telemetry import Job, Profile, constant_profile
from repro.workloads import SyntheticWorkloadGenerator, WorkloadSpec
from repro.workloads.distributions import JobSizeDistribution, RuntimeDistribution, WaveArrivals


@pytest.fixture
def tiny_system():
    """The 32-node test system."""
    return get_system_config("tiny")


@pytest.fixture
def rng():
    """A deterministic random generator."""
    return np.random.default_rng(42)


def make_job(
    *,
    nodes: int = 1,
    submit: float = 0.0,
    start: float = 0.0,
    duration: float = 600.0,
    cpu: float = 0.5,
    gpu: float = 0.0,
    mem: float = 0.2,
    user: str = "user001",
    account: str = "acct001",
    priority: float = 0.0,
    wall_limit: float | None = None,
    recorded_nodes: tuple[int, ...] = (),
    node_power: Profile | None = None,
) -> Job:
    """Construct a simple job for tests."""
    return Job(
        nodes_required=nodes,
        submit_time=submit,
        start_time=start,
        end_time=start + duration,
        wall_time_limit=wall_limit,
        user=user,
        account=account,
        priority=priority,
        recorded_nodes=recorded_nodes,
        cpu_util=constant_profile(cpu, duration),
        gpu_util=constant_profile(gpu, duration),
        mem_util=constant_profile(mem, duration),
        node_power=node_power,
    )


@pytest.fixture
def job_factory():
    """Factory fixture building jobs with sensible defaults."""
    return make_job


@pytest.fixture
def tiny_workload(tiny_system):
    """A small deterministic synthetic workload for the tiny system."""
    spec = WorkloadSpec(
        sizes=JobSizeDistribution(min_nodes=1, max_nodes=16, full_system_fraction=0.02),
        runtimes=RuntimeDistribution(median_s=1800.0, sigma=0.8, min_s=120.0, max_s=14400.0),
        arrivals=WaveArrivals(rate_per_hour=12.0, amplitude=0.4),
        trace_interval_s=60.0,
        generate_power_trace=True,
    )
    generator = SyntheticWorkloadGenerator(tiny_system, spec, seed=7)
    return generator.generate(6 * 3600.0)
