"""Shared pytest fixtures for the S-RAPS reproduction test-suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import get_system_config
from repro.workloads import SyntheticWorkloadGenerator, WorkloadSpec
from repro.workloads.distributions import JobSizeDistribution, RuntimeDistribution, WaveArrivals

from helpers import make_job


@pytest.fixture
def tiny_system():
    """The 32-node test system."""
    return get_system_config("tiny")


@pytest.fixture
def two_partition_system(tiny_system):
    """A 16-node cpu + 8-node gpu system for partition-aware tests."""
    from repro.config import PartitionConfig, SystemConfig

    node = tiny_system.partitions[0].node_power
    return SystemConfig(
        name="twopart",
        description="two-partition test system",
        partitions=(
            PartitionConfig("cpu", 16, node),
            PartitionConfig("gpu", 8, node),
        ),
        timestep_s=15,
        trace_quantum_s=15,
        default_policy="fcfs",
    )


@pytest.fixture
def rng():
    """A deterministic random generator."""
    return np.random.default_rng(42)


@pytest.fixture
def job_factory():
    """Factory fixture building jobs with sensible defaults."""
    return make_job


@pytest.fixture
def tiny_workload(tiny_system):
    """A small deterministic synthetic workload for the tiny system."""
    spec = WorkloadSpec(
        sizes=JobSizeDistribution(min_nodes=1, max_nodes=16, full_system_fraction=0.02),
        runtimes=RuntimeDistribution(median_s=1800.0, sigma=0.8, min_s=120.0, max_s=14400.0),
        arrivals=WaveArrivals(rate_per_hour=12.0, amplitude=0.4),
        trace_interval_s=60.0,
        generate_power_trace=True,
    )
    generator = SyntheticWorkloadGenerator(tiny_system, spec, seed=7)
    return generator.generate(6 * 3600.0)
