"""Tests for the lumped-parameter cooling plant (CDU, tower, PUE)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import CoolingConfig
from repro.cooling import CDU, CoolingPlant, CoolingTower


@pytest.fixture
def cooling_config():
    return CoolingConfig(
        cdu_count=4,
        secondary_flow_kg_per_s_per_cdu=20.0,
        facility_flow_kg_per_s=200.0,
        cdu_thermal_mass_j_per_k=1.0e6,
        facility_thermal_mass_j_per_k=1.0e7,
    )


class TestCDU:
    def test_initial_state(self, cooling_config):
        cdu = CDU(cooling_config)
        state = cdu.state
        assert state.return_temperature_c == pytest.approx(cooling_config.supply_temperature_c)
        assert state.heat_load_kw == 0.0
        assert state.delta_t == pytest.approx(0.0)

    def test_steady_state_return_scales_with_load(self, cooling_config):
        cdu = CDU(cooling_config)
        assert cdu.steady_state_return_c(400.0) > cdu.steady_state_return_c(100.0)
        assert cdu.steady_state_return_c(0.0) == pytest.approx(cooling_config.supply_temperature_c)

    def test_converges_to_steady_state(self, cooling_config):
        cdu = CDU(cooling_config)
        target = cdu.steady_state_return_c(300.0)
        for _ in range(2000):
            state = cdu.step(300.0, dt_s=10.0)
        assert state.return_temperature_c == pytest.approx(target, abs=0.05)

    def test_transient_lag(self, cooling_config):
        """One short step moves the temperature only part-way to steady state."""
        cdu = CDU(cooling_config)
        target = cdu.steady_state_return_c(300.0)
        state = cdu.step(300.0, dt_s=5.0)
        assert cooling_config.supply_temperature_c < state.return_temperature_c < target

    def test_negative_load_clamped(self, cooling_config):
        cdu = CDU(cooling_config)
        state = cdu.step(-50.0, dt_s=10.0)
        assert state.heat_load_kw == 0.0

    def test_reset(self, cooling_config):
        cdu = CDU(cooling_config)
        cdu.step(500.0, 1000.0)
        cdu.reset()
        assert cdu.state.return_temperature_c == pytest.approx(cooling_config.supply_temperature_c)

    def test_heat_to_facility_scaled_by_effectiveness(self, cooling_config):
        cdu = CDU(cooling_config, effectiveness=0.8)
        cdu.step(200.0, 10.0)
        assert cdu.heat_to_facility_kw() == pytest.approx(160.0)


class TestCoolingTower:
    def test_return_above_supply_under_load(self, cooling_config):
        tower = CoolingTower(cooling_config)
        for _ in range(500):
            state = tower.step(2000.0, dt_s=60.0)
        assert state.return_temperature_c > state.supply_temperature_c

    def test_return_temperature_increases_with_load(self, cooling_config):
        low_tower = CoolingTower(cooling_config)
        high_tower = CoolingTower(cooling_config)
        for _ in range(500):
            low = low_tower.step(500.0, dt_s=60.0)
            high = high_tower.step(3000.0, dt_s=60.0)
        assert high.return_temperature_c > low.return_temperature_c

    def test_fan_power_proportional_to_load(self, cooling_config):
        tower = CoolingTower(cooling_config)
        state = tower.step(1000.0, dt_s=60.0)
        assert state.fan_power_kw == pytest.approx(cooling_config.fan_power_fraction * 1000.0)

    def test_supply_never_below_setpoint(self, cooling_config):
        tower = CoolingTower(cooling_config)
        for _ in range(200):
            state = tower.step(0.0, dt_s=60.0)
        assert state.supply_temperature_c >= cooling_config.facility_supply_temperature_c - 1e-6

    def test_approach_grows_with_load(self, cooling_config):
        tower = CoolingTower(cooling_config)
        assert tower.approach_c(5000.0) > tower.approach_c(100.0)

    def test_reset(self, cooling_config):
        tower = CoolingTower(cooling_config)
        tower.step(3000.0, 600.0)
        tower.reset()
        assert tower.state.return_temperature_c == pytest.approx(
            cooling_config.facility_supply_temperature_c
        )


class TestCoolingPlant:
    def test_pue_above_one(self, cooling_config):
        plant = CoolingPlant(cooling_config)
        state = plant.step(60.0, it_power_kw=5000.0, loss_power_kw=200.0, dt_s=60.0)
        assert state.pue > 1.0
        assert state.total_facility_power_kw > state.it_power_kw

    def test_pue_reasonable_at_high_load(self, cooling_config):
        plant = CoolingPlant(cooling_config)
        for t in range(100):
            state = plant.step(t * 60.0, it_power_kw=20000.0, loss_power_kw=600.0, dt_s=60.0)
        assert 1.02 < state.pue < 1.25

    def test_pue_rises_at_low_load(self, cooling_config):
        """PUE is worse (higher) at very low IT load."""
        plant_low = CoolingPlant(cooling_config)
        plant_high = CoolingPlant(cooling_config)
        for t in range(50):
            low = plant_low.step(t * 60.0, it_power_kw=100.0, loss_power_kw=30.0, dt_s=60.0)
            high = plant_high.step(t * 60.0, it_power_kw=20000.0, loss_power_kw=600.0, dt_s=60.0)
        assert low.pue > high.pue

    def test_zero_it_power(self, cooling_config):
        plant = CoolingPlant(cooling_config)
        state = plant.step(60.0, it_power_kw=0.0, loss_power_kw=0.0, dt_s=60.0)
        # Nothing is drawn at all: PUE degenerates to the 1.0 identity.
        assert state.pue == pytest.approx(1.0)
        assert state.cooling_power_kw == pytest.approx(0.0)

    def test_zero_it_power_with_overhead_reports_inf_pue(self, cooling_config):
        # Losses keep dissipating (and being cooled) with no IT power to
        # attribute them to: PUE is unbounded, not the flattering 1.0 floor.
        plant = CoolingPlant(cooling_config)
        state = plant.step(60.0, it_power_kw=0.0, loss_power_kw=50.0, dt_s=60.0)
        assert state.pue == float("inf")
        assert state.cooling_power_kw > 0.0
        assert state.total_facility_power_kw > 0.0

    def test_zero_cdu_plant_is_fully_air_cooled(self):
        # cdu_count == 0 must not crash (the old code divided by len(cdus))
        # and must route all heat through the CRAC/facility path.
        config = CoolingConfig(cdu_count=0, air_cooled_fraction=1.0)
        plant = CoolingPlant(config)
        state = plant.step(60.0, it_power_kw=5000.0, loss_power_kw=100.0, dt_s=60.0)
        assert state.pue > 1.0
        # CRAC compressor power for the whole load dominates the overhead.
        assert state.cooling_power_kw > (5000.0 + 100.0) / config.crac_cop * 0.9
        assert state.cdu_return_temperature_c == pytest.approx(
            config.supply_temperature_c
        )

    def test_zero_cdu_plant_requires_full_air_fraction(self):
        # With no CDUs the liquid share would have nowhere to go, so the
        # contradictory configuration is rejected up front rather than
        # silently rerouted at step time.
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError, match="air_cooled_fraction"):
            CoolingConfig(cdu_count=0, air_cooled_fraction=0.4)

    def test_tower_return_follows_power_with_lag(self, cooling_config):
        """Cooling tower return temperature rises after a power step (Fig. 6 behaviour)."""
        plant = CoolingPlant(cooling_config)
        for t in range(50):
            baseline = plant.step(t * 60.0, it_power_kw=2000.0, loss_power_kw=50.0, dt_s=60.0)
        first_after_step = plant.step(
            51 * 60.0, it_power_kw=15000.0, loss_power_kw=300.0, dt_s=60.0
        )
        later = first_after_step
        for t in range(52, 200):
            later = plant.step(t * 60.0, it_power_kw=15000.0, loss_power_kw=300.0, dt_s=60.0)
        assert later.tower_return_temperature_c > baseline.tower_return_temperature_c
        # Lag: immediately after the step the temperature has not yet reached
        # its eventual level.
        assert first_after_step.tower_return_temperature_c < later.tower_return_temperature_c

    def test_air_cooled_fraction_adds_crac_power(self):
        liquid = CoolingConfig(cdu_count=2, air_cooled_fraction=0.0)
        hybrid = CoolingConfig(cdu_count=2, air_cooled_fraction=0.3)
        p_liquid = CoolingPlant(liquid).step(60.0, 5000.0, 100.0, 60.0)
        p_hybrid = CoolingPlant(hybrid).step(60.0, 5000.0, 100.0, 60.0)
        assert p_hybrid.cooling_power_kw > p_liquid.cooling_power_kw
        assert p_hybrid.pue > p_liquid.pue

    def test_reset(self, cooling_config):
        plant = CoolingPlant(cooling_config)
        plant.step(60.0, 10000.0, 200.0, 60.0)
        plant.reset()
        assert plant.last_state is None

    def test_last_state_tracked(self, cooling_config):
        plant = CoolingPlant(cooling_config)
        assert plant.last_state is None
        state = plant.step(60.0, 1000.0, 10.0, 60.0)
        assert plant.last_state is state

    @given(power=st.floats(min_value=0.0, max_value=50000.0))
    @settings(max_examples=30, deadline=None)
    def test_pue_always_at_least_one_property(self, power):
        plant = CoolingPlant(CoolingConfig(cdu_count=4))
        state = plant.step(60.0, it_power_kw=power, loss_power_kw=power * 0.03, dt_s=60.0)
        assert state.pue >= 1.0
        assert state.cooling_power_kw >= 0.0
