"""Tests for system configuration dataclasses and the built-in registry."""

from __future__ import annotations

import pytest

from repro.config import (
    CoolingConfig,
    NodePowerConfig,
    PartitionConfig,
    PowerLossConfig,
    SystemConfig,
    available_systems,
    get_system_config,
    register_system_config,
)
from repro.exceptions import ConfigurationError


def _node(**overrides):
    defaults = dict(
        idle_w=100.0,
        cpu_idle_w=50.0,
        cpu_max_w=200.0,
        gpu_idle_w=20.0,
        gpu_max_w=300.0,
        mem_dynamic_w=40.0,
        cpus_per_node=2,
        gpus_per_node=4,
    )
    defaults.update(overrides)
    return NodePowerConfig(**defaults)


class TestNodePowerConfig:
    def test_max_and_min_w(self):
        node = _node()
        assert node.max_w == pytest.approx(100 + 2 * 200 + 4 * 300 + 40)
        assert node.min_w == pytest.approx(100 + 2 * 50 + 4 * 20)
        assert node.max_w > node.min_w

    def test_rejects_negative_idle(self):
        with pytest.raises(ConfigurationError):
            _node(idle_w=-1.0)

    def test_rejects_cpu_max_below_idle(self):
        with pytest.raises(ConfigurationError):
            _node(cpu_max_w=10.0, cpu_idle_w=50.0)

    def test_rejects_negative_counts(self):
        with pytest.raises(ConfigurationError):
            _node(gpus_per_node=-1)


class TestPowerLossConfig:
    def test_defaults_valid(self):
        cfg = PowerLossConfig()
        assert 0 < cfg.rectifier_efficiency_idle < cfg.rectifier_efficiency_peak <= 1

    def test_rejects_efficiency_above_one(self):
        with pytest.raises(ConfigurationError):
            PowerLossConfig(rectifier_efficiency_peak=1.2)

    def test_rejects_large_switchgear_loss(self):
        with pytest.raises(ConfigurationError):
            PowerLossConfig(switchgear_loss_fraction=0.6)


class TestCoolingConfig:
    def test_defaults_valid(self):
        cfg = CoolingConfig()
        assert cfg.cdu_count > 0

    def test_allows_zero_cdus_for_air_cooled_plants(self):
        assert CoolingConfig(cdu_count=0, air_cooled_fraction=1.0).cdu_count == 0

    def test_rejects_negative_cdus(self):
        with pytest.raises(ConfigurationError):
            CoolingConfig(cdu_count=-1)

    def test_rejects_bad_air_fraction(self):
        with pytest.raises(ConfigurationError):
            CoolingConfig(air_cooled_fraction=1.5)


class TestSystemConfig:
    def _system(self, partitions=None, **overrides):
        if partitions is None:
            partitions = (
                PartitionConfig("cpu", 10, _node(gpus_per_node=0)),
                PartitionConfig("gpu", 20, _node()),
            )
        defaults = dict(name="testsys", description="test", partitions=partitions)
        defaults.update(overrides)
        return SystemConfig(**defaults)

    def test_total_nodes(self):
        assert self._system().total_nodes == 30

    def test_partition_of_node(self):
        system = self._system()
        assert system.partition_of_node(0).name == "cpu"
        assert system.partition_of_node(9).name == "cpu"
        assert system.partition_of_node(10).name == "gpu"
        assert system.partition_of_node(29).name == "gpu"

    def test_partition_of_node_out_of_range(self):
        with pytest.raises(ConfigurationError):
            self._system().partition_of_node(30)
        with pytest.raises(ConfigurationError):
            self._system().partition_of_node(-1)

    def test_partition_node_range(self):
        system = self._system()
        assert system.partition_node_range("cpu") == range(0, 10)
        assert system.partition_node_range("gpu") == range(10, 30)
        with pytest.raises(ConfigurationError):
            system.partition_node_range("nope")

    def test_duplicate_partition_names_rejected(self):
        partitions = (
            PartitionConfig("batch", 4, _node()),
            PartitionConfig("batch", 4, _node()),
        )
        with pytest.raises(ConfigurationError):
            self._system(partitions=partitions)

    def test_requires_partitions(self):
        with pytest.raises(ConfigurationError):
            self._system(partitions=())

    def test_peak_exceeds_idle_power(self):
        system = self._system()
        assert system.peak_system_power_kw > system.idle_system_power_kw > 0

    def test_with_overrides(self):
        base = self._system()
        modified = base.with_overrides(down_node_fraction=0.1)
        assert modified.down_node_fraction == pytest.approx(0.1)
        assert base.down_node_fraction == 0.0

    def test_down_node_fraction_validation(self):
        with pytest.raises(ConfigurationError):
            self._system(down_node_fraction=1.0)


class TestRegistry:
    @pytest.mark.parametrize(
        "name,nodes",
        [
            ("frontier", 9600),
            ("marconi100", 980),
            ("fugaku", 158_976),
            ("lassen", 792),
            ("adastra", 356),
            ("tiny", 32),
        ],
    )
    def test_builtin_systems_match_table1(self, name, nodes):
        config = get_system_config(name)
        assert config.total_nodes == nodes

    def test_case_insensitive_lookup(self):
        assert get_system_config("Frontier").total_nodes == 9600

    def test_unknown_system(self):
        with pytest.raises(ConfigurationError):
            get_system_config("does-not-exist")

    def test_available_systems_sorted(self):
        systems = available_systems()
        assert list(systems) == sorted(systems)
        assert "frontier" in systems

    def test_register_duplicate_rejected(self):
        config = get_system_config("tiny")
        with pytest.raises(ConfigurationError):
            register_system_config(config)

    def test_register_overwrite_allowed(self):
        config = get_system_config("tiny")
        register_system_config(config, overwrite=True)
        assert get_system_config("tiny") is config

    def test_frontier_has_cooling_model(self):
        assert get_system_config("frontier").has_cooling_model

    def test_marconi_has_no_cooling_model(self):
        assert not get_system_config("marconi100").has_cooling_model

    def test_schedulers_match_table1(self):
        assert get_system_config("fugaku").scheduler_name == "fujitsu_tcs"
        assert get_system_config("lassen").scheduler_name == "lsf"
        assert get_system_config("marconi100").scheduler_name == "slurm"
