"""Tests for telemetry profiles (sampling, gap filling, integration)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import DataLoaderError
from repro.telemetry import Profile, constant_profile


class TestProfileConstruction:
    def test_basic(self):
        p = Profile([0, 10, 20], [1.0, 2.0, 3.0])
        assert len(p) == 3
        assert p.duration == 20

    def test_rejects_length_mismatch(self):
        with pytest.raises(DataLoaderError):
            Profile([0, 10], [1.0])

    def test_rejects_empty(self):
        with pytest.raises(DataLoaderError):
            Profile([], [])

    def test_rejects_negative_times(self):
        with pytest.raises(DataLoaderError):
            Profile([-1, 10], [1.0, 2.0])

    def test_rejects_non_increasing_times(self):
        with pytest.raises(DataLoaderError):
            Profile([0, 10, 10], [1.0, 2.0, 3.0])

    def test_rejects_nan_values(self):
        with pytest.raises(DataLoaderError):
            Profile([0, 10], [1.0, float("nan")])

    def test_arrays_read_only(self):
        p = Profile([0, 10], [1.0, 2.0])
        with pytest.raises(ValueError):
            p.values[0] = 5.0

    def test_equality_and_hash(self):
        a = Profile([0, 10], [1.0, 2.0])
        b = Profile([0, 10], [1.0, 2.0])
        c = Profile([0, 10], [1.0, 3.0])
        assert a == b
        assert hash(a) == hash(b)
        assert a != c


class TestSampling:
    def test_zero_order_hold(self):
        p = Profile([0, 10, 20], [1.0, 2.0, 3.0])
        assert p.value_at(0) == 1.0
        assert p.value_at(5) == 1.0
        assert p.value_at(10) == 2.0
        assert p.value_at(15) == 2.0
        assert p.value_at(20) == 3.0

    def test_last_known_value_extension(self):
        """Missing data beyond the trace uses the last known value (Sec. 3.2.2)."""
        p = Profile([0, 10], [1.0, 4.0])
        assert p.value_at(100.0) == 4.0
        assert p.value_at(1e9) == 4.0

    def test_before_first_sample(self):
        p = Profile([5, 10], [2.0, 4.0])
        assert p.value_at(0.0) == 2.0

    def test_values_at_vectorised(self):
        p = Profile([0, 10, 20], [1.0, 2.0, 3.0])
        np.testing.assert_allclose(p.values_at([0, 5, 10, 25]), [1.0, 1.0, 2.0, 3.0])


class TestStatistics:
    def test_mean_single_sample(self):
        assert constant_profile(0.7).mean() == pytest.approx(0.7)

    def test_time_weighted_mean(self):
        # 1.0 held for 10s, then 3.0 held for 30s => (10+90)/40 = 2.5
        p = Profile([0, 10, 40], [1.0, 3.0, 99.0])
        assert p.mean() == pytest.approx(2.5)

    def test_min_max_std(self):
        p = Profile([0, 10, 20], [1.0, 5.0, 3.0])
        assert p.maximum() == 5.0
        assert p.minimum() == 1.0
        assert p.std() == pytest.approx(np.std([1.0, 5.0, 3.0]))

    def test_summary_statistics_keys(self):
        stats = Profile([0, 10], [1.0, 2.0]).summary_statistics()
        assert set(stats) == {"mean", "max", "min", "std"}


class TestIntegration:
    def test_integral_constant(self):
        p = constant_profile(100.0, 50.0)
        assert p.integral(50.0) == pytest.approx(5000.0)

    def test_integral_extends_last_value(self):
        p = Profile([0, 10], [100.0, 200.0])
        # 100 W for 10s + 200 W for 90s
        assert p.integral(100.0) == pytest.approx(100 * 10 + 200 * 90)

    def test_integral_default_duration(self):
        p = Profile([0, 10, 20], [100.0, 200.0, 0.0])
        assert p.integral() == pytest.approx(100 * 10 + 200 * 10)

    def test_integral_zero_duration(self):
        assert Profile([0], [5.0]).integral(0.0) == 0.0

    def test_integral_window_before_first_sample(self):
        p = Profile([10, 20], [100.0, 200.0])
        assert p.integral(5.0) == pytest.approx(500.0)

    def test_integral_negative_duration_rejected(self):
        with pytest.raises(DataLoaderError):
            Profile([0], [1.0]).integral(-1.0)

    @given(
        value=st.floats(min_value=0.0, max_value=1e4),
        duration=st.floats(min_value=0.1, max_value=1e5),
    )
    def test_constant_profile_integral_property(self, value, duration):
        p = constant_profile(value, duration)
        assert p.integral(duration) == pytest.approx(value * duration, rel=1e-9)


class TestTransformations:
    def test_scaled(self):
        p = Profile([0, 10], [1.0, 2.0]).scaled(3.0)
        np.testing.assert_allclose(p.values, [3.0, 6.0])

    def test_clipped_rebases_time(self):
        p = Profile([0, 10, 20, 30], [1.0, 2.0, 3.0, 4.0])
        clipped = p.clipped(5, 25)
        assert clipped.times[0] == 0.0
        assert clipped.value_at(0) == 1.0  # value in effect at t=5
        assert clipped.value_at(5) == 2.0  # original t=10
        assert clipped.duration == pytest.approx(15.0)

    def test_clipped_invalid_window(self):
        with pytest.raises(DataLoaderError):
            Profile([0, 10], [1.0, 2.0]).clipped(10, 10)

    def test_resampled_regular_grid(self):
        p = Profile([0, 10, 20], [1.0, 2.0, 3.0])
        r = p.resampled(5.0)
        np.testing.assert_allclose(r.times, [0, 5, 10, 15, 20])
        np.testing.assert_allclose(r.values, [1, 1, 2, 2, 3])

    def test_resampled_invalid_interval(self):
        with pytest.raises(DataLoaderError):
            Profile([0], [1.0]).resampled(0.0)

    @given(
        times=st.lists(
            st.integers(min_value=0, max_value=100_000), min_size=2, max_size=30, unique=True
        ),
        factor=st.floats(min_value=0.1, max_value=10.0),
    )
    def test_scaling_preserves_mean_ratio(self, times, factor):
        times = sorted(float(t) for t in times)
        values = np.linspace(1.0, 2.0, len(times))
        p = Profile(times, values)
        assert p.scaled(factor).mean() == pytest.approx(p.mean() * factor, rel=1e-9)


class TestConstantProfile:
    def test_zero_duration_single_sample(self):
        assert len(constant_profile(0.5)) == 1

    def test_with_duration_two_samples(self):
        p = constant_profile(0.5, 100.0)
        assert len(p) == 2
        assert p.duration == 100.0


class TestChangePoints:
    """Profile.next_change_after / change_points edge cases."""

    def test_repeated_equal_samples_are_not_breakpoints(self):
        p = Profile([0.0, 60.0, 120.0, 180.0], [5.0, 5.0, 7.0, 7.0])
        np.testing.assert_array_equal(p.change_points(), [120.0])
        assert p.next_change_after(0.0) == 120.0
        assert p.next_change_after(119.999) == 120.0
        # "Strictly after": at the change point itself, nothing lies ahead.
        assert p.next_change_after(120.0) is None
        assert not p.is_constant()

    def test_constant_profile_has_no_change_points(self):
        p = Profile([0.0, 60.0, 120.0], [3.0, 3.0, 3.0])
        assert p.change_points().size == 0
        assert p.next_change_after(-100.0) is None
        assert p.next_change_after(0.0) is None
        assert p.is_constant()

    def test_single_sample_profile(self):
        p = Profile([0.0], [0.5])
        assert p.change_points().size == 0
        assert p.next_change_after(0.0) is None
        assert p.is_constant()

    def test_query_past_last_change(self):
        p = Profile([0.0, 30.0, 90.0], [1.0, 2.0, 3.0])
        assert p.next_change_after(90.0) is None
        assert p.next_change_after(1e9) is None

    def test_query_before_first_sample_sees_holdback_value(self):
        # Value before t=10 is 1.0 (hold-back rule), unchanged at t=10, so
        # the first change point is 20 even for queries far in the "past".
        p = Profile([10.0, 20.0], [1.0, 2.0])
        np.testing.assert_array_equal(p.change_points(), [20.0])
        assert p.next_change_after(-5.0) == 20.0
        assert p.next_change_after(0.0) == 20.0
        assert p.next_change_after(15.0) == 20.0

    def test_every_sample_differs(self):
        p = Profile([0.0, 10.0, 20.0], [1.0, 2.0, 3.0])
        np.testing.assert_array_equal(p.change_points(), [10.0, 20.0])
        assert p.next_change_after(0.0) == 10.0
        assert p.next_change_after(10.0) == 20.0

    def test_change_grid_is_compressed_zoh(self):
        p = Profile([0.0, 60.0, 120.0, 180.0], [5.0, 5.0, 7.0, 7.0])
        times, values = p.change_grid()
        np.testing.assert_array_equal(times, [0.0, 120.0])
        np.testing.assert_array_equal(values, [5.0, 7.0])
        # Grid starts at 0 even when the first sample is later.
        times, values = Profile([10.0, 20.0], [1.0, 2.0]).change_grid()
        np.testing.assert_array_equal(times, [0.0, 20.0])
        np.testing.assert_array_equal(values, [1.0, 2.0])

    def test_change_grid_matches_value_at(self, rng):
        samples = rng.integers(0, 4, size=50).astype(float)
        p = Profile(np.arange(50.0) * 15.0, samples)
        grid_t, grid_v = p.change_grid()
        for t in rng.uniform(-10.0, 800.0, size=200):
            idx = max(0, int(np.searchsorted(grid_t, t, side="right")) - 1)
            assert grid_v[idx] == p.value_at(t)

    def test_change_arrays_are_read_only(self):
        p = Profile([0.0, 10.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            p.change_points()[0] = 99.0
        with pytest.raises(ValueError):
            p.change_grid()[1][0] = 99.0


class TestSingleCopyConstruction:
    """Profile.__init__ must copy exactly once and never alias its inputs."""

    def test_ndarray_input_is_not_aliased(self):
        times = np.array([0.0, 10.0, 20.0])
        values = np.array([1.0, 2.0, 3.0])
        p = Profile(times, values)
        times[0] = 999.0
        values[0] = 999.0
        assert p.times[0] == 0.0
        assert p.values[0] == 1.0

    def test_ndarray_input_arrays_are_read_only(self):
        p = Profile(np.array([0.0, 10.0]), np.array([1.0, 2.0]))
        with pytest.raises(ValueError):
            p.times[0] = 5.0
        with pytest.raises(ValueError):
            p.values[0] = 5.0

    def test_integer_ndarray_is_converted_to_float(self):
        p = Profile(np.array([0, 10, 20]), np.array([1, 2, 3]))
        assert p.times.dtype == np.float64
        assert p.values.dtype == np.float64

    def test_generator_input_still_works(self):
        p = Profile((float(t) for t in (0, 10)), (float(v) for v in (1, 2)))
        np.testing.assert_array_equal(p.times, [0.0, 10.0])
