"""Tests for telemetry profiles (sampling, gap filling, integration)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import DataLoaderError
from repro.telemetry import Profile, constant_profile


class TestProfileConstruction:
    def test_basic(self):
        p = Profile([0, 10, 20], [1.0, 2.0, 3.0])
        assert len(p) == 3
        assert p.duration == 20

    def test_rejects_length_mismatch(self):
        with pytest.raises(DataLoaderError):
            Profile([0, 10], [1.0])

    def test_rejects_empty(self):
        with pytest.raises(DataLoaderError):
            Profile([], [])

    def test_rejects_negative_times(self):
        with pytest.raises(DataLoaderError):
            Profile([-1, 10], [1.0, 2.0])

    def test_rejects_non_increasing_times(self):
        with pytest.raises(DataLoaderError):
            Profile([0, 10, 10], [1.0, 2.0, 3.0])

    def test_rejects_nan_values(self):
        with pytest.raises(DataLoaderError):
            Profile([0, 10], [1.0, float("nan")])

    def test_arrays_read_only(self):
        p = Profile([0, 10], [1.0, 2.0])
        with pytest.raises(ValueError):
            p.values[0] = 5.0

    def test_equality_and_hash(self):
        a = Profile([0, 10], [1.0, 2.0])
        b = Profile([0, 10], [1.0, 2.0])
        c = Profile([0, 10], [1.0, 3.0])
        assert a == b
        assert hash(a) == hash(b)
        assert a != c


class TestSampling:
    def test_zero_order_hold(self):
        p = Profile([0, 10, 20], [1.0, 2.0, 3.0])
        assert p.value_at(0) == 1.0
        assert p.value_at(5) == 1.0
        assert p.value_at(10) == 2.0
        assert p.value_at(15) == 2.0
        assert p.value_at(20) == 3.0

    def test_last_known_value_extension(self):
        """Missing data beyond the trace uses the last known value (Sec. 3.2.2)."""
        p = Profile([0, 10], [1.0, 4.0])
        assert p.value_at(100.0) == 4.0
        assert p.value_at(1e9) == 4.0

    def test_before_first_sample(self):
        p = Profile([5, 10], [2.0, 4.0])
        assert p.value_at(0.0) == 2.0

    def test_values_at_vectorised(self):
        p = Profile([0, 10, 20], [1.0, 2.0, 3.0])
        np.testing.assert_allclose(p.values_at([0, 5, 10, 25]), [1.0, 1.0, 2.0, 3.0])


class TestStatistics:
    def test_mean_single_sample(self):
        assert constant_profile(0.7).mean() == pytest.approx(0.7)

    def test_time_weighted_mean(self):
        # 1.0 held for 10s, then 3.0 held for 30s => (10+90)/40 = 2.5
        p = Profile([0, 10, 40], [1.0, 3.0, 99.0])
        assert p.mean() == pytest.approx(2.5)

    def test_min_max_std(self):
        p = Profile([0, 10, 20], [1.0, 5.0, 3.0])
        assert p.maximum() == 5.0
        assert p.minimum() == 1.0
        assert p.std() == pytest.approx(np.std([1.0, 5.0, 3.0]))

    def test_summary_statistics_keys(self):
        stats = Profile([0, 10], [1.0, 2.0]).summary_statistics()
        assert set(stats) == {"mean", "max", "min", "std"}


class TestIntegration:
    def test_integral_constant(self):
        p = constant_profile(100.0, 50.0)
        assert p.integral(50.0) == pytest.approx(5000.0)

    def test_integral_extends_last_value(self):
        p = Profile([0, 10], [100.0, 200.0])
        # 100 W for 10s + 200 W for 90s
        assert p.integral(100.0) == pytest.approx(100 * 10 + 200 * 90)

    def test_integral_default_duration(self):
        p = Profile([0, 10, 20], [100.0, 200.0, 0.0])
        assert p.integral() == pytest.approx(100 * 10 + 200 * 10)

    def test_integral_zero_duration(self):
        assert Profile([0], [5.0]).integral(0.0) == 0.0

    def test_integral_window_before_first_sample(self):
        p = Profile([10, 20], [100.0, 200.0])
        assert p.integral(5.0) == pytest.approx(500.0)

    def test_integral_negative_duration_rejected(self):
        with pytest.raises(DataLoaderError):
            Profile([0], [1.0]).integral(-1.0)

    @given(
        value=st.floats(min_value=0.0, max_value=1e4),
        duration=st.floats(min_value=0.1, max_value=1e5),
    )
    def test_constant_profile_integral_property(self, value, duration):
        p = constant_profile(value, duration)
        assert p.integral(duration) == pytest.approx(value * duration, rel=1e-9)


class TestTransformations:
    def test_scaled(self):
        p = Profile([0, 10], [1.0, 2.0]).scaled(3.0)
        np.testing.assert_allclose(p.values, [3.0, 6.0])

    def test_clipped_rebases_time(self):
        p = Profile([0, 10, 20, 30], [1.0, 2.0, 3.0, 4.0])
        clipped = p.clipped(5, 25)
        assert clipped.times[0] == 0.0
        assert clipped.value_at(0) == 1.0  # value in effect at t=5
        assert clipped.value_at(5) == 2.0  # original t=10
        assert clipped.duration == pytest.approx(15.0)

    def test_clipped_invalid_window(self):
        with pytest.raises(DataLoaderError):
            Profile([0, 10], [1.0, 2.0]).clipped(10, 10)

    def test_resampled_regular_grid(self):
        p = Profile([0, 10, 20], [1.0, 2.0, 3.0])
        r = p.resampled(5.0)
        np.testing.assert_allclose(r.times, [0, 5, 10, 15, 20])
        np.testing.assert_allclose(r.values, [1, 1, 2, 2, 3])

    def test_resampled_invalid_interval(self):
        with pytest.raises(DataLoaderError):
            Profile([0], [1.0]).resampled(0.0)

    @given(
        times=st.lists(
            st.integers(min_value=0, max_value=100_000), min_size=2, max_size=30, unique=True
        ),
        factor=st.floats(min_value=0.1, max_value=10.0),
    )
    def test_scaling_preserves_mean_ratio(self, times, factor):
        times = sorted(float(t) for t in times)
        values = np.linspace(1.0, 2.0, len(times))
        p = Profile(times, values)
        assert p.scaled(factor).mean() == pytest.approx(p.mean() * factor, rel=1e-9)


class TestConstantProfile:
    def test_zero_duration_single_sample(self):
        assert len(constant_profile(0.5)) == 1

    def test_with_duration_two_samples(self):
        p = constant_profile(0.5, 100.0)
        assert len(p) == 2
        assert p.duration == 100.0
