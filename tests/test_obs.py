"""Observability layer: tracer, metrics, events, progress, CLI flags.

Two families of guarantees are covered here:

* the instruments themselves (span aggregation, Chrome-trace schema,
  metric snapshots, JSON-lines round-trip, heartbeat cadence), and
* the zero-interference contract — enabling every instrument must not
  change a single summary metric, and the committed golden record must
  hold for an instrumented run exactly as it does for a bare one.
"""

from __future__ import annotations

import io
import json
import logging
import math
from pathlib import Path

import pytest

from repro.engine.engine import SimulationEngine, run_simulation, ENGINE_PHASES
from repro.exceptions import ConfigurationError
from repro.obs import (
    EventLog,
    JsonLinesFormatter,
    MetricsRegistry,
    Observability,
    ProgressReporter,
    RUN_LOGGER_NAME,
    SpanTracer,
)

GOLDEN_PATH = Path(__file__).parent / "golden" / "engine_summary_tiny_seed42.json"


def _full_obs(stream: io.StringIO | None = None):
    """Every instrument on: tracer, metrics, stream events, callback progress."""
    snapshots = []
    obs = Observability(
        tracer=SpanTracer(),
        metrics=MetricsRegistry(),
        events=EventLog.to_stream(stream if stream is not None else io.StringIO()),
        progress=ProgressReporter(interval_s=0.0, callback=snapshots.append),
    )
    return obs, snapshots


class TestSpanTracer:
    def test_add_chains_end_to_next_start(self):
        tracer = SpanTracer()
        t0 = tracer.now_ns()
        t1 = tracer.add("a", t0)
        t2 = tracer.add("b", t1)
        assert t0 <= t1 <= t2
        assert tracer.counts == {"a": 1, "b": 1}
        assert len(tracer) == 2

    def test_span_context_manager(self):
        tracer = SpanTracer()
        with tracer.span("run"):
            pass
        assert tracer.counts["run"] == 1
        assert tracer.totals_ns["run"] >= 0

    def test_max_events_caps_retention_not_aggregates(self):
        tracer = SpanTracer(max_events=3)
        start = tracer.now_ns()
        for _ in range(5):
            start = tracer.add("x", start)
        assert len(tracer) == 3
        assert tracer.dropped_events == 2
        assert tracer.counts["x"] == 5

    def test_keep_events_false_keeps_only_aggregates(self):
        tracer = SpanTracer(keep_events=False)
        tracer.add("x", tracer.now_ns())
        assert len(tracer) == 0
        assert tracer.counts["x"] == 1

    def test_phase_report_shares_sum_to_one_excluding_run(self):
        tracer = SpanTracer()
        start = tracer.now_ns()
        with tracer.span("run"):
            for name in ("schedule", "power"):
                start = tracer.add(name, start)
        report = tracer.phase_report()
        assert "share" not in report["run"]
        leaf_shares = [row["share"] for name, row in report.items() if name != "run"]
        assert math.isclose(sum(leaf_shares), 1.0, rel_tol=1e-12)

    def test_chrome_trace_schema(self, tmp_path):
        tracer = SpanTracer()
        start = tracer.now_ns()
        for name in ("schedule", "power"):
            start = tracer.add(name, start)
        path = tmp_path / "trace.json"
        tracer.to_chrome_trace(path)
        payload = json.loads(path.read_text())
        assert isinstance(payload["traceEvents"], list)
        assert payload["displayTimeUnit"] == "ms"
        complete = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        assert {e["name"] for e in complete} == {"schedule", "power"}
        for event in complete:
            assert event["ts"] >= 0.0 and event["dur"] >= 0.0
            assert event["pid"] == 1 and event["tid"] == 1
        meta = [e for e in payload["traceEvents"] if e["ph"] == "M"]
        assert any(e["name"] == "process_name" for e in meta)


class TestMetricsRegistry:
    def test_counter_gauge_histogram_snapshot(self):
        registry = MetricsRegistry()
        registry.counter("steps_total").inc(3)
        registry.gauge("depth").set(2.0)
        registry.gauge("depth").set(1.0)
        hist = registry.histogram("span_us")
        for value in (5.0, 50.0, 500.0):
            hist.observe(value)
        snap = registry.snapshot()
        assert snap["counters"]["steps_total"] == 3
        assert snap["gauges"]["depth"] == {"value": 1.0, "max": 2.0}
        hsnap = snap["histograms"]["span_us"]
        assert hsnap["count"] == 3
        assert hsnap["min"] == 5.0 and hsnap["max"] == 500.0

    def test_get_or_create_and_kind_conflict(self):
        registry = MetricsRegistry()
        counter = registry.counter("x")
        assert registry.counter("x") is counter
        with pytest.raises(ConfigurationError):
            registry.gauge("x")
        assert "x" in registry and len(registry) == 1

    def test_counter_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            MetricsRegistry().counter("x").inc(-1)

    def test_histogram_quantiles(self):
        hist = MetricsRegistry().histogram("h")
        for value in range(1, 101):
            hist.observe(float(value))
        assert hist.mean == pytest.approx(50.5)
        assert 0 < hist.quantile(0.5) <= hist.quantile(0.99)

    def test_json_and_csv_export(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("a_total").inc()
        registry.gauge("b").set(4.0)
        json_path = tmp_path / "m.json"
        csv_path = tmp_path / "m.csv"
        registry.to_json(json_path)
        registry.to_csv(csv_path)
        assert json.loads(json_path.read_text())["counters"]["a_total"] == 1
        rows = csv_path.read_text().strip().splitlines()
        assert rows[0] == "kind,name,field,value"
        assert any(row.startswith("counter,a_total,") for row in rows)


class TestEventLog:
    def test_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventLog.to_jsonl(path) as events:
            events.milestone("run_started", 0.0, system="tiny")
            events.emit("custom", t_s=1.0, value=float("inf"))
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert [line["event"] for line in lines] == ["run_started", "custom"]
        assert lines[0]["system"] == "tiny"
        assert lines[1]["value"] is None  # non-finite floats -> null

    def test_no_handler_means_no_emission(self):
        logger = logging.getLogger("repro.test_obs_disabled")
        logger.setLevel(logging.WARNING)
        events = EventLog(logger)
        events.emit("ignored")
        assert events.events_emitted == 0

    def test_close_restores_logger_level(self):
        logger = logging.getLogger(RUN_LOGGER_NAME)
        before = logger.level
        events = EventLog.to_stream(io.StringIO())
        assert logger.getEffectiveLevel() <= logging.INFO
        events.close()
        assert logger.level == before

    def test_formatter_handles_plain_records(self):
        formatter = JsonLinesFormatter()
        record = logging.LogRecord("x", logging.WARNING, __file__, 1, "plain", (), None)
        payload = json.loads(formatter.format(record))
        assert payload == {"event": "plain", "level": "warning"}


class TestProgressReporter:
    def test_zero_interval_reports_every_step(self):
        obs, snapshots = _full_obs()
        result = run_simulation("tiny", duration="1h", seed=7, obs=obs)
        obs.events.close()
        steps = int(result.summary()["ticks"])
        assert len(snapshots) == steps + 1  # every step + the final report
        final = snapshots[-1]
        assert final.final and final.fraction_done == 1.0
        assert final.steps == steps
        assert "[progress]" in final.format_line()

    def test_huge_interval_reports_only_final(self):
        snapshots = []
        obs = Observability(
            progress=ProgressReporter(interval_s=3600.0, callback=snapshots.append)
        )
        run_simulation("tiny", duration="1h", seed=7, obs=obs)
        assert len(snapshots) == 1 and snapshots[-1].final

    def test_stream_heartbeats(self):
        stream = io.StringIO()
        obs = Observability(progress=ProgressReporter(interval_s=0.0, stream=stream))
        run_simulation("tiny", duration="1h", seed=7, obs=obs)
        lines = stream.getvalue().splitlines()
        assert lines and all(line.startswith("[progress]") for line in lines)


class TestEngineIntegration:
    @pytest.fixture(scope="class")
    def instrumented(self):
        stream = io.StringIO()
        obs, snapshots = _full_obs(stream)
        result = run_simulation("tiny", duration="2h", seed=3, obs=obs)
        obs.events.close()
        return obs, snapshots, stream, result

    def test_summary_identical_with_and_without_obs(self, instrumented):
        _, _, _, result = instrumented
        bare = run_simulation("tiny", duration="2h", seed=3)
        assert bare.summary() == result.summary()

    def test_all_phases_traced_nonzero(self, instrumented):
        obs, _, _, result = instrumented
        steps = int(result.summary()["ticks"])
        for phase in ENGINE_PHASES:
            assert obs.tracer.counts[phase] == steps
            assert obs.tracer.totals_ns[phase] > 0
        assert obs.tracer.counts["run"] == 1

    def test_chrome_trace_loads_with_all_phases(self, instrumented, tmp_path):
        obs, _, _, _ = instrumented
        path = tmp_path / "engine_trace.json"
        obs.tracer.to_chrome_trace(path)
        payload = json.loads(path.read_text())
        names = {e["name"] for e in payload["traceEvents"] if e["ph"] == "X"}
        assert set(ENGINE_PHASES) | {"run"} <= names

    def test_metrics_published_once(self, instrumented):
        obs, _, _, result = instrumented
        snap = obs.metrics.snapshot()
        summary = result.summary()
        assert snap["counters"]["engine_steps_total"] == summary["ticks"]
        assert snap["counters"]["engine_jobs_completed_total"] == summary["jobs_completed"]
        assert snap["counters"]["rm_journal_appends_total"] > 0
        assert snap["counters"]["events_emitted_total"] > 0
        assert snap["gauges"]["engine_running_jobs_peak"]["max"] >= 1
        for phase in ENGINE_PHASES:
            assert snap["histograms"][f"engine_phase_{phase}_us"]["count"] > 0

    def test_event_log_round_trips_job_lifecycle(self, instrumented):
        _, _, stream, result = instrumented
        lines = [json.loads(line) for line in stream.getvalue().splitlines()]
        kinds = [line["event"] for line in lines]
        assert kinds[0] == "run_started" and kinds[-1] == "run_finished"
        finished = [l for l in lines if l["event"] == "job_finished"]
        assert len(finished) == int(result.summary()["jobs_completed"])
        for line in finished:
            assert line["runtime_s"] > 0 and line["wait_s"] >= 0
            assert line["energy_kwh"] > 0
            assert line["nodes"] >= 1
        started = [l for l in lines if l["event"] == "job_started"]
        assert {l["job_id"] for l in finished} <= {l["job_id"] for l in started}

    def test_golden_summary_holds_under_full_instrumentation(self):
        golden = json.loads(GOLDEN_PATH.read_text())
        obs, _ = _full_obs()
        result = run_simulation(
            "tiny", policy=golden["policy"], duration=golden["duration"],
            seed=golden["seed"], obs=obs,
        )
        obs.events.close()
        summary = result.summary()
        for key, reference in golden["summary"].items():
            assert summary[key] == pytest.approx(reference, rel=golden["rtol"]), key

    def test_dismissed_jobs_emit_events(self, tiny_system, job_factory):
        stream = io.StringIO()
        events = EventLog.to_stream(stream)
        oversized = job_factory(nodes=tiny_system.total_nodes + 1, submit=0.0)
        engine = SimulationEngine(
            tiny_system, [oversized], "fcfs", obs=Observability(events=events)
        )
        engine.run()
        events.close()
        lines = [json.loads(line) for line in stream.getvalue().splitlines()]
        assert any(line["event"] == "job_dismissed" for line in lines)


class TestObservabilityBundle:
    def test_enabled_property(self):
        assert not Observability().enabled
        assert Observability(tracer=SpanTracer()).enabled

    def test_collecting_shortcut(self):
        obs = Observability.collecting()
        assert obs.tracer is not None and obs.metrics is not None
        assert obs.events is None and obs.progress is None


class TestCLIObservability:
    def test_flags_write_all_artifacts(self, tmp_path, capsys):
        from repro.engine.cli import main

        trace = tmp_path / "trace.json"
        metrics = tmp_path / "metrics.json"
        events = tmp_path / "events.jsonl"
        code = main([
            "--system", "tiny", "--duration", "1h", "--seed", "5",
            "--trace-out", str(trace),
            "--metrics-out", str(metrics),
            "--log-json", str(events),
        ])
        assert code == 0
        payload = json.loads(trace.read_text())
        names = {e["name"] for e in payload["traceEvents"] if e["ph"] == "X"}
        assert set(ENGINE_PHASES) <= names
        snap = json.loads(metrics.read_text())
        assert snap["counters"]["engine_steps_total"] > 0
        lines = [json.loads(line) for line in events.read_text().splitlines()]
        assert lines[0]["event"] == "run_started"
        assert "mean PUE" in capsys.readouterr().out

    def test_metrics_csv_by_extension(self, tmp_path):
        from repro.engine.cli import main

        path = tmp_path / "metrics.csv"
        assert main([
            "--system", "tiny", "--duration", "1h", "--quiet",
            "--metrics-out", str(path),
        ]) == 0
        assert path.read_text().startswith("kind,name,field,value")

    def test_progress_flag_writes_heartbeats_to_stderr(self, capsys):
        from repro.engine.cli import main

        assert main(["--system", "tiny", "--duration", "1h", "--quiet",
                     "--progress"]) == 0
        err = capsys.readouterr().err
        assert "[progress]" in err and "100.0%" in err

    def test_verbose_streams_events_to_stderr(self, capsys):
        from repro.engine.cli import main

        assert main(["--system", "tiny", "--duration", "1h", "--quiet", "-v"]) == 0
        err = capsys.readouterr().err
        assert "run_started" in err and "job_finished" in err

    def test_verbose_handler_does_not_leak(self, capsys):
        from repro.engine.cli import main

        main(["--system", "tiny", "--duration", "1h", "--quiet", "-v"])
        capsys.readouterr()
        logging.getLogger("repro.cli").error("should not appear")
        assert logging.getLogger("repro").handlers == []

    def test_invalid_mode_rejected_at_parse_time(self, capsys):
        from repro.engine.cli import main

        with pytest.raises(SystemExit) as excinfo:
            main(["--mode", "bogus"])
        assert excinfo.value.code == 2
        assert "invalid choice" in capsys.readouterr().err

    def test_easy_mode_alias_accepted(self, capsys):
        from repro.engine.cli import main

        assert main(["--system", "tiny", "--duration", "1h", "--mode", "easy",
                     "--quiet"]) == 0


class TestPrintReport:
    def test_missing_keys_render_as_na(self, capsys):
        from repro.engine.cli import _print_report

        _print_report("fcfs", "tiny", {"jobs_completed": 3.0})
        out = capsys.readouterr().out
        assert "jobs completed    3" in out
        assert "n/a" in out

    def test_infinite_pue_renders_as_idle(self, capsys):
        from repro.engine.cli import _print_report

        _print_report("fcfs", "tiny", {"max_pue": float("inf"), "mean_pue": 1.05})
        out = capsys.readouterr().out
        assert "n/a (idle)" in out
        assert "1.0500" in out
