"""Tests for the node model and resource manager."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import Node, NodeState, ResourceManager
from repro.config import get_system_config
from repro.exceptions import AllocationError

from helpers import make_job


class TestNode:
    def test_initial_state(self):
        node = Node(node_id=3)
        assert node.is_available
        assert node.job_id is None

    def test_allocate_release_cycle(self):
        node = Node(node_id=0)
        node.allocate(job_id=7, now=100.0)
        assert node.state is NodeState.ALLOCATED
        assert node.job_id == 7
        assert not node.is_available
        node.release(now=400.0)
        assert node.is_available
        assert node.busy_s == pytest.approx(300.0)
        assert node.allocation_count == 1

    def test_double_allocate_rejected(self):
        node = Node(node_id=0)
        node.allocate(1, 0.0)
        with pytest.raises(AllocationError):
            node.allocate(2, 1.0)

    def test_release_idle_rejected(self):
        with pytest.raises(AllocationError):
            Node(node_id=0).release(0.0)

    def test_down_node_cannot_allocate(self):
        node = Node(node_id=0)
        node.mark_down()
        with pytest.raises(AllocationError):
            node.allocate(1, 0.0)
        node.mark_up()
        node.allocate(1, 0.0)

    def test_cannot_mark_allocated_node_down(self):
        node = Node(node_id=0)
        node.allocate(1, 0.0)
        with pytest.raises(AllocationError):
            node.mark_down()


class TestResourceManager:
    def test_inventory(self, tiny_system):
        rm = ResourceManager(tiny_system)
        assert rm.total_nodes == 32
        assert rm.available_nodes == 32
        assert rm.allocated_nodes == 0
        assert rm.utilization == 0.0

    def test_allocate_auto_placement(self, tiny_system):
        rm = ResourceManager(tiny_system)
        job = make_job(nodes=4)
        job.mark_queued(0.0)
        nodes = rm.allocate(job, 0.0)
        assert len(nodes) == 4
        assert rm.allocated_nodes == 4
        assert rm.utilization == pytest.approx(4 / 32)
        assert job.assigned_nodes == nodes

    def test_allocate_explicit_placement(self, tiny_system):
        rm = ResourceManager(tiny_system)
        job = make_job(nodes=2)
        job.mark_queued(0.0)
        nodes = rm.allocate(job, 0.0, node_ids=[5, 9])
        assert nodes == (5, 9)

    def test_exact_placement_replay(self, tiny_system):
        rm = ResourceManager(tiny_system)
        job = make_job(nodes=3, recorded_nodes=(1, 2, 3))
        job.mark_queued(0.0)
        assert rm.allocate(job, 0.0, exact_placement=True) == (1, 2, 3)

    def test_exact_placement_requires_recorded_nodes(self, tiny_system):
        rm = ResourceManager(tiny_system)
        job = make_job(nodes=2)
        job.mark_queued(0.0)
        with pytest.raises(AllocationError):
            rm.allocate(job, 0.0, exact_placement=True)

    def test_exact_placement_conflict(self, tiny_system):
        rm = ResourceManager(tiny_system)
        first = make_job(nodes=1, recorded_nodes=(4,))
        first.mark_queued(0.0)
        rm.allocate(first, 0.0, exact_placement=True)
        second = make_job(nodes=1, recorded_nodes=(4,))
        second.mark_queued(0.0)
        with pytest.raises(AllocationError):
            rm.allocate(second, 0.0, exact_placement=True)

    def test_insufficient_nodes(self, tiny_system):
        rm = ResourceManager(tiny_system)
        job = make_job(nodes=33)
        job.mark_queued(0.0)
        with pytest.raises(AllocationError):
            rm.allocate(job, 0.0)

    def test_duplicate_node_ids_rejected(self, tiny_system):
        rm = ResourceManager(tiny_system)
        job = make_job(nodes=2)
        job.mark_queued(0.0)
        with pytest.raises(AllocationError):
            rm.allocate(job, 0.0, node_ids=[3, 3])

    def test_wrong_placement_size_rejected(self, tiny_system):
        rm = ResourceManager(tiny_system)
        job = make_job(nodes=2)
        job.mark_queued(0.0)
        with pytest.raises(AllocationError):
            rm.allocate(job, 0.0, node_ids=[1, 2, 3])

    def test_double_allocation_of_job_rejected(self, tiny_system):
        rm = ResourceManager(tiny_system)
        job = make_job(nodes=1)
        job.mark_queued(0.0)
        rm.allocate(job, 0.0)
        with pytest.raises(AllocationError):
            rm.allocate(job, 1.0)

    def test_release(self, tiny_system):
        rm = ResourceManager(tiny_system)
        job = make_job(nodes=4, duration=600)
        job.mark_queued(0.0)
        rm.allocate(job, 0.0)
        rm.release(job, 600.0)
        assert rm.allocated_nodes == 0
        assert rm.available_nodes == 32
        assert job.is_finished

    def test_release_unknown_job_rejected(self, tiny_system):
        rm = ResourceManager(tiny_system)
        with pytest.raises(AllocationError):
            rm.release(make_job(), 0.0)

    def test_can_allocate(self, tiny_system):
        rm = ResourceManager(tiny_system)
        assert rm.can_allocate(make_job(nodes=32))
        assert not rm.can_allocate(make_job(nodes=33))

    def test_complete_finished_jobs(self, tiny_system):
        rm = ResourceManager(tiny_system)
        short = make_job(nodes=2, duration=100)
        long = make_job(nodes=3, duration=1000)
        for job in (short, long):
            job.mark_queued(0.0)
            rm.allocate(job, 0.0)
        finished = rm.complete_finished_jobs(now=100.0)
        assert finished == [short]
        assert rm.allocated_nodes == 3
        assert short.sim_end_time == pytest.approx(100.0)
        assert rm.complete_finished_jobs(now=1000.0) == [long]
        assert rm.allocated_nodes == 0

    def test_same_timestep_end_and_start(self, tiny_system):
        """A node freed at time t can be reallocated at time t (paper Sec. 3.2.3)."""
        rm = ResourceManager(tiny_system)
        first = make_job(nodes=32, duration=100)
        first.mark_queued(0.0)
        rm.allocate(first, 0.0)
        assert rm.available_nodes == 0
        rm.complete_finished_jobs(now=100.0)
        second = make_job(nodes=32, submit=50, start=100, duration=100)
        second.mark_queued(50.0)
        nodes = rm.allocate(second, 100.0)
        assert len(nodes) == 32

    def test_down_nodes_excluded(self, tiny_system):
        system = tiny_system.with_overrides(down_node_fraction=0.25)
        rm = ResourceManager(system, seed=1)
        assert rm.down_nodes == 8
        assert rm.available_nodes == 24
        assert not rm.can_allocate(make_job(nodes=25))
        assert rm.can_allocate(make_job(nodes=24))

    def test_utilization_ignores_down_nodes(self, tiny_system):
        system = tiny_system.with_overrides(down_node_fraction=0.5)
        rm = ResourceManager(system, seed=1)
        job = make_job(nodes=8)
        job.mark_queued(0.0)
        rm.allocate(job, 0.0)
        assert rm.utilization == pytest.approx(8 / 16)

    def test_partition_restricted_allocation(self):
        system = get_system_config("tiny")
        rm = ResourceManager(system)
        job = make_job(nodes=2)
        job.partition = "batch"
        job.mark_queued(0.0)
        nodes = rm.allocate(job, 0.0)
        assert all(n in system.partition_node_range("batch") for n in nodes)

    def test_unknown_partition_falls_back_to_any(self, tiny_system):
        rm = ResourceManager(tiny_system)
        job = make_job(nodes=2)
        job.partition = "nonexistent"
        job.mark_queued(0.0)
        assert len(rm.allocate(job, 0.0)) == 2

    def test_snapshot_keys(self, tiny_system):
        snap = ResourceManager(tiny_system).snapshot()
        assert snap["total_nodes"] == 32.0
        assert set(snap) >= {"allocated_nodes", "available_nodes", "utilization"}

    @given(sizes=st.lists(st.integers(min_value=1, max_value=8), min_size=1, max_size=10))
    @settings(max_examples=30, deadline=None)
    def test_allocation_conservation_property(self, sizes):
        """Allocated + available + down always equals total."""
        system = get_system_config("tiny")
        rm = ResourceManager(system)
        placed = []
        for size in sizes:
            job = make_job(nodes=size)
            job.mark_queued(0.0)
            if rm.can_allocate(job):
                rm.allocate(job, 0.0)
                placed.append(job)
            assert rm.allocated_nodes + rm.available_nodes + rm.down_nodes == rm.total_nodes
        for job in placed:
            rm.release(job, 10.0)
        assert rm.allocated_nodes == 0
        assert rm.available_nodes + rm.down_nodes == rm.total_nodes


class TestEpochAndCounters:
    """The epoch/counter bookkeeping backing the incremental consumers."""

    def test_epoch_bumps_on_allocate_and_release(self, tiny_system):
        rm = ResourceManager(tiny_system)
        assert rm.epoch == 0
        job = make_job(nodes=4, submit=0.0)
        job.mark_queued(0.0)
        rm.allocate(job, 0.0)
        assert rm.epoch == 1
        rm.release(job, 100.0)
        assert rm.epoch == 2

    def test_epoch_bumps_on_complete_finished_jobs(self, tiny_system):
        rm = ResourceManager(tiny_system)
        jobs = [make_job(nodes=1, submit=0.0, duration=300.0) for _ in range(3)]
        for job in jobs:
            job.mark_queued(0.0)
            rm.allocate(job, 0.0)
        epoch = rm.epoch
        assert rm.complete_finished_jobs(100.0) == []
        assert rm.epoch == epoch  # no releases, no bump
        assert len(rm.complete_finished_jobs(300.0)) == 3
        assert rm.epoch == epoch + 3

    def test_counters_match_inventory_scan(self, tiny_system):
        system = tiny_system.with_overrides(down_node_fraction=0.125)
        rm = ResourceManager(system, seed=5)
        jobs = [make_job(nodes=n, submit=0.0) for n in (3, 5, 2)]
        for job in jobs:
            job.mark_queued(0.0)
            rm.allocate(job, 0.0)
        rm.release(jobs[1], 50.0)

        def scan(state):
            return sum(1 for node in rm.nodes if node.state is state)

        assert rm.allocated_nodes == scan(NodeState.ALLOCATED) == 5
        assert rm.down_nodes == scan(NodeState.DOWN) == 4
        assert rm.available_nodes == sum(
            1 for node in rm.nodes if node.is_available
        )
        assert rm.allocated_nodes + rm.available_nodes + rm.down_nodes == rm.total_nodes

    def test_running_by_id_is_read_only_view(self, tiny_system):
        rm = ResourceManager(tiny_system)
        job = make_job(nodes=2, submit=0.0)
        job.mark_queued(0.0)
        rm.allocate(job, 0.0)
        view = rm.running_by_id
        assert view[job.job_id] is job
        with pytest.raises(TypeError):
            view[job.job_id + 1] = job  # type: ignore[index]
        rm.release(job, 10.0)
        assert job.job_id not in rm.running_by_id


def _allocate(rm, job, now=0.0):
    job.mark_queued(now)
    rm.allocate(job, now)
    return job


def _heap_invariants(rm):
    """Assert the end-time index invariants the engine relies on.

    Every running job has exactly one *live* heap entry whose key is its
    ``sim_start + duration``; everything else in the heap is stale (its
    job has been released) and must be vouched for by nothing.
    """
    live = {
        job_id: job.sim_start_time + job.duration
        for job_id, job in rm.running_by_id.items()
    }
    assert rm._end_of == live
    heap_live = [(end, jid) for end, jid in rm._end_heap if rm._end_of.get(jid) == end]
    assert sorted(heap_live) == sorted((end, jid) for jid, end in live.items())


class TestEndTimeHeap:
    """The lazy-deletion end-time heap behind O(k log R) completions."""

    def test_allocate_indexes_end_time(self, tiny_system):
        rm = ResourceManager(tiny_system)
        job = _allocate(rm, make_job(nodes=2, duration=600.0))
        assert rm.next_job_end() == pytest.approx(600.0)
        _heap_invariants(rm)

    def test_next_job_end_empty(self, tiny_system):
        assert ResourceManager(tiny_system).next_job_end() is None

    def test_early_release_leaves_stale_entry_popped_once(self, tiny_system):
        # A job released before its natural end (horizon truncation,
        # cancellation) leaves its heap entry stale; the first access
        # discards it permanently — it is never revisited.
        rm = ResourceManager(tiny_system)
        early = _allocate(rm, make_job(nodes=2, duration=1000.0))
        later = _allocate(rm, make_job(nodes=1, duration=2000.0))
        rm.release(early, 10.0)  # entry (1000.0, early.job_id) is now stale
        assert any(jid == early.job_id for _, jid in rm._end_heap)
        assert rm.next_job_end() == pytest.approx(2000.0)  # pops the stale entry
        assert all(jid != early.job_id for _, jid in rm._end_heap)
        _heap_invariants(rm)
        # The stale entry is gone for good: completing at its old end time
        # must not touch the released job again.
        assert rm.complete_finished_jobs(1000.0) == []
        assert rm.complete_finished_jobs(2000.0) == [later]
        assert rm._end_heap == []
        _heap_invariants(rm)

    def test_duplicate_end_times_complete_in_job_id_order(self, tiny_system):
        rm = ResourceManager(tiny_system)
        jobs = [
            _allocate(rm, make_job(nodes=1, duration=300.0)) for _ in range(4)
        ]
        finished = rm.complete_finished_jobs(300.0)
        assert finished == sorted(jobs, key=lambda j: j.job_id)
        assert all(j.sim_end_time == pytest.approx(300.0) for j in finished)
        assert rm._end_heap == [] and rm._end_of == {}

    def test_completion_does_not_disturb_later_entries(self, tiny_system):
        rm = ResourceManager(tiny_system)
        short = _allocate(rm, make_job(nodes=1, duration=100.0))
        long = _allocate(rm, make_job(nodes=1, duration=900.0))
        assert rm.complete_finished_jobs(100.0) == [short]
        _heap_invariants(rm)
        assert rm.next_job_end() == pytest.approx(900.0)
        assert rm.complete_finished_jobs(500.0) == []
        assert rm.complete_finished_jobs(900.0) == [long]

    def test_scan_and_heap_paths_release_identically(self, tiny_system):
        # scan_completions is the benchmark's comparison baseline: both
        # paths must release the same jobs in the same order at the same
        # end times.
        def run(scan):
            rm = ResourceManager(tiny_system)
            rm.scan_completions = scan
            jobs = [
                _allocate(rm, make_job(nodes=1, duration=d))
                for d in (300.0, 100.0, 300.0, 777.25)
            ]
            index_of = {job.job_id: i for i, job in enumerate(jobs)}
            released = []
            rm.release(jobs[1], 50.0)  # early release -> stale entry
            for now in (0.0, 299.0, 300.0, 800.0):
                released.extend(
                    (now, index_of[j.job_id], j.sim_end_time)
                    for j in rm.complete_finished_jobs(now)
                )
            return released

        assert run(scan=False) == run(scan=True)

    @given(
        plan=st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=2000.0),
                st.booleans(),
            ),
            min_size=1,
            max_size=12,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_invariants_hold_under_churn(self, plan):
        # Epoch churn: interleaved allocations, early releases and
        # completions (duplicate end times included via coarse rounding)
        # must keep the heap and the running set consistent throughout.
        system = get_system_config("tiny")
        rm = ResourceManager(system)
        now = 0.0
        for duration, release_early in plan:
            duration = round(duration / 300.0) * 300.0  # force duplicates
            if rm.free_node_count() >= 1:
                job = make_job(nodes=1, submit=now, start=now, duration=duration)
                job.mark_queued(now)
                rm.allocate(job, now)
                if release_early and duration > 0:
                    rm.release(job, now)
            now += 150.0
            rm.complete_finished_jobs(now)
            _heap_invariants(rm)
        rm.complete_finished_jobs(now + 4000.0)
        assert rm.running_by_id == {}
        assert rm._end_of == {}
        _heap_invariants(rm)


class TestChangeJournal:
    """The allocate/release journal behind O(changes) membership sync."""

    def test_drain_returns_chronological_entries(self, tiny_system):
        rm = ResourceManager(tiny_system)
        a = _allocate(rm, make_job(nodes=1, duration=600.0))
        b = _allocate(rm, make_job(nodes=1, duration=300.0))
        rm.release(a, 50.0)
        cursor, entries = rm.drain_change_journal(0)
        assert cursor == rm.journal_total == 3
        assert entries == [(True, a.job_id), (True, b.job_id), (False, a.job_id)]

    def test_drain_is_incremental_from_cursor(self, tiny_system):
        rm = ResourceManager(tiny_system)
        a = _allocate(rm, make_job(nodes=1, duration=600.0))
        cursor, entries = rm.drain_change_journal(0)
        assert entries == [(True, a.job_id)]
        b = _allocate(rm, make_job(nodes=1, duration=600.0))
        cursor, entries = rm.drain_change_journal(cursor)
        assert entries == [(True, b.job_id)]
        cursor, entries = rm.drain_change_journal(cursor)
        assert entries == []

    def test_stale_cursor_forces_resync(self, tiny_system):
        # A consumer whose cursor predates the retained window (someone
        # else drained, or the cap dropped entries) is told to resync.
        rm = ResourceManager(tiny_system)
        _allocate(rm, make_job(nodes=1, duration=600.0))
        rm.drain_change_journal(0)  # first consumer empties the buffer
        _allocate(rm, make_job(nodes=1, duration=600.0))
        cursor, entries = rm.drain_change_journal(0)  # behind the base
        assert entries is None
        assert cursor == rm.journal_total
        # Once caught up, the same consumer drains incrementally again.
        _allocate(rm, make_job(nodes=1, duration=600.0))
        _, entries = rm.drain_change_journal(cursor)
        assert entries is not None and len(entries) == 1

    def test_complete_finished_jobs_journals_releases(self, tiny_system):
        rm = ResourceManager(tiny_system)
        job = _allocate(rm, make_job(nodes=1, duration=300.0))
        cursor, _ = rm.drain_change_journal(0)
        rm.complete_finished_jobs(300.0)
        _, entries = rm.drain_change_journal(cursor)
        assert entries == [(False, job.job_id)]

    def test_journal_cap_bounds_memory(self, tiny_system):
        rm = ResourceManager(tiny_system)
        original_cap = ResourceManager.JOURNAL_CAP
        ResourceManager.JOURNAL_CAP = 8
        try:
            for _ in range(10):
                job = _allocate(rm, make_job(nodes=1, duration=100.0))
                rm.release(job, 0.0)
            assert len(rm._journal) <= 8
            assert rm.journal_total == 20
            _, entries = rm.drain_change_journal(0)
            assert entries is None  # dropped prefix -> resync
        finally:
            ResourceManager.JOURNAL_CAP = original_cap


class TestExpectedReleaseIndex:
    """The (expected end, nodes) index behind the EASY reservation walk."""

    def test_entries_ordered_by_expected_end_then_nodes(self, tiny_system):
        rm = ResourceManager(tiny_system)
        late = _allocate(rm, make_job(nodes=2, duration=900.0, wall_limit=900.0))
        early = _allocate(rm, make_job(nodes=4, duration=300.0, wall_limit=300.0))
        tied = _allocate(rm, make_job(nodes=1, duration=300.0, wall_limit=300.0))
        entries = list(rm.expected_release_entries())
        assert entries == [
            (300.0, 1, tied.job_id),
            (300.0, 4, early.job_id),
            (900.0, 2, late.job_id),
        ]

    def test_wall_limit_wins_over_duration(self, tiny_system):
        # requested_runtime is the wall limit when present: the index holds
        # the *planning* end, distinct from the end-time heap's actual end.
        rm = ResourceManager(tiny_system)
        job = _allocate(rm, make_job(nodes=1, duration=10_000.0, wall_limit=600.0))
        (end, nodes, job_id), = rm.expected_release_entries()
        assert (end, nodes, job_id) == (600.0, 1, job.job_id)
        assert rm.next_job_end() == pytest.approx(10_000.0)

    def test_released_jobs_skipped_lazily(self, tiny_system):
        rm = ResourceManager(tiny_system)
        gone = _allocate(rm, make_job(nodes=2, duration=600.0, wall_limit=600.0))
        kept = _allocate(rm, make_job(nodes=1, duration=900.0, wall_limit=900.0))
        rm.release(gone, 10.0)
        assert [jid for _, _, jid in rm.expected_release_entries()] == [kept.job_id]

    def test_compaction_drops_tombstones(self, tiny_system):
        rm = ResourceManager(tiny_system)
        survivors = []
        for i in range(6):
            job = _allocate(rm, make_job(nodes=1, duration=600.0 + i, wall_limit=600.0 + i))
            survivors.append(job)
        # Release many more than survive so the stale count passes the
        # live count and the compaction threshold (>= 64 tombstones).
        for _ in range(70):
            job = _allocate(rm, make_job(nodes=1, duration=60.0, wall_limit=60.0))
            rm.release(job, 0.0)
        # Compaction ran at least once: far fewer tombstones than the 70
        # releases, and the sorted list stays proportional to live + recent.
        assert rm._expected_stale <= 64
        assert len(rm._expected_sorted) == len(survivors) + rm._expected_stale
        assert [jid for _, _, jid in rm.expected_release_entries()] == [
            j.job_id for j in sorted(survivors, key=lambda j: j.job_id)
        ]
